//! # coachlm — facade crate
//!
//! Reproduction of *CoachLM: Automatic Instruction Revisions Improve the Data
//! Quality in LLM Instruction Tuning* (Liu et al., ICDE 2024).
//!
//! This crate re-exports the workspace sub-crates under one roof so that
//! examples, integration tests, and downstream users can depend on a single
//! package:
//!
//! * [`text`] — tokenisation, edit distances, diffs, cleaning.
//! * [`lm`] — the simulated language-model substrate (backbones, adapters).
//! * [`data`] — instruction-pair data model, dataset and test-set generators.
//! * [`judge`] — the Table II criteria engine and all automatic judges.
//! * [`expert`] — the simulated expert revision workflow (groups A/B/C).
//! * [`runtime`] — the [`Stage`](coachlm_runtime::Stage) trait and the
//!   deterministic parallel batch executor every dataset path runs on.
//! * [`core`] — CoachLM itself: coach tuning, α-selection, inference, the
//!   student-tuning simulator, and the §IV-A data management pipeline.
//!
//! See `DESIGN.md` for the system inventory and the per-experiment index,
//! and `EXPERIMENTS.md` for paper-vs-measured results.

pub use coachlm_core as core;
pub use coachlm_data as data;
pub use coachlm_expert as expert;
pub use coachlm_judge as judge;
pub use coachlm_lm as lm;
pub use coachlm_runtime as runtime;
pub use coachlm_text as text;
