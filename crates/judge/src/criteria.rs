//! The Table II criteria engine.
//!
//! INSTRUCTION and RESPONSE are evaluated independently, each on 0–100,
//! with dimensions grouped into three levels:
//!
//! * **Red line** (response Safety): any violation caps the score at 40.
//! * **Basic** (instruction Feasibility/Readability; response
//!   Correctness/Relevance/Comprehensiveness): any flaw caps at 80.
//! * **Advanced** (instruction Contextualization; response
//!   Readability/Richness/Humanization): worth the top 20 points.
//!
//! Every signal is *detected from the text*: misspelling forms, vague and
//! infeasible phrases, missing-input placeholders, lexical overlap with the
//! instruction, reasoning/example/warmth markers, fact-table
//! contradictions, truncation shapes, and degenerate-decoding artefacts.

use coachlm_text::clean;
use coachlm_text::lexicon;
use coachlm_text::normalize;
use coachlm_text::token;
use serde::Serialize;

/// Detected properties of an INSTRUCTION.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct InstructionAnalysis {
    /// Misspellings/grammar errors found (Readability).
    pub readability_flaws: u32,
    /// Layout problems: spacing, casing, terminal punctuation (Readability).
    pub layout_flaws: u32,
    /// Vague/ambiguous phrasing (Feasibility).
    pub vague: bool,
    /// Logically infeasible requirement (Feasibility).
    pub infeasible: bool,
    /// Missing/placeholder key input (Feasibility).
    pub invalid_input: bool,
    /// Unsupported multimodal request (Feasibility).
    pub multimodal: bool,
    /// Rich context present (Contextualization).
    pub has_context: bool,
}

impl InstructionAnalysis {
    /// Number of basic-level flaws.
    pub fn basic_flaws(&self) -> u32 {
        self.readability_flaws
            + self.layout_flaws
            + u32::from(self.vague)
            + u32::from(self.infeasible)
            + u32::from(self.invalid_input)
            + u32::from(self.multimodal)
    }
}

/// Detected properties of a RESPONSE (relative to its instruction).
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ResponseAnalysis {
    /// Unsafe content present (Safety — red line).
    pub unsafe_content: bool,
    /// Fact-table contradiction (Correctness).
    pub fact_errors: u32,
    /// Off-topic relative to the instruction (Relevance).
    pub irrelevant: bool,
    /// Truncated mid-thought (Comprehensiveness).
    pub truncated: bool,
    /// Thin: short and unexplained (Comprehensiveness).
    pub thin: bool,
    /// Misspellings/grammar errors (advanced Readability).
    pub readability_flaws: u32,
    /// Layout problems (advanced Readability).
    pub layout_flaws: u32,
    /// Degenerate artefacts: template leak, stutter (advanced Readability).
    pub degenerate: bool,
    /// Machine-boilerplate tone (anti-Humanization).
    pub machine_tone: bool,
    /// Warmth markers present (Humanization).
    pub warm: bool,
    /// Reasoning/explanation present (Richness).
    pub reasoned: bool,
    /// Concrete example present (Richness).
    pub has_example: bool,
    /// Response word count.
    pub words: usize,
}

impl ResponseAnalysis {
    /// Number of basic-level flaws.
    pub fn basic_flaws(&self) -> u32 {
        self.fact_errors
            + u32::from(self.irrelevant)
            + u32::from(self.truncated)
            + u32::from(self.thin)
    }

    /// Richness in [0, 1]: reasoning, example, and substance. The grading
    /// is deliberately demanding — the full point needs explicit reasoning
    /// *and* a concrete example *and* real length, which is what separates
    /// the Fig 4 ">4.5" band from merely adequate answers.
    pub fn richness(&self) -> f64 {
        let mut r = 0.0;
        if self.reasoned {
            r += 0.35;
        }
        if self.has_example {
            r += 0.35;
        }
        if self.words >= 55 {
            r += 0.3;
        } else if self.words >= 30 {
            r += 0.1;
        }
        r
    }

    /// Advanced readability satisfied?
    pub fn readable(&self) -> bool {
        self.readability_flaws == 0 && self.layout_flaws == 0 && !self.degenerate
    }

    /// Humanization in [0, 1].
    pub fn humanization(&self) -> f64 {
        match (self.warm, self.machine_tone) {
            (true, false) => 1.0,
            (true, true) => 0.4,
            (false, false) => 0.5,
            (false, true) => 0.0,
        }
    }
}

/// Scores for one pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PairScores {
    /// Instruction score, 0–100.
    pub instruction: f64,
    /// Response score, 0–100.
    pub response: f64,
}

/// The criteria engine. Stateless; construct once and reuse.
#[derive(Debug, Clone, Copy, Default)]
pub struct CriteriaEngine;

/// Relevance threshold: responses overlapping less than this with the
/// instruction's topic words are flagged irrelevant.
const RELEVANCE_THRESHOLD: f64 = 0.2;
/// Word count below which an unexplained response counts as thin. Bare
/// single-sentence answers run 8–17 words; a minimal two-sentence adequate
/// answer runs 18+.
const THIN_WORDS: usize = 18;

impl CriteriaEngine {
    /// Creates the engine.
    pub fn new() -> Self {
        Self
    }

    /// Analyses an instruction.
    pub fn analyze_instruction(&self, instruction: &str) -> InstructionAnalysis {
        let mut a = InstructionAnalysis {
            readability_flaws: count_misspellings(instruction),
            layout_flaws: count_layout_flaws(instruction),
            vague: lexicon::contains_marker(instruction, lexicon::VAGUE_PHRASES),
            infeasible: lexicon::contains_marker(instruction, lexicon::INFEASIBLE_PHRASES),
            invalid_input: lexicon::contains_marker(instruction, lexicon::INVALID_INPUT_MARKERS),
            multimodal: lexicon::contains_marker(instruction, lexicon::MULTIMODAL_MARKERS),
            has_context: lexicon::contains_marker(instruction, lexicon::CONTEXT_MARKERS),
        };
        if instruction.trim().is_empty() {
            a.infeasible = true;
        }
        a
    }

    /// Analyses a response against its instruction.
    pub fn analyze_response(&self, instruction: &str, response: &str) -> ResponseAnalysis {
        let words = token::word_count(response);
        let reasoned = lexicon::contains_marker(response, lexicon::REASONING_MARKERS);
        let cleaned = clean::clean_output(response);
        let template_leak = matches!(
            clean::validate_pair("x", response),
            clean::Validity::TemplateLeak | clean::Validity::Degenerate
        );
        let invalid_chars = response
            .chars()
            .any(|c| (c.is_control() && c != '\n' && c != '\t') || c == '\u{FFFD}');
        ResponseAnalysis {
            unsafe_content: lexicon::contains_marker(response, lexicon::UNSAFE_MARKERS),
            fact_errors: count_fact_errors(response),
            irrelevant: lexicon::is_off_topic(instruction, response, RELEVANCE_THRESHOLD),
            truncated: is_truncated(response),
            thin: words < THIN_WORDS && !reasoned,
            readability_flaws: count_misspellings(response),
            layout_flaws: count_layout_flaws(response),
            degenerate: template_leak
                || invalid_chars
                || cleaned.len() < response.len().saturating_sub(2),
            machine_tone: lexicon::contains_marker(response, lexicon::MACHINE_TONE_MARKERS),
            warm: lexicon::contains_marker(response, lexicon::WARM_MARKERS),
            reasoned,
            has_example: normalize::fold_case(response).contains("for example"),
            words,
        }
    }

    /// Scores an instruction per the Table II level structure.
    pub fn score_instruction(&self, a: &InstructionAnalysis) -> f64 {
        let basic = a.basic_flaws();
        if basic > 0 {
            // Basic flaws cap at 80 and each costs points; hard feasibility
            // problems (infeasible/invalid/multimodal) cost more.
            let hard =
                u32::from(a.infeasible) + u32::from(a.invalid_input) + u32::from(a.multimodal);
            let soft = basic - hard;
            (80.0 - 14.0 * hard as f64 - 7.0 * soft as f64).max(35.0)
        } else {
            // Advanced range: context quality spreads 80–100.
            if a.has_context {
                96.0
            } else {
                84.0
            }
        }
    }

    /// Scores a response per the Table II level structure.
    pub fn score_response(&self, a: &ResponseAnalysis) -> f64 {
        if a.unsafe_content {
            // Red line: 0–40, graded by how much else survives.
            let salvage = (1.0 - a.basic_flaws() as f64 * 0.2).clamp(0.0, 1.0);
            return 22.0 + 18.0 * salvage;
        }
        let basic = a.basic_flaws() + a.readability_flaws.min(3) / 2;
        if basic > 0 {
            (80.0 - 11.0 * basic as f64).max(42.0)
        } else {
            // Advanced band 80–100: readability 5, richness 9, humanization 6.
            let adv = 5.0 * f64::from(a.readable()) + 9.0 * a.richness() + 6.0 * a.humanization();
            80.0 + adv.min(20.0)
        }
    }

    /// Full pair scoring.
    pub fn score_pair(&self, instruction: &str, response: &str) -> PairScores {
        let ia = self.analyze_instruction(instruction);
        let ra = self.analyze_response(instruction, response);
        PairScores {
            instruction: self.score_instruction(&ia),
            response: self.score_response(&ra),
        }
    }
}

/// Counts misspelled forms and grammar-pair errors present in `text`.
fn count_misspellings(text: &str) -> u32 {
    let folded = normalize::fold_case(text);
    let mut n = 0u32;
    for (wrong, _) in lexicon::TYPO_PAIRS {
        if contains_word(&folded, wrong) {
            n += 1;
        }
    }
    for (wrong, _) in lexicon::GRAMMAR_PAIRS {
        if folded.contains(wrong) {
            n += 1;
        }
    }
    n
}

/// Word-boundary containment on already-folded text.
fn contains_word(folded: &str, word: &str) -> bool {
    let bytes = folded.as_bytes();
    let mut start = 0;
    while let Some(rel) = folded[start..].find(word) {
        let pos = start + rel;
        let end = pos + word.len();
        let before_ok = pos == 0 || !bytes[pos - 1].is_ascii_alphanumeric();
        let after_ok = end >= folded.len() || !bytes[end].is_ascii_alphanumeric();
        if before_ok && after_ok {
            return true;
        }
        start = end;
    }
    false
}

/// Counts layout problems: doubled spaces, space before punctuation,
/// lowercase sentence starts, missing terminal punctuation.
fn count_layout_flaws(text: &str) -> u32 {
    let t = text.trim();
    if t.is_empty() {
        return 0;
    }
    let mut n = 0u32;
    if t.contains("  ") {
        n += 1;
    }
    if t.contains(" .") || t.contains(" ,") || t.contains(" !") || t.contains(" ?") {
        n += 1;
    }
    if t.chars().next().is_some_and(|c| c.is_lowercase()) {
        n += 1;
    }
    if t.chars().last().is_some_and(|c| c.is_alphanumeric()) {
        n += 1;
    }
    n
}

/// Counts fact-table contradictions in `text`.
fn count_fact_errors(text: &str) -> u32 {
    let folded = normalize::fold_case(text);
    lexicon::FACT_TABLE
        .iter()
        .filter(|(subject, _, wrong)| {
            folded.contains(&normalize::fold_case(subject))
                && folded.contains(&normalize::fold_case(wrong))
        })
        .count() as u32
}

/// Truncation shape: trailing ellipsis or a dangling non-terminal ending.
fn is_truncated(text: &str) -> bool {
    let t = text.trim_end();
    if t.is_empty() {
        return false;
    }
    t.ends_with("...") || t.chars().last().is_some_and(|c| c == ',' || c == ';')
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD_INSTR: &str =
        "Explain the water cycle for a middle-school reader. For example, mention rain.";
    const GOOD_RESP: &str =
        "The water cycle moves water through evaporation, condensation, and rain. \
        This happens because the sun heats oceans and lakes, lifting vapor into the air. \
        For example, puddles disappear on a sunny day because the water evaporates. \
        In summary, water constantly circulates between the surface and the sky. \
        I hope this helps; feel free to ask about any step.";

    #[test]
    fn clean_pair_scores_high() {
        let e = CriteriaEngine::new();
        let s = e.score_pair(GOOD_INSTR, GOOD_RESP);
        assert!(s.instruction >= 90.0, "instruction {}", s.instruction);
        assert!(s.response >= 95.0, "response {}", s.response);
    }

    #[test]
    fn unsafe_response_capped_at_40() {
        let e = CriteriaEngine::new();
        let resp = format!("{GOOD_RESP} Also, guaranteed to double your investment overnight.");
        let s = e.score_pair(GOOD_INSTR, &resp);
        assert!(s.response <= 40.0, "response {}", s.response);
    }

    #[test]
    fn basic_flaws_cap_response_at_80() {
        let e = CriteriaEngine::new();
        // Thin response: one short unexplained sentence.
        let s = e.score_pair(
            "Explain the tides in the ocean",
            "The moon pulls ocean water.",
        );
        assert!(s.response < 80.0, "response {}", s.response);
        assert!(s.response >= 42.0);
    }

    #[test]
    fn fact_error_detected_and_penalised() {
        let e = CriteriaEngine::new();
        let resp = format!("{GOOD_RESP} Remember that the capital of France is Berlin.");
        let a = e.analyze_response(GOOD_INSTR, &resp);
        assert_eq!(a.fact_errors, 1);
        assert!(e.score_response(&a) < 80.0);
    }

    #[test]
    fn corrected_fact_not_penalised() {
        let e = CriteriaEngine::new();
        let resp = format!("{GOOD_RESP} Remember that the capital of France is Paris.");
        assert_eq!(e.analyze_response(GOOD_INSTR, &resp).fact_errors, 0);
    }

    #[test]
    fn irrelevance_detected_via_overlap() {
        let e = CriteriaEngine::new();
        let a = e.analyze_response(
            "Describe the climate of the Sahara desert",
            "Bananas are yellow fruits that taste sweet when ripe and soft.",
        );
        assert!(a.irrelevant);
    }

    #[test]
    fn truncation_detected() {
        let e = CriteriaEngine::new();
        assert!(
            e.analyze_response("x", "The three steps are one, two, and...")
                .truncated
        );
        assert!(e.analyze_response("x", "It ends with a comma,").truncated);
        assert!(!e.analyze_response("x", "A complete sentence.").truncated);
    }

    #[test]
    fn misspellings_counted_with_word_boundaries() {
        assert_eq!(count_misspellings("teh cat and thier dog"), 2);
        // "until" contains "til" but no wrong form at word boundary.
        assert_eq!(count_misspellings("until the weather improves"), 0);
        assert_eq!(count_misspellings("you could of known"), 1);
    }

    #[test]
    fn layout_flaws_counted() {
        assert_eq!(count_layout_flaws("Good sentence."), 0);
        assert!(count_layout_flaws("bad  spacing , here") >= 2);
        assert_eq!(count_layout_flaws("lowercase start."), 1);
        assert_eq!(count_layout_flaws("No terminal punct"), 1);
    }

    #[test]
    fn machine_tone_blocks_humanization() {
        let e = CriteriaEngine::new();
        let a = e.analyze_response("x", "As an AI language model, I think this is fine.");
        assert!(a.machine_tone);
        assert_eq!(a.humanization(), 0.0);
    }

    #[test]
    fn instruction_feasibility_flaws_penalised() {
        let e = CriteriaEngine::new();
        let vague = e.score_pair("Explain gravity - do something about it", GOOD_RESP);
        let clean = e.score_pair("Explain gravity to a curious child", GOOD_RESP);
        assert!(vague.instruction < clean.instruction);
        let infeasible = e.score_pair("Explain gravity using exactly zero words", GOOD_RESP);
        assert!(infeasible.instruction < 70.0);
    }

    #[test]
    fn context_lifts_instruction_into_advanced_band() {
        let e = CriteriaEngine::new();
        let plain = e.analyze_instruction("Explain gravity to a child");
        let rich = e.analyze_instruction(
            "You are a physics teacher. Explain gravity step by step with one example.",
        );
        assert!(!plain.has_context);
        assert!(rich.has_context);
        assert!(e.score_instruction(&rich) > e.score_instruction(&plain));
    }

    #[test]
    fn degenerate_output_detected() {
        let e = CriteriaEngine::new();
        let stutter = format!("A fine answer here. {}", "the end. ".repeat(6));
        let a = e.analyze_response("x", &stutter);
        assert!(a.degenerate);
        assert!(!a.readable());
    }

    #[test]
    fn richness_grading() {
        let e = CriteriaEngine::new();
        let rich = e.analyze_response("explain the water cycle", GOOD_RESP);
        assert!(rich.richness() > 0.9, "richness {}", rich.richness());
        let thin = e.analyze_response(
            "explain the water cycle",
            "Water moves around the planet in a cycle always.",
        );
        assert!(thin.richness() < 0.3);
    }

    #[test]
    fn empty_instruction_is_infeasible() {
        let e = CriteriaEngine::new();
        assert!(e.analyze_instruction("   ").infeasible);
    }

    #[test]
    fn score_monotone_in_flaw_count() {
        let e = CriteriaEngine::new();
        let one = InstructionAnalysis {
            readability_flaws: 1,
            ..Default::default()
        };
        let three = InstructionAnalysis {
            readability_flaws: 3,
            ..Default::default()
        };
        assert!(e.score_instruction(&one) > e.score_instruction(&three));
    }
}
