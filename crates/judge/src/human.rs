//! The group-C human evaluation panel (§III-A1a, Tables VIII and X).
//!
//! Three experts (R1, R2, R3) independently score INSTRUCTIONs and
//! RESPONSEs 0–100 against the Table II criteria, blind to sample sources.
//! Each reviewer is the criteria engine plus a personal leniency offset and
//! per-sample noise — the spread between reviewers in Tables VIII/X is a
//! couple of points, which these parameters reproduce.

use crate::chatgpt::gaussian;
use crate::criteria::CriteriaEngine;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// One human reviewer.
#[derive(Debug, Clone, Serialize)]
pub struct Reviewer {
    /// Display name ("R1".."R3").
    pub name: &'static str,
    /// Personal leniency offset (criteria points).
    pub leniency: f64,
    /// Per-sample scoring noise (standard deviation, criteria points).
    pub noise: f64,
}

/// The three-reviewer panel.
#[derive(Debug, Clone)]
pub struct HumanPanel {
    engine: CriteriaEngine,
    seed: u64,
    /// The reviewers, in R1..R3 order.
    pub reviewers: [Reviewer; 3],
}

/// Scores by all three reviewers plus the average.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PanelScores {
    /// Per-reviewer scores, R1..R3.
    pub by_reviewer: [f64; 3],
    /// Average of the three.
    pub avg: f64,
}

impl HumanPanel {
    /// The paper's group-C panel.
    pub fn group_c(seed: u64) -> Self {
        Self {
            engine: CriteriaEngine::new(),
            seed,
            reviewers: [
                Reviewer {
                    name: "R1",
                    leniency: -1.2,
                    noise: 2.4,
                },
                Reviewer {
                    name: "R2",
                    leniency: 0.4,
                    noise: 2.2,
                },
                Reviewer {
                    name: "R3",
                    leniency: 1.1,
                    noise: 2.6,
                },
            ],
        }
    }

    fn noised(&self, base: f64, sample_id: u64, reviewer_idx: usize) -> f64 {
        let r = &self.reviewers[reviewer_idx];
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ sample_id.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) ^ (reviewer_idx as u64) << 40,
        );
        (base + r.leniency + gaussian(&mut rng) * r.noise).clamp(0.0, 100.0)
    }

    /// Panel scores for an INSTRUCTION.
    pub fn rate_instruction(&self, sample_id: u64, instruction: &str) -> PanelScores {
        let base = self
            .engine
            .score_pair(instruction, "placeholder")
            .instruction;
        self.collect(base, sample_id)
    }

    /// Panel scores for a RESPONSE (judged against its instruction).
    pub fn rate_response(&self, sample_id: u64, instruction: &str, response: &str) -> PanelScores {
        let base = self.engine.score_pair(instruction, response).response;
        self.collect(base, sample_id)
    }

    fn collect(&self, base: f64, sample_id: u64) -> PanelScores {
        let by_reviewer = [
            self.noised(base, sample_id, 0),
            self.noised(base, sample_id, 1),
            self.noised(base, sample_id, 2),
        ];
        PanelScores {
            by_reviewer,
            avg: by_reviewer.iter().sum::<f64>() / 3.0,
        }
    }
}

/// Averages panel scores across many samples, per reviewer and overall —
/// the row shape of Tables VIII and X.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct PanelAverages {
    /// Per-reviewer means, R1..R3.
    pub by_reviewer: [f64; 3],
    /// Mean of the per-reviewer means.
    pub avg: f64,
    /// Number of samples.
    pub count: usize,
}

impl PanelAverages {
    /// Accumulates a sample's panel scores.
    pub fn add(&mut self, s: &PanelScores) {
        for i in 0..3 {
            self.by_reviewer[i] += s.by_reviewer[i];
        }
        self.count += 1;
    }

    /// Finalises the averages.
    pub fn finish(mut self) -> Self {
        if self.count > 0 {
            for v in &mut self.by_reviewer {
                *v /= self.count as f64;
            }
        }
        self.avg = self.by_reviewer.iter().sum::<f64>() / 3.0;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RICH: &str = "The water cycle moves water through evaporation and rain. \
        This happens because the sun heats the oceans. For example, puddles vanish \
        on sunny days. In summary, water circulates. I hope this helps; feel free to ask.";

    #[test]
    fn reviewers_are_close_but_not_identical() {
        let p = HumanPanel::group_c(1);
        let s = p.rate_response(0, "Explain the water cycle", RICH);
        let spread = s
            .by_reviewer
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        assert!(spread.1 - spread.0 < 15.0);
        assert!(spread.1 - spread.0 > 0.0);
    }

    #[test]
    fn better_text_scores_higher_for_every_reviewer() {
        let p = HumanPanel::group_c(2);
        let hi = p.rate_response(0, "Explain the water cycle", RICH);
        let lo = p.rate_response(0, "Explain the water cycle", "Water moves.");
        for i in 0..3 {
            assert!(hi.by_reviewer[i] > lo.by_reviewer[i]);
        }
    }

    #[test]
    fn deterministic_per_sample() {
        let p = HumanPanel::group_c(3);
        assert_eq!(p.rate_response(9, "x", RICH), p.rate_response(9, "x", RICH));
    }

    #[test]
    fn averages_accumulate() {
        let p = HumanPanel::group_c(4);
        let mut acc = PanelAverages::default();
        for id in 0..10 {
            acc.add(&p.rate_response(id, "Explain the water cycle", RICH));
        }
        let done = acc.finish();
        assert_eq!(done.count, 10);
        assert!(done.avg > 80.0);
        assert!((done.avg - done.by_reviewer.iter().sum::<f64>() / 3.0).abs() < 1e-9);
    }

    #[test]
    fn instruction_rating_ignores_response() {
        let p = HumanPanel::group_c(5);
        let a = p.rate_instruction(0, "Explain gravity step by step with an example.");
        let b = p.rate_instruction(0, "explain gravity - do something about it");
        assert!(a.avg > b.avg);
    }
}
