//! The PandaLM-style pairwise judge (§III-A1d) with the swap-order
//! debiasing protocol of §III-A1.
//!
//! PandaLM takes an instruction and two candidate responses and outputs
//! "win"/"tie"/"lose" for the first candidate. Our stand-in compares the
//! criteria-engine scores of the two responses with seeded per-comparison
//! noise, a tie band, and a small position bias (PandaLM "effectively
//! addresses biases that may arise when swapping candidates", so its bias
//! is small; the GPT-4 judge's is larger).
//!
//! The debiased comparison runs both orders: conflicting results become a
//! tie, and a win+tie (lose+tie) combination counts as a win (lose) — the
//! exact protocol the paper adopts from AlpaGasus.

use crate::chatgpt::gaussian;
use crate::criteria::CriteriaEngine;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Outcome for the *first* candidate of a comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Verdict {
    /// First candidate is better.
    Win,
    /// Comparable quality.
    Tie,
    /// Second candidate is better.
    Lose,
}

impl Verdict {
    /// The verdict from the opposite candidate's perspective.
    pub fn invert(self) -> Verdict {
        match self {
            Verdict::Win => Verdict::Lose,
            Verdict::Tie => Verdict::Tie,
            Verdict::Lose => Verdict::Win,
        }
    }
}

/// Combines two verdicts for the same candidate (one per presentation
/// order) per the §III-A1 protocol.
pub fn combine_debiased(first_order: Verdict, second_order: Verdict) -> Verdict {
    use Verdict::*;
    match (first_order, second_order) {
        (Win, Win) => Win,
        (Lose, Lose) => Lose,
        (Tie, Tie) => Tie,
        (Win, Lose) | (Lose, Win) => Tie,  // conflict → tie
        (Win, Tie) | (Tie, Win) => Win,    // win + tie → win
        (Lose, Tie) | (Tie, Lose) => Lose, // lose + tie → lose
    }
}

/// The pairwise judge.
#[derive(Debug, Clone)]
pub struct PandaLm {
    engine: CriteriaEngine,
    seed: u64,
    /// Per-candidate score noise (criteria points).
    pub noise: f64,
    /// Quality difference below which the verdict is a tie.
    pub tie_band: f64,
    /// Additive bonus for the first-presented candidate (position bias).
    pub position_bias: f64,
}

impl PandaLm {
    /// Creates a judge with PandaLM-calibrated noise/bias.
    pub fn new(seed: u64) -> Self {
        Self {
            engine: CriteriaEngine::new(),
            seed,
            noise: 3.0,
            tie_band: 6.0,
            position_bias: 0.8,
        }
    }

    /// Raw single-order comparison: verdict for `first` vs `second`.
    pub fn compare_once(
        &self,
        comparison_id: u64,
        instruction: &str,
        first: &str,
        second: &str,
        order: u8,
    ) -> Verdict {
        let qa = self.engine.score_pair(instruction, first).response;
        let qb = self.engine.score_pair(instruction, second).response;
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ comparison_id.wrapping_mul(0xA24B_AED4_963E_E407) ^ u64::from(order) << 56,
        );
        let qa = qa + self.position_bias + gaussian(&mut rng) * self.noise;
        let qb = qb + gaussian(&mut rng) * self.noise;
        if (qa - qb).abs() < self.tie_band {
            Verdict::Tie
        } else if qa > qb {
            Verdict::Win
        } else {
            Verdict::Lose
        }
    }

    /// Debiased comparison of `candidate` against `reference` (§III-A1):
    /// judged in both presentation orders, then combined.
    pub fn compare(
        &self,
        comparison_id: u64,
        instruction: &str,
        candidate: &str,
        reference: &str,
    ) -> Verdict {
        let first = self.compare_once(comparison_id, instruction, candidate, reference, 0);
        let second = self
            .compare_once(comparison_id, instruction, reference, candidate, 1)
            .invert();
        combine_debiased(first, second)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STRONG: &str = "The water cycle moves water through evaporation and rain. \
        This happens because the sun heats the oceans and lifts vapor into the sky. \
        For example, puddles vanish on sunny days. In summary, water circulates constantly. \
        I hope this helps; feel free to ask more.";
    const WEAK: &str = "Water moves around the sky sometimes.";
    const INSTR: &str = "Explain the water cycle";

    #[test]
    fn clear_quality_gap_wins() {
        let j = PandaLm::new(1);
        assert_eq!(j.compare(0, INSTR, STRONG, WEAK), Verdict::Win);
        assert_eq!(j.compare(0, INSTR, WEAK, STRONG), Verdict::Lose);
    }

    #[test]
    fn self_comparison_mostly_ties() {
        let j = PandaLm::new(2);
        let mut ties = 0;
        for id in 0..200 {
            if j.compare(id, INSTR, STRONG, STRONG) == Verdict::Tie {
                ties += 1;
            }
        }
        assert!(ties > 100, "ties {ties}/200");
    }

    #[test]
    fn debiasing_cancels_position_bias() {
        // With a huge position bias, single-order comparisons of equal
        // candidates favour the first; the debiased protocol does not.
        let mut j = PandaLm::new(3);
        j.position_bias = 15.0;
        j.noise = 0.5;
        let mut single_wins = 0;
        let mut debiased_wins = 0;
        for id in 0..100 {
            if j.compare_once(id, INSTR, STRONG, STRONG, 0) == Verdict::Win {
                single_wins += 1;
            }
            if j.compare(id, INSTR, STRONG, STRONG) == Verdict::Win {
                debiased_wins += 1;
            }
        }
        assert!(single_wins > 90, "single {single_wins}");
        assert_eq!(debiased_wins, 0, "debiased {debiased_wins}");
    }

    #[test]
    fn combine_protocol_matches_paper() {
        use Verdict::*;
        assert_eq!(combine_debiased(Win, Lose), Tie);
        assert_eq!(combine_debiased(Win, Tie), Win);
        assert_eq!(combine_debiased(Tie, Lose), Lose);
        assert_eq!(combine_debiased(Win, Win), Win);
        assert_eq!(combine_debiased(Tie, Tie), Tie);
    }

    #[test]
    fn verdict_inversion() {
        assert_eq!(Verdict::Win.invert(), Verdict::Lose);
        assert_eq!(Verdict::Tie.invert(), Verdict::Tie);
    }

    #[test]
    fn deterministic_per_comparison_id() {
        let j = PandaLm::new(9);
        assert_eq!(
            j.compare(5, INSTR, STRONG, WEAK),
            j.compare(5, INSTR, STRONG, WEAK)
        );
    }
}
