//! The AlpaGasus-style ChatGPT rater (§III-A1b, Fig 4).
//!
//! The paper prompts GPT-3.5-turbo to rate each RESPONSE's accuracy on a
//! 0–5 scale. Our stand-in maps the criteria-engine response score to the
//! same scale with a small seeded per-sample noise, quantised to the
//! half-point grid ChatGPT ratings cluster on.

use crate::criteria::CriteriaEngine;
use coachlm_data::pair::Dataset;
use coachlm_runtime::{
    Executor, ExecutorConfig, Feed, Stage, StageCtx, StageItem, StageOutcome, StageReport,
    StreamSource,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// The 0–5 accuracy rater.
#[derive(Debug, Clone)]
pub struct ChatGptRater {
    engine: CriteriaEngine,
    seed: u64,
    /// Per-sample rating noise (standard deviation, in rating points).
    pub noise: f64,
}

/// Summary of a dataset rating run (the Fig 4 numbers).
#[derive(Debug, Clone, Serialize)]
pub struct RatingSummary {
    /// Mean rating.
    pub mean: f64,
    /// Share of ratings strictly above 4.5.
    pub share_above_4_5: f64,
    /// Histogram over the half-point grid 0.0, 0.5, …, 5.0 (11 bins).
    pub histogram: [usize; 11],
    /// Number rated.
    pub count: usize,
}

impl RatingSummary {
    /// Rebuilds the summary from a rating stage's executor report.
    pub fn from_report(report: &StageReport) -> Self {
        let mut histogram = [0usize; 11];
        for (bin, slot) in histogram.iter_mut().enumerate() {
            *slot = report.counter(&format!("score:{bin}")) as usize;
        }
        let count: usize = histogram.iter().sum();
        let sum: f64 = histogram
            .iter()
            .enumerate()
            .map(|(bin, &c)| bin as f64 / 2.0 * c as f64)
            .sum();
        let n = count.max(1) as f64;
        RatingSummary {
            mean: sum / n,
            share_above_4_5: report.counter("above-4.5") as f64 / n,
            histogram,
            count,
        }
    }
}

impl ChatGptRater {
    /// Creates a rater with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            engine: CriteriaEngine::new(),
            seed,
            noise: 0.08,
        }
    }

    /// Rates one pair's response, 0.0–5.0 on the half-point grid.
    ///
    /// The mapping from the 0–100 criteria score is piecewise-linear and
    /// anchored so that a flawless-but-plain response (score 80) sits at
    /// 4.0 and the red-line cap (40) at 2.0 — the scale AlpaGasus reports.
    pub fn rate(&self, id: u64, instruction: &str, response: &str) -> f64 {
        let score = self.engine.score_pair(instruction, response).response;
        let base = score / 20.0;
        let mut rng = StdRng::seed_from_u64(self.seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let noised = base + gaussian(&mut rng) * self.noise;
        (noised.clamp(0.0, 5.0) * 2.0).round() / 2.0
    }

    /// Rates a whole dataset on the shared executor.
    pub fn rate_dataset(&self, d: &Dataset) -> RatingSummary {
        self.rate_stream(d, Feed::Batch)
    }

    /// Rates a dataset under an explicit arrival model.
    /// [`rate_dataset`](Self::rate_dataset) is this with [`Feed::Batch`];
    /// under a [`Feed::Sustained`] feed, pairs shed at admission are
    /// never rated and contribute nothing to the histogram.
    pub fn rate_stream(&self, d: &Dataset, feed: Feed) -> RatingSummary {
        let stages: Vec<Box<dyn Stage + '_>> = vec![Box::new(ChatGptRatingStage::new(self))];
        let source = StreamSource {
            pairs: d.pairs.clone(),
            feed,
        };
        let run = Executor::new(ExecutorConfig::new(self.seed)).run_stream(&stages, source);
        RatingSummary::from_report(
            run.report(ChatGptRatingStage::NAME)
                // lint: allow(P1, reason = "the chain built two lines above contains exactly this stage; a missing report is a construction bug, not a data condition")
                .expect("rating stage ran"),
        )
    }
}

/// The rater as a scoring stage: each item's response is rated onto the
/// half-point grid and tallied into `score:<2r>` histogram counters, so
/// the Fig 4 / Table VII experiments can run the rater inside any chain.
///
/// Ratings are keyed to the rater's own seed and the pair id (not the
/// chain RNG), so a pair rates identically wherever the stage appears.
pub struct ChatGptRatingStage<'a> {
    rater: &'a ChatGptRater,
}

impl<'a> ChatGptRatingStage<'a> {
    /// The stage's report name.
    pub const NAME: &'static str = "chatgpt-rate";

    /// A scoring stage over `rater`.
    pub fn new(rater: &'a ChatGptRater) -> Self {
        ChatGptRatingStage { rater }
    }
}

impl Stage for ChatGptRatingStage<'_> {
    fn name(&self) -> &str {
        Self::NAME
    }

    fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) -> StageOutcome {
        let r = self
            .rater
            .rate(item.pair.id, &item.pair.instruction, &item.pair.response);
        ctx.bump(&format!("score:{}", (r * 2.0) as usize));
        if r > 4.5 {
            ctx.bump("above-4.5");
        }
        StageOutcome::Ok
    }

    fn deadline(&self) -> Option<std::time::Duration> {
        // Modelled LLM-judge call: per-request budget before a retry.
        Some(std::time::Duration::from_secs(5))
    }
}

/// Box–Muller standard normal from a uniform RNG.
pub(crate) fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coachlm_data::category::Category;
    use coachlm_data::pair::InstructionPair;

    const RICH: &str = "The water cycle moves water through evaporation and rain. \
        This happens because the sun heats the oceans, lifting vapor into the sky. \
        For example, puddles vanish on sunny days. In summary, water circulates constantly. \
        I hope this helps; feel free to ask more.";

    #[test]
    fn rich_responses_rate_above_4_5() {
        let r = ChatGptRater::new(1);
        let rating = r.rate(0, "Explain the water cycle", RICH);
        assert!(rating > 4.5, "rating {rating}");
    }

    #[test]
    fn thin_responses_rate_lower() {
        let r = ChatGptRater::new(1);
        let rating = r.rate(0, "Explain the water cycle", "Water moves around.");
        assert!(rating < 4.0, "rating {rating}");
    }

    #[test]
    fn unsafe_responses_rate_at_most_2ish() {
        let r = ChatGptRater::new(1);
        let rating = r.rate(
            0,
            "Give advice",
            "Do this, guaranteed to double your investment overnight.",
        );
        assert!(rating <= 2.5, "rating {rating}");
    }

    #[test]
    fn rating_is_deterministic_per_id() {
        let r = ChatGptRater::new(7);
        assert_eq!(r.rate(3, "a", RICH), r.rate(3, "a", RICH));
        // Different ids may rate differently (noise), but stay on the grid.
        let v = r.rate(4, "a", RICH);
        assert_eq!((v * 2.0).fract(), 0.0);
    }

    #[test]
    fn dataset_summary_consistency() {
        let mut d = Dataset::new("t");
        for i in 0..20 {
            d.pairs.push(InstructionPair::new(
                i,
                "Explain the water cycle",
                if i % 2 == 0 {
                    RICH.to_string()
                } else {
                    "Water moves.".to_string()
                },
                Category(0),
            ));
        }
        let s = ChatGptRater::new(2).rate_dataset(&d);
        assert_eq!(s.count, 20);
        assert_eq!(s.histogram.iter().sum::<usize>(), 20);
        assert!(s.mean > 2.0 && s.mean < 5.0);
        assert!(s.share_above_4_5 >= 0.3 && s.share_above_4_5 <= 0.7);
    }
}
