//! # coachlm-judge
//!
//! The evaluation substrate: the paper's nine-dimension quality criteria
//! (Table II) as an executable engine, plus all four evaluation approaches
//! of Table V.
//!
//! * [`criteria`] — the Table II rubric. Analyses an `(INSTRUCTION,
//!   RESPONSE)` pair *from its text alone* (defect markers, lexical overlap,
//!   reasoning/warmth markers, fact-table contradictions) and produces
//!   0–100 scores with the paper's level structure: red-line violations cap
//!   a response at 40, basic-level flaws cap it at 80, advanced dimensions
//!   occupy the top 20 points.
//! * [`chatgpt`] — the AlpaGasus-style 0–5 accuracy rater used for Fig 4.
//! * [`pandalm`] — the PandaLM pairwise judge with the swap-order
//!   debiasing protocol of §III-A1 (conflict → tie; win+tie → win).
//! * [`gpt4`] — the GPT-4-style paired 0–10 scorer (stronger position
//!   bias, which the same swap protocol cancels).
//! * [`human`] — the three-reviewer panel (R1–R3 of group C) with
//!   per-reviewer leniency offsets.
//! * [`tournament`] — round-robin pairwise judging of whole strategy
//!   outputs with canonical-order debiasing: the verdict matrix is
//!   position-swap- and relabeling-invariant by construction.
//! * [`winrate`] — WR1 / WR2 / QS arithmetic (§III-C1a).
//! * [`stats`] — histograms, means, and the least-squares linear fit (with
//!   R²) used in Fig 5(b).

#![deny(unused_must_use)]
#![warn(missing_docs)]

pub mod chatgpt;
pub mod criteria;
pub mod gpt4;
pub mod human;
pub mod pandalm;
pub mod stats;
pub mod tournament;
pub mod winrate;

pub use chatgpt::ChatGptRater;
pub use criteria::{CriteriaEngine, InstructionAnalysis, PairScores, ResponseAnalysis};
pub use gpt4::Gpt4Judge;
pub use human::{HumanPanel, Reviewer};
pub use pandalm::{PandaLm, Verdict};
pub use tournament::{run_tournament, Contestant, TournamentResult};
pub use winrate::{VerdictCounts, WinRates};
