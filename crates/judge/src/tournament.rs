//! Pairwise strategy tournament under the debiased PandaLM judge.
//!
//! Every contestant dataset is judged against every other over the same
//! reference arena, producing a full win/tie/loss matrix. Two invariances
//! are enforced *by construction* rather than hoped for:
//!
//! * **Position-swap invariance** — each unordered contestant pair is
//!   evaluated exactly once, in canonical (lexicographic-by-name) order,
//!   through [`PandaLm::compare`]'s both-orders debiasing; the mirror cell
//!   is the exact [`Verdict::invert`] of the canonical one. Swapping who
//!   is "first" cannot change the matrix because presentation order is
//!   derived from names, never from argument order.
//! * **Relabeling invariance** — contestants are sorted by name before
//!   any comparison, and every comparison id is derived from the two
//!   names and the reference pair id. Feeding the same contestants in a
//!   different order yields bit-identical results.
//!
//! A contestant that dropped a pair (a filtering strategy) falls back to
//! the reference text for that pair: filtering keeps its survivors
//! unrevised, so removed pairs contribute their originals — which is
//! exactly why revision can beat filtering head-to-head (Table VII).

use crate::pandalm::{PandaLm, Verdict};
use crate::winrate::VerdictCounts;
use coachlm_data::pair::{Dataset, InstructionPair};
use coachlm_text::fxhash::{FxHashMap, FxHasher};
use serde::Serialize;
use std::hash::Hasher;

/// One tournament entrant: a strategy name and its output dataset.
#[derive(Debug, Clone, Copy)]
pub struct Contestant<'a> {
    /// Strategy name (matrix row/column label).
    pub name: &'a str,
    /// The strategy's output over the reference arena.
    pub dataset: &'a Dataset,
}

/// Full pairwise tournament outcome.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TournamentResult {
    /// Contestant names in canonical (lexicographic) order; all matrix
    /// indices refer to this order.
    pub names: Vec<String>,
    /// `matrix[i][j]` holds the verdict counts of `names[i]` playing
    /// `names[j]`; the diagonal is empty and `matrix[j][i]` is the exact
    /// mirror (wins ↔ losses).
    pub matrix: Vec<Vec<VerdictCounts>>,
    /// Comparisons per cell — the reference arena size.
    pub comparisons: usize,
}

impl TournamentResult {
    /// The verdict counts of `a` against `b`, if both competed.
    pub fn counts(&self, a: &str, b: &str) -> Option<VerdictCounts> {
        let i = self.names.iter().position(|n| n == a)?;
        let j = self.names.iter().position(|n| n == b)?;
        self.matrix.get(i)?.get(j).copied()
    }

    /// Standings as `(name, mean WR1 across opponents)`, best first; ties
    /// break lexicographically so the order is total and deterministic.
    pub fn standings(&self) -> Vec<(String, f64)> {
        let mut rows: Vec<(String, f64)> = self
            .names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let row = self.matrix.get(i).map(Vec::as_slice).unwrap_or(&[]);
                let opponents: Vec<f64> = row
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, c)| c.rates().wr1)
                    .collect();
                let mean = if opponents.is_empty() {
                    0.5
                } else {
                    opponents.iter().sum::<f64>() / opponents.len() as f64
                };
                (name.clone(), mean)
            })
            .collect();
        rows.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        rows
    }
}

/// A stable comparison id from the unordered name pair and the reference
/// pair id — the judge's per-comparison RNG stream depends on nothing
/// else, which is what makes the matrix relabeling-invariant.
fn comparison_id(name_lo: &str, name_hi: &str, pair_id: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write(name_lo.as_bytes());
    h.write_u8(0xFF);
    h.write(name_hi.as_bytes());
    h.write_u8(0xFF);
    h.write_u64(pair_id);
    h.finish()
}

/// Runs the full round-robin: every unordered contestant pair, judged over
/// every reference pair with both-orders debiasing. Output is independent
/// of the order `contestants` are supplied in and of which member of a
/// pair is named first.
pub fn run_tournament(
    judge: &PandaLm,
    reference: &Dataset,
    contestants: &[Contestant<'_>],
) -> TournamentResult {
    let mut order: Vec<usize> = (0..contestants.len()).collect();
    order.sort_by(|&a, &b| {
        contestants
            .get(a)
            .map(|c| c.name)
            .cmp(&contestants.get(b).map(|c| c.name))
    });
    let sorted: Vec<Contestant<'_>> = order
        .iter()
        .filter_map(|&i| contestants.get(i).copied())
        .collect();
    let names: Vec<String> = sorted.iter().map(|c| c.name.to_string()).collect();

    // id → revised pair, per contestant; lookups only (no map iteration).
    let lookups: Vec<FxHashMap<u64, &InstructionPair>> = sorted
        .iter()
        .map(|c| c.dataset.pairs.iter().map(|p| (p.id, p)).collect())
        .collect();

    let n = sorted.len();
    let mut matrix = vec![vec![VerdictCounts::default(); n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let (name_lo, name_hi) = (names.get(i), names.get(j));
            let (Some(name_lo), Some(name_hi)) = (name_lo, name_hi) else {
                continue;
            };
            let mut lo_vs_hi = VerdictCounts::default();
            for pair in &reference.pairs {
                let lo = lookups
                    .get(i)
                    .and_then(|m| m.get(&pair.id))
                    .map_or(pair.response.as_str(), |p| p.response.as_str());
                let hi = lookups
                    .get(j)
                    .and_then(|m| m.get(&pair.id))
                    .map_or(pair.response.as_str(), |p| p.response.as_str());
                let id = comparison_id(name_lo, name_hi, pair.id);
                lo_vs_hi.add(judge.compare(id, &pair.instruction, lo, hi));
            }
            if let Some(row) = matrix.get_mut(i) {
                if let Some(cell) = row.get_mut(j) {
                    *cell = lo_vs_hi;
                }
            }
            if let Some(row) = matrix.get_mut(j) {
                if let Some(cell) = row.get_mut(i) {
                    *cell = mirror(lo_vs_hi);
                }
            }
        }
    }
    TournamentResult {
        names,
        matrix,
        comparisons: reference.pairs.len(),
    }
}

/// The mirror cell: every win becomes a loss and vice versa.
fn mirror(c: VerdictCounts) -> VerdictCounts {
    VerdictCounts {
        win: c.lose,
        tie: c.tie,
        lose: c.win,
    }
}

/// Sanity accessor used by tests: a verdict stream's mirror.
pub fn invert_all(verdicts: &[Verdict]) -> Vec<Verdict> {
    verdicts.iter().map(|v| v.invert()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coachlm_data::pair::Dataset;
    use coachlm_data::Category;

    const STRONG: &str = "The water cycle moves water through evaporation and rain. \
        This happens because the sun heats the oceans and lifts vapor into the sky. \
        For example, puddles vanish on sunny days. In summary, water circulates constantly. \
        I hope this helps; feel free to ask more.";
    const WEAK: &str = "Water moves around the sky sometimes.";

    fn arena(n: u64) -> Dataset {
        let pairs = (0..n)
            .map(|id| InstructionPair::new(id, format!("Explain topic {id}."), WEAK, Category(0)))
            .collect();
        Dataset {
            name: "arena".into(),
            pairs,
        }
    }

    fn improved(base: &Dataset, name: &str) -> Dataset {
        let pairs = base
            .pairs
            .iter()
            .map(|p| InstructionPair::new(p.id, p.instruction.clone(), STRONG, p.category))
            .collect();
        Dataset {
            name: name.into(),
            pairs,
        }
    }

    #[test]
    fn matrix_is_mirrored_and_relabeling_invariant() {
        let judge = PandaLm::new(3);
        let arena = arena(24);
        let good = improved(&arena, "good");
        let plain = arena.clone();
        let contestants = [
            Contestant {
                name: "revise",
                dataset: &good,
            },
            Contestant {
                name: "noop",
                dataset: &plain,
            },
        ];
        let ab = run_tournament(&judge, &arena, &contestants);
        let ba = run_tournament(&judge, &arena, &[contestants[1], contestants[0]]);
        assert_eq!(ab, ba, "supplying contestants in either order is identical");
        let rv = ab.counts("revise", "noop").unwrap();
        let vn = ab.counts("noop", "revise").unwrap();
        assert_eq!(rv.win, vn.lose);
        assert_eq!(rv.lose, vn.win);
        assert_eq!(rv.tie, vn.tie);
        assert!(rv.win > rv.lose, "the improved dataset wins the cell");
        let standings = ab.standings();
        assert_eq!(standings.first().map(|s| s.0.as_str()), Some("revise"));
    }

    #[test]
    fn dropped_pairs_fall_back_to_reference_text() {
        let judge = PandaLm::new(9);
        let arena = arena(16);
        // A "filter" that dropped everything is indistinguishable from the
        // no-op against the reference: all comparisons tie.
        let empty = Dataset {
            name: "empty".into(),
            pairs: Vec::new(),
        };
        let plain = arena.clone();
        let out = run_tournament(
            &judge,
            &arena,
            &[
                Contestant {
                    name: "filter",
                    dataset: &empty,
                },
                Contestant {
                    name: "noop",
                    dataset: &plain,
                },
            ],
        );
        // Dropping every pair must be bit-identical to submitting the
        // reference untouched, because dropped ids fall back to it.
        let full_copy = arena.clone();
        let same = run_tournament(
            &judge,
            &arena,
            &[
                Contestant {
                    name: "filter",
                    dataset: &full_copy,
                },
                Contestant {
                    name: "noop",
                    dataset: &plain,
                },
            ],
        );
        assert_eq!(out, same);
        let cell = out.counts("filter", "noop").unwrap();
        // Identical texts: judge noise may break a few ties, but the cell
        // is symmetric-by-expectation and tie-dominated.
        assert!(cell.tie > out.comparisons / 2);
    }
}
