//! The GPT-4-style paired scorer (§III-A1c).
//!
//! Chiang et al.'s prompt shows two candidate responses and asks GPT-4 for
//! two 0–10 scores plus a rationale. The paper notes this judge's
//! position bias when swapping candidates; we model a noticeably larger
//! first-position bonus than PandaLM's, which the swap protocol then
//! cancels. Scores share the criteria-engine quality signal with PandaLM
//! but not its noise stream, so the two judges agree in trend (Fig 5) while
//! disagreeing on individual samples.

use crate::chatgpt::gaussian;
use crate::criteria::CriteriaEngine;
use crate::pandalm::{combine_debiased, Verdict};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// A GPT-4 paired rating: two 0–10 scores.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PairedScores {
    /// Score of the first-presented candidate.
    pub first: f64,
    /// Score of the second-presented candidate.
    pub second: f64,
}

/// The GPT-4 judge.
#[derive(Debug, Clone)]
pub struct Gpt4Judge {
    engine: CriteriaEngine,
    seed: u64,
    /// Per-candidate score noise, on the 0–10 scale.
    pub noise: f64,
    /// First-position bonus, on the 0–10 scale (GPT-4's reported bias).
    pub position_bias: f64,
    /// Score gap below which the verdict is a tie.
    pub tie_band: f64,
}

impl Gpt4Judge {
    /// Creates a judge with GPT-4-calibrated noise/bias.
    pub fn new(seed: u64) -> Self {
        Self {
            engine: CriteriaEngine::new(),
            seed,
            noise: 0.55,
            position_bias: 0.35,
            tie_band: 0.35,
        }
    }

    /// Rates a presented pair (first, second) on 0–10 each.
    pub fn rate_pair(
        &self,
        comparison_id: u64,
        instruction: &str,
        first: &str,
        second: &str,
        order: u8,
    ) -> PairedScores {
        let qa = self.engine.score_pair(instruction, first).response / 10.0;
        let qb = self.engine.score_pair(instruction, second).response / 10.0;
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ comparison_id.wrapping_mul(0xD6E8_FEB8_6659_FD93) ^ u64::from(order) << 48,
        );
        PairedScores {
            first: (qa + self.position_bias + gaussian(&mut rng) * self.noise).clamp(0.0, 10.0),
            second: (qb + gaussian(&mut rng) * self.noise).clamp(0.0, 10.0),
        }
    }

    /// Single-order verdict for `first` vs `second`.
    pub fn compare_once(
        &self,
        comparison_id: u64,
        instruction: &str,
        first: &str,
        second: &str,
        order: u8,
    ) -> Verdict {
        let s = self.rate_pair(comparison_id, instruction, first, second, order);
        if (s.first - s.second).abs() < self.tie_band {
            Verdict::Tie
        } else if s.first > s.second {
            Verdict::Win
        } else {
            Verdict::Lose
        }
    }

    /// Debiased comparison (both orders, §III-A1 combination).
    pub fn compare(
        &self,
        comparison_id: u64,
        instruction: &str,
        candidate: &str,
        reference: &str,
    ) -> Verdict {
        let first = self.compare_once(comparison_id, instruction, candidate, reference, 0);
        let second = self
            .compare_once(comparison_id, instruction, reference, candidate, 1)
            .invert();
        combine_debiased(first, second)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STRONG: &str = "The water cycle moves water through evaporation and rain. \
        This happens because the sun heats the oceans and lifts vapor into the sky. \
        For example, puddles vanish on sunny days. In summary, water circulates constantly. \
        I hope this helps; feel free to ask more.";
    const WEAK: &str = "Water moves around the sky sometimes.";
    const INSTR: &str = "Explain the water cycle";

    #[test]
    fn scores_are_on_ten_scale() {
        let j = Gpt4Judge::new(1);
        let s = j.rate_pair(0, INSTR, STRONG, WEAK, 0);
        assert!(s.first > s.second);
        assert!((0.0..=10.0).contains(&s.first));
        assert!((0.0..=10.0).contains(&s.second));
    }

    #[test]
    fn clear_gap_wins_debiased() {
        let j = Gpt4Judge::new(2);
        assert_eq!(j.compare(0, INSTR, STRONG, WEAK), Verdict::Win);
    }

    #[test]
    fn position_bias_visible_in_single_order() {
        let j = Gpt4Judge::new(3);
        // Equal candidates: the first-presented one wins more often than it
        // loses across many single-order judgements.
        let (mut wins, mut losses) = (0, 0);
        for id in 0..300 {
            match j.compare_once(id, INSTR, STRONG, STRONG, 0) {
                Verdict::Win => wins += 1,
                Verdict::Lose => losses += 1,
                Verdict::Tie => {}
            }
        }
        assert!(wins > losses + 20, "wins {wins} losses {losses}");
    }

    #[test]
    fn debiasing_restores_symmetry() {
        let j = Gpt4Judge::new(4);
        let (mut wins, mut losses) = (0, 0);
        for id in 0..300 {
            match j.compare(id, INSTR, STRONG, STRONG) {
                Verdict::Win => wins += 1,
                Verdict::Lose => losses += 1,
                Verdict::Tie => {}
            }
        }
        let diff = (wins as i64 - losses as i64).abs();
        assert!(diff < 30, "wins {wins} losses {losses}");
    }

    #[test]
    fn deterministic_per_id() {
        let j = Gpt4Judge::new(5);
        assert_eq!(
            j.rate_pair(7, INSTR, STRONG, WEAK, 0),
            j.rate_pair(7, INSTR, STRONG, WEAK, 0)
        );
    }
}
