//! Win-rate arithmetic (§III-C1a).
//!
//! * `WR1 = (#win + 0.5·#tie) / #all`
//! * `WR2 = #win / (#all − #tie)`
//! * `QS  = (#win + #tie) / #all` — the share of responses reaching the
//!   reference's level.

use crate::pandalm::Verdict;
use serde::Serialize;

/// Counts of win/tie/lose verdicts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct VerdictCounts {
    /// Wins for the candidate.
    pub win: usize,
    /// Ties.
    pub tie: usize,
    /// Losses.
    pub lose: usize,
}

impl VerdictCounts {
    /// Accumulates one verdict.
    pub fn add(&mut self, v: Verdict) {
        match v {
            Verdict::Win => self.win += 1,
            Verdict::Tie => self.tie += 1,
            Verdict::Lose => self.lose += 1,
        }
    }

    /// Collects from an iterator.
    pub fn collect<I: IntoIterator<Item = Verdict>>(iter: I) -> Self {
        let mut c = Self::default();
        for v in iter {
            c.add(v);
        }
        c
    }

    /// Total comparisons.
    pub fn total(&self) -> usize {
        self.win + self.tie + self.lose
    }

    /// The three win rates.
    pub fn rates(&self) -> WinRates {
        let all = self.total();
        if all == 0 {
            return WinRates::default();
        }
        let all_f = all as f64;
        let wr2_den = all - self.tie;
        WinRates {
            wr1: (self.win as f64 + 0.5 * self.tie as f64) / all_f,
            wr2: if wr2_den == 0 {
                0.5
            } else {
                self.win as f64 / wr2_den as f64
            },
            qs: (self.win + self.tie) as f64 / all_f,
        }
    }
}

/// The WR1/WR2/QS triple (fractions in [0, 1]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct WinRates {
    /// Ties count half.
    pub wr1: f64,
    /// Ties excluded (0.5 when everything tied).
    pub wr2: f64,
    /// Quality score: reach-the-reference share.
    pub qs: f64,
}

impl WinRates {
    /// Average of the three rates (the Fig 5 y-axis).
    pub fn mean(&self) -> f64 {
        (self.wr1 + self.wr2 + self.qs) / 3.0
    }
}

impl std::fmt::Display for WinRates {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "WR1 {:5.1}%  WR2 {:5.1}%  QS {:5.1}%",
            self.wr1 * 100.0,
            self.wr2 * 100.0,
            self.qs * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Verdict::*;

    #[test]
    fn paper_formulas() {
        // 6 wins, 2 ties, 2 losses out of 10.
        let c = VerdictCounts {
            win: 6,
            tie: 2,
            lose: 2,
        };
        let r = c.rates();
        assert!((r.wr1 - 0.7).abs() < 1e-9);
        assert!((r.wr2 - 0.75).abs() < 1e-9);
        assert!((r.qs - 0.8).abs() < 1e-9);
    }

    #[test]
    fn collect_counts() {
        let c = VerdictCounts::collect([Win, Win, Tie, Lose]);
        assert_eq!(
            c,
            VerdictCounts {
                win: 2,
                tie: 1,
                lose: 1
            }
        );
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(VerdictCounts::default().rates(), WinRates::default());
        let all_tie = VerdictCounts {
            win: 0,
            tie: 5,
            lose: 0,
        };
        let r = all_tie.rates();
        assert!((r.wr1 - 0.5).abs() < 1e-9);
        assert!((r.wr2 - 0.5).abs() < 1e-9);
        assert!((r.qs - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mean_averages_the_three() {
        let c = VerdictCounts {
            win: 10,
            tie: 0,
            lose: 0,
        };
        assert!((c.rates().mean() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn display_formats_percentages() {
        let c = VerdictCounts {
            win: 1,
            tie: 0,
            lose: 1,
        };
        let s = format!("{}", c.rates());
        assert!(s.contains("50.0%"), "{s}");
    }
}
