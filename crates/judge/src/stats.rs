//! Statistics utilities: means, histograms, and the least-squares linear
//! fit (with R²) used for the Fig 5(b) extrapolation.

use serde::Serialize;

/// Arithmetic mean (0.0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (0.0 for fewer than two points).
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// A fixed-width histogram over `[lo, hi)`.
#[derive(Debug, Clone, Serialize)]
pub struct Histogram {
    /// Inclusive lower bound of the first bin.
    pub lo: f64,
    /// Exclusive upper bound of the last bin.
    pub hi: f64,
    /// Bin counts.
    pub bins: Vec<usize>,
    /// Values below `lo` or at/above `hi`.
    pub outliers: usize,
}

impl Histogram {
    /// Creates an empty histogram with `n` bins.
    ///
    /// # Panics
    /// Panics if `n == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n > 0 && hi > lo, "invalid histogram bounds");
        Self {
            lo,
            hi,
            bins: vec![0; n],
            outliers: 0,
        }
    }

    /// Adds one value.
    pub fn add(&mut self, x: f64) {
        if x < self.lo || x >= self.hi {
            // Values exactly at `hi` land in the last bin for convenience.
            if (x - self.hi).abs() < f64::EPSILON {
                let last = self.bins.len() - 1;
                self.bins[last] += 1;
            } else {
                self.outliers += 1;
            }
            return;
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let idx = (((x - self.lo) / width) as usize).min(self.bins.len() - 1);
        self.bins[idx] += 1;
    }

    /// Total counted values (excluding outliers).
    pub fn total(&self) -> usize {
        self.bins.iter().sum()
    }

    /// Bin fractions (empty histogram → zeros).
    pub fn fractions(&self) -> Vec<f64> {
        let t = self.total().max(1) as f64;
        self.bins.iter().map(|&b| b as f64 / t).collect()
    }
}

/// A least-squares line `y = slope·x + intercept` with its R².
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LinearFit {
    /// Slope.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

impl LinearFit {
    /// Predicted y at x.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// x where the line reaches y (None for a flat line).
    pub fn solve_for(&self, y: f64) -> Option<f64> {
        if self.slope.abs() < 1e-12 {
            None
        } else {
            Some((y - self.intercept) / self.slope)
        }
    }
}

/// Fits a least-squares line to `(x, y)` points.
///
/// Returns `None` for fewer than two points or zero x-variance.
pub fn linear_fit(points: &[(f64, f64)]) -> Option<LinearFit> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my = points.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mx).powi(2)).sum();
    if sxx < 1e-12 {
        return None;
    }
    let sxy: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - my).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    let r2 = if ss_tot < 1e-12 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(LinearFit {
        slope,
        intercept,
        r2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert!((stddev(&[2.0, 4.0]) - std::f64::consts::SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 5.0, 5);
        for x in [0.1, 0.9, 1.5, 4.9, 5.0, -0.1, 6.0] {
            h.add(x);
        }
        assert_eq!(h.bins, vec![2, 1, 0, 0, 2]); // 5.0 lands in last bin
        assert_eq!(h.outliers, 2);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_fractions_sum_to_one() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for i in 0..100 {
            h.add(i as f64 / 100.0);
        }
        let s: f64 = h.fractions().iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid histogram")]
    fn histogram_rejects_bad_bounds() {
        let _ = Histogram::new(1.0, 1.0, 3);
    }

    #[test]
    fn perfect_line_fits_exactly() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-9);
        assert!((fit.intercept - 1.0).abs() < 1e-9);
        assert!((fit.r2 - 1.0).abs() < 1e-9);
        assert!((fit.predict(20.0) - 61.0).abs() < 1e-9);
        assert!((fit.solve_for(61.0).unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_line_has_high_but_imperfect_r2() {
        let pts: Vec<(f64, f64)> = (0..20)
            .map(|i| {
                let x = i as f64;
                (x, 2.0 * x + if i % 2 == 0 { 0.5 } else { -0.5 })
            })
            .collect();
        let fit = linear_fit(&pts).unwrap();
        assert!(fit.r2 > 0.97 && fit.r2 < 1.0, "r2 {}", fit.r2);
    }

    #[test]
    fn degenerate_fits_return_none() {
        assert!(linear_fit(&[]).is_none());
        assert!(linear_fit(&[(1.0, 2.0)]).is_none());
        assert!(linear_fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
    }

    #[test]
    fn flat_line_has_no_solve_for() {
        let fit = linear_fit(&[(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)]).unwrap();
        assert!(fit.solve_for(7.0).is_none());
        assert!((fit.r2 - 1.0).abs() < 1e-9);
    }
}
