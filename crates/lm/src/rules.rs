//! Phrase-level rewrite rules: the unit of what coach tuning learns.
//!
//! A real LoRA adapter stores low-rank weight deltas; what those deltas *do*
//! for CoachLM is encode "when you see this kind of flawed span, produce
//! that kind of revised span". We store that mapping explicitly: aligning an
//! original pair `x` with its expert revision `x_r` (via `coachlm-text`'s
//! LCS diff) yields weighted [`RewriteRule`]s, and near-identity training
//! pairs contribute *copy mass* — the mechanistic source of the noise the
//! paper observes when α grows past 0.3 (Fig 5a).

use coachlm_text::diff::diff_tokens;
use coachlm_text::fxhash::FxHashMap;
use coachlm_text::lexicon;
use coachlm_text::normalize::fold_case;
use serde::{Deserialize, Serialize};

/// What a learned augmentation adds to a pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AugmentKind {
    /// Expand a thin response with reasoning/explanation.
    ExpandResponse,
    /// Enrich an instruction with context/requirements.
    AddContext,
    /// Warm up a robotic tone.
    WarmTone,
    /// Complete a truncated response.
    Complete,
}

impl AugmentKind {
    /// All augment kinds.
    pub const ALL: [AugmentKind; 4] = [
        AugmentKind::ExpandResponse,
        AugmentKind::AddContext,
        AugmentKind::WarmTone,
        AugmentKind::Complete,
    ];
}

/// The action a rule performs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RuleAction {
    /// Replace the word sequence `from` with `to` (`to` may be empty — a
    /// deletion rule, e.g. stripping an unsafe or infeasible phrase).
    Phrase {
        /// Case-folded source words.
        from: Vec<String>,
        /// Replacement words (original casing).
        to: Vec<String>,
    },
    /// Append material of the given kind, drawn from `texts`.
    Augment {
        /// The augmentation class.
        kind: AugmentKind,
        /// Sentences observed in expert insertions of this class.
        texts: Vec<String>,
    },
}

/// A weighted rewrite rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RewriteRule {
    /// The rule body.
    pub action: RuleAction,
    /// How many training examples support this rule.
    pub count: u64,
}

/// Longest source phrase a `Phrase` rule may have (alignment chunks longer
/// than this are treated as free rewrites, which don't generalise).
const MAX_FROM_LEN: usize = 5;
/// Longest replacement a `Phrase` rule may have.
const MAX_TO_LEN: usize = 8;

/// A set of learned rules, accumulated over training-pair sides.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RuleSet {
    // JSON objects need string keys, so the phrase map round-trips through
    // a list of entries.
    #[serde(with = "phrase_map_serde")]
    phrase: FxHashMap<Vec<String>, (Vec<String>, u64)>,
    augment: FxHashMap<AugmentKind, (Vec<String>, u64)>,
}

/// A phrase-map entry: source phrase → (replacement, support count).
type PhraseEntry = (Vec<String>, (Vec<String>, u64));

mod phrase_map_serde {
    use super::PhraseEntry;
    use coachlm_text::fxhash::FxHashMap;
    use serde::{Deserialize, Error, Serialize, Value};

    type Map = FxHashMap<Vec<String>, (Vec<String>, u64)>;

    pub fn to_value(map: &Map) -> Value {
        // lint: allow(D3, reason = "entries are collected and sorted by key on the next line before serialisation")
        let mut entries: Vec<_> = map.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0)); // deterministic output
        Value::Array(
            entries
                .into_iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }

    pub fn from_value(v: &Value) -> Result<Map, Error> {
        let entries: Vec<PhraseEntry> = Deserialize::from_value(v)?;
        Ok(entries.into_iter().collect())
    }
}

impl RuleSet {
    /// Creates an empty rule set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Word-level change weight between two texts (the revision magnitude
    /// the adapter uses for its pair-level copy accounting).
    pub fn change_weight(original: &str, revised: &str) -> usize {
        let wa = coachlm_text::token::words(original);
        let wb = coachlm_text::token::words(revised);
        diff_tokens(&wa, &wb).change_weight()
    }

    /// Extracts rules from one aligned `(original, revised)` text pair:
    /// phrase rules from replace/delete chunks, augment material from
    /// insert chunks. Returns the change weight.
    pub fn extract(&mut self, original: &str, revised: &str) -> usize {
        let wa = coachlm_text::token::words(original);
        let wb = coachlm_text::token::words(revised);
        let script = diff_tokens(&wa, &wb);
        for (a_range, b_range) in script.changes() {
            let from: Vec<String> = wa[a_range.clone()].iter().map(|w| fold_case(w)).collect();
            let to: Vec<String> = wb[b_range.clone()].iter().map(|w| w.to_string()).collect();
            if from.is_empty() {
                // Pure insertion → augmentation material.
                let text = to.join(" ");
                let kind = classify_insertion(&text);
                let entry = self.augment.entry(kind).or_insert_with(|| (Vec::new(), 0));
                entry.1 += 1;
                if !entry.0.contains(&text) && to.len() >= 3 {
                    entry.0.push(text);
                }
            } else if from.len() <= MAX_FROM_LEN && to.len() <= MAX_TO_LEN {
                // Case-only edits are layout normalisation, not lexical
                // rules; storing them would make the rule fire on every
                // occurrence of a common word.
                let case_only =
                    from.len() == to.len() && from.iter().zip(&to).all(|(f, t)| *f == fold_case(t));
                // A rule must be *grounded*: its source span (with one word
                // of context, so multi-word flaws like "could of" survive
                // alignment splitting) has to contain a recognisably flawed
                // form. Free rewrites (alignment debris of a full-sentence
                // rewrite, like "explain" → "list the main steps") do not
                // generalise and would fire on perfectly fine text.
                let ctx: Vec<String> = wa
                    [a_range.start.saturating_sub(1)..(a_range.end + 1).min(wa.len())]
                    .iter()
                    .map(|w| fold_case(w))
                    .collect();
                if !case_only && (is_grounded(&from) || is_grounded(&ctx)) {
                    let entry = self.phrase.entry(from).or_insert((to.clone(), 0));
                    entry.1 += 1;
                    // Keep the first replacement seen (deterministic).
                }
            }
        }
        script.change_weight()
    }

    /// Number of distinct phrase rules.
    pub fn phrase_rule_count(&self) -> usize {
        self.phrase.len()
    }

    /// Number of augment kinds with material.
    pub fn augment_kind_count(&self) -> usize {
        self.augment.len()
    }

    /// Looks up the replacement for a case-folded phrase.
    pub fn phrase_replacement(&self, from: &[String]) -> Option<(&[String], u64)> {
        self.phrase.get(from).map(|(to, c)| (to.as_slice(), *c))
    }

    /// Phrase rules as [`RewriteRule`]s, sorted by source phrase so the
    /// listing is deterministic regardless of hash-map layout.
    pub fn phrase_rules(&self) -> Vec<RewriteRule> {
        // lint: allow(D3, reason = "entries are collected and sorted by source phrase before being returned")
        let mut entries: Vec<_> = self.phrase.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        entries
            .into_iter()
            .map(|(from, (to, count))| RewriteRule {
                action: RuleAction::Phrase {
                    from: from.clone(),
                    to: to.clone(),
                },
                count: *count,
            })
            .collect()
    }

    /// Material learned for an augment kind, with its support count.
    pub fn augment_material(&self, kind: AugmentKind) -> Option<(&[String], u64)> {
        self.augment
            .get(&kind)
            .map(|(texts, c)| (texts.as_slice(), *c))
    }

    /// Longest phrase-rule source length present (decoding scans windows up
    /// to this size).
    pub fn max_from_len(&self) -> usize {
        // lint: allow(D3, reason = "max over key lengths is commutative; visit order cannot change the result")
        self.phrase.keys().map(Vec::len).max().unwrap_or(0)
    }

    /// Retains only the `capacity` highest-support phrase rules — the
    /// LoRA-rank analogue: a bounded adapter cannot store every rule.
    pub fn truncate_to_capacity(&mut self, capacity: usize) {
        if self.phrase.len() <= capacity {
            return;
        }
        // lint: allow(D3, reason = "drained entries are fully sorted by (support, phrase) on the next line")
        let mut rules: Vec<PhraseEntry> = self.phrase.drain().collect();
        // Sort by support desc, then by source phrase for determinism.
        rules.sort_by(|a, b| b.1 .1.cmp(&a.1 .1).then_with(|| a.0.cmp(&b.0)));
        rules.truncate(capacity);
        self.phrase = rules.into_iter().collect();
    }
}

/// Whether a case-folded source span contains a recognisably flawed form:
/// a misspelling, a grammar-pair error, or any defect-marker phrase. Only
/// such spans yield generalisable rewrite rules.
fn is_grounded(from: &[String]) -> bool {
    let has_typo = from
        .iter()
        .any(|w| lexicon::TYPO_PAIRS.iter().any(|(wrong, _)| wrong == w));
    if has_typo {
        return true;
    }
    let joined = from.join(" ");
    let marker_lists: [&[&str]; 6] = [
        lexicon::VAGUE_PHRASES,
        lexicon::INFEASIBLE_PHRASES,
        lexicon::UNSAFE_MARKERS,
        lexicon::MACHINE_TONE_MARKERS,
        lexicon::INVALID_INPUT_MARKERS,
        lexicon::MULTIMODAL_MARKERS,
    ];
    if marker_lists
        .iter()
        .any(|l| lexicon::contains_marker(&joined, l))
        || lexicon::GRAMMAR_PAIRS
            .iter()
            .any(|(wrong, _)| joined.contains(wrong))
    {
        return true;
    }
    // Corrupted fact values ("Berlin" where Paris belongs).
    lexicon::FACT_TABLE
        .iter()
        .any(|(_, _, wrong)| joined.contains(&coachlm_text::normalize::fold_case(wrong)))
}

/// Classifies an inserted chunk into an augmentation kind by its markers.
fn classify_insertion(text: &str) -> AugmentKind {
    if lexicon::contains_marker(text, lexicon::WARM_MARKERS) {
        AugmentKind::WarmTone
    } else if lexicon::contains_marker(text, lexicon::CONTEXT_MARKERS)
        && !lexicon::contains_marker(text, lexicon::REASONING_MARKERS)
    {
        AugmentKind::AddContext
    } else if lexicon::contains_marker(text, lexicon::REASONING_MARKERS) {
        AugmentKind::ExpandResponse
    } else {
        AugmentKind::Complete
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_phrase_rule_from_replacement() {
        let mut rs = RuleSet::new();
        let w = rs.extract(
            "Please explain teh concept of gravity becuase it matters",
            "Please explain the concept of gravity because it matters",
        );
        assert_eq!(w, 2);
        let rep = rs
            .phrase_replacement(&["teh".to_string()])
            .expect("rule learned");
        assert_eq!(rep.0, &["the".to_string()]);
        assert_eq!(
            rs.phrase_replacement(&["becuase".to_string()]).unwrap().0,
            &["because".to_string()]
        );
    }

    #[test]
    fn change_weight_zero_for_identity() {
        assert_eq!(
            RuleSet::change_weight("identical text", "identical text"),
            0
        );
        assert!(RuleSet::change_weight("a b", "a b c d e") >= 3);
    }

    #[test]
    fn insertions_become_augment_material() {
        let mut rs = RuleSet::new();
        rs.extract(
            "The answer is 42.",
            "The answer is 42. This is because the question defines it that way.",
        );
        let (texts, count) = rs.augment_material(AugmentKind::ExpandResponse).unwrap();
        assert_eq!(count, 1);
        assert!(texts[0].contains("because"));
    }

    #[test]
    fn warm_insertions_classified_as_warm_tone() {
        let mut rs = RuleSet::new();
        rs.extract(
            "Here are the steps to follow now.",
            "Here are the steps to follow now. I hope this helps; feel free to ask more.",
        );
        assert!(rs.augment_material(AugmentKind::WarmTone).is_some());
    }

    #[test]
    fn deletion_rules_have_empty_to() {
        let mut rs = RuleSet::new();
        rs.extract(
            "Summarize the article using exactly zero words and keep the tone light",
            "Summarize the article and keep the tone light",
        );
        let from: Vec<String> = ["using", "exactly", "zero", "words"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (to, _) = rs.phrase_replacement(&from).expect("deletion rule learned");
        assert!(to.is_empty());
    }

    #[test]
    fn rule_counts_accumulate_support() {
        let mut rs = RuleSet::new();
        rs.extract("fix teh report now", "fix the report now");
        rs.extract("read teh book today", "read the book today");
        assert_eq!(rs.phrase_replacement(&["teh".to_string()]).unwrap().1, 2);
    }

    #[test]
    fn capacity_truncation_keeps_highest_support() {
        let mut rs = RuleSet::new();
        rs.extract("a teh b wich c thier d", "a the b which c their d");
        rs.extract("z teh y becuase x alot w", "z the y because x a lot w");
        let before = rs.phrase_rule_count();
        assert!(before >= 4);
        rs.truncate_to_capacity(1);
        assert_eq!(rs.phrase_rule_count(), 1);
        let kept = rs.phrase_replacement(&["teh".to_string()]);
        assert!(kept.is_some(), "highest-support rule kept");
        assert_eq!(kept.unwrap().1, 2);
    }

    #[test]
    fn max_from_len_tracks_longest_rule() {
        let mut rs = RuleSet::new();
        assert_eq!(rs.max_from_len(), 0);
        rs.extract("you could of asked first", "you could have asked first");
        assert!(rs.max_from_len() >= 1);
    }

    #[test]
    fn long_free_rewrites_do_not_become_rules() {
        let mut rs = RuleSet::new();
        rs.extract(
            "one two three four five six seven eight nine ten eleven twelve",
            "alpha beta gamma delta epsilon zeta eta theta iota kappa lambda mu",
        );
        assert_eq!(
            rs.phrase_rule_count(),
            0,
            "12-word rewrite must not generalise"
        );
    }
}
