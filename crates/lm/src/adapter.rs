//! The LoRA-analogue adapter layered over a frozen backbone.
//!
//! The paper fine-tunes its backbone with LoRA for seven epochs at learning
//! rate 2×10⁻⁴ (§III-A3). Our adapter stores the learned [`RuleSet`]s for
//! the instruction and response sides plus an *elicitation strength* derived
//! from the training schedule: more substantive examples (and more epochs)
//! saturate elicitation toward 1, while copy-heavy training data dilutes it.

use crate::rules::RuleSet;
use serde::{Deserialize, Serialize};

/// Training hyper-parameters for coach instruction tuning; defaults match
/// the paper (§III-A3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdapterConfig {
    /// LoRA rank analogue: the adapter retains at most `rank × 16` distinct
    /// phrase rules per side.
    pub rank: usize,
    /// Training epochs (paper: 7).
    pub epochs: u32,
    /// Learning rate (paper: 2e-4). Scales how quickly elicitation
    /// saturates with example count.
    pub learning_rate: f64,
}

impl Default for AdapterConfig {
    fn default() -> Self {
        Self {
            rank: 16,
            epochs: 7,
            learning_rate: 2e-4,
        }
    }
}

impl AdapterConfig {
    /// Maximum phrase rules retained per side.
    pub fn rule_capacity(&self) -> usize {
        self.rank * 16
    }
}

/// Combined (instruction + response) word-level change weight at or below
/// which a training pair counts as near-identity: it contributes copy mass
/// instead of rules. Minor typo/layout fixes land here; substantive expert
/// revisions run an order of magnitude larger.
pub const PAIR_IDENTITY_THRESHOLD: usize = 6;

/// A trained adapter: per-side rule sets + elicitation strength.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Adapter {
    /// Rules learned from instruction-side revisions.
    pub instruction_rules: RuleSet,
    /// Rules learned from response-side revisions.
    pub response_rules: RuleSet,
    /// Near-identity training pairs observed (copy mass).
    pub copy_pairs: u64,
    /// Substantive training pairs observed.
    pub rule_pairs: u64,
    config: AdapterConfig,
    finalized: bool,
}

impl Adapter {
    /// Creates an untrained adapter with the given config.
    pub fn new(config: AdapterConfig) -> Self {
        Self {
            instruction_rules: RuleSet::new(),
            response_rules: RuleSet::new(),
            copy_pairs: 0,
            rule_pairs: 0,
            config,
            finalized: false,
        }
    }

    /// The training configuration.
    pub fn config(&self) -> &AdapterConfig {
        &self.config
    }

    /// Observes one training pair: `(original, revised)` instruction texts
    /// and response texts.
    ///
    /// A pair whose combined change weight is at most
    /// [`PAIR_IDENTITY_THRESHOLD`] is a near-identity example: it teaches
    /// "copy the input" (§II-F2's negative-sample concern) and adds copy
    /// mass instead of rules.
    pub fn observe(
        &mut self,
        orig_instruction: &str,
        rev_instruction: &str,
        orig_response: &str,
        rev_response: &str,
    ) {
        assert!(!self.finalized, "adapter already finalized");
        let weight = RuleSet::change_weight(orig_instruction, rev_instruction)
            + RuleSet::change_weight(orig_response, rev_response);
        if weight <= PAIR_IDENTITY_THRESHOLD {
            self.copy_pairs += 1;
            return;
        }
        self.rule_pairs += 1;
        self.instruction_rules
            .extract(orig_instruction, rev_instruction);
        self.response_rules.extract(orig_response, rev_response);
    }

    /// Finalizes training: applies the capacity bound (rank analogue).
    pub fn finalize(&mut self) {
        let cap = self.config.rule_capacity();
        self.instruction_rules.truncate_to_capacity(cap);
        self.response_rules.truncate_to_capacity(cap);
        self.finalized = true;
    }

    /// Whether any training examples were observed.
    pub fn is_trained(&self) -> bool {
        self.total_examples() > 0
    }

    /// Total training pairs observed.
    pub fn total_examples(&self) -> u64 {
        self.copy_pairs + self.rule_pairs
    }

    /// Fraction of training pairs that were near-identity copies; the
    /// "noise" share that dilutes revision behaviour at high α (Fig 5a).
    pub fn copy_ratio(&self) -> f64 {
        let total = self.total_examples();
        if total == 0 {
            0.0
        } else {
            self.copy_pairs as f64 / total as f64
        }
    }

    /// Elicitation strength in [0, 1): how reliably the tuned model enters
    /// "revise" mode rather than echoing its input.
    ///
    /// Saturates in (epochs × lr × substantive examples); an untrained
    /// adapter has strength 0 (the raw backbone's `alignment_prior` then
    /// governs behaviour, which is the α = 0 case of Fig 5a).
    pub fn elicitation(&self) -> f64 {
        let schedule = self.config.epochs as f64 * self.config.learning_rate / (7.0 * 2e-4);
        1.0 - (-0.012 * schedule * self.rule_pairs as f64).exp()
    }

    /// The copy-noise penalty in [0, 0.8]: grows with the copy ratio,
    /// reproducing the paper's observation that near-identity training
    /// pairs act like negative samples (§II-F2).
    pub fn copy_penalty(&self) -> f64 {
        0.8 * self.copy_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn substantive_pair() -> (&'static str, &'static str) {
        (
            "fix teh report becuase thier numbers seem wrong in alot of tables",
            "fix the report because their numbers seem wrong in a lot of tables now",
        )
    }

    #[test]
    fn untrained_adapter_has_zero_elicitation() {
        let a = Adapter::new(AdapterConfig::default());
        assert_eq!(a.elicitation(), 0.0);
        assert!(!a.is_trained());
    }

    #[test]
    fn elicitation_grows_with_examples() {
        let mut small = Adapter::new(AdapterConfig::default());
        let mut large = Adapter::new(AdapterConfig::default());
        let (o, r) = substantive_pair();
        for i in 0..5 {
            small.observe(&format!("{o} v{i}"), &format!("{r} v{i}"), o, r);
        }
        for i in 0..50 {
            large.observe(&format!("{o} v{i}"), &format!("{r} v{i}"), o, r);
        }
        assert!(large.elicitation() > small.elicitation());
        assert!(large.elicitation() < 1.0);
    }

    #[test]
    fn copy_heavy_training_raises_penalty() {
        let mut a = Adapter::new(AdapterConfig::default());
        let (o, r) = substantive_pair();
        a.observe(o, r, o, r);
        let clean_penalty = a.copy_penalty();
        a.observe("same", "same", "identical", "identical");
        a.observe("same2", "same2", "identical2", "identical2");
        assert!(a.copy_penalty() > clean_penalty);
        assert!(a.copy_penalty() <= 0.8);
    }

    #[test]
    fn finalize_applies_capacity() {
        let mut a = Adapter::new(AdapterConfig {
            rank: 0,
            epochs: 7,
            learning_rate: 2e-4,
        });
        let (o, r) = substantive_pair();
        a.observe(o, r, o, r);
        a.finalize();
        assert_eq!(a.response_rules.phrase_rule_count(), 0);
    }

    #[test]
    #[should_panic(expected = "finalized")]
    fn observing_after_finalize_panics() {
        let mut a = Adapter::new(AdapterConfig::default());
        a.finalize();
        a.observe("a", "b", "c", "d");
    }

    #[test]
    fn more_epochs_stronger_elicitation() {
        let fast = AdapterConfig {
            rank: 16,
            epochs: 14,
            learning_rate: 2e-4,
        };
        let slow = AdapterConfig {
            rank: 16,
            epochs: 3,
            learning_rate: 2e-4,
        };
        let (o, r) = substantive_pair();
        let mut a = Adapter::new(fast);
        let mut b = Adapter::new(slow);
        for i in 0..10 {
            a.observe(&format!("{o}{i}"), &format!("{r}{i}"), o, r);
            b.observe(&format!("{o}{i}"), &format!("{r}{i}"), o, r);
        }
        assert!(a.elicitation() > b.elicitation());
    }
}
