//! The revision transducer: applies a trained [`Adapter`] over a frozen
//! [`Backbone`] to revise an instruction pair (§II-F3, Eq. 2).
//!
//! Decoding is greedy (beam size 1, as in §III-A3) and seeded: for each
//! detected defect site, the transducer fires the applicable learned rule or
//! backbone-knowledge repair with probability [`Transducer::apply_probability`],
//! which combines the backbone's zero-shot alignment, the adapter's
//! elicitation strength, and the copy-noise penalty from near-identity
//! training pairs. That single probability is where the Fig 5(a) α-curve
//! comes from: more substantive training examples push it up; copy-heavy
//! training data pulls it down.

use crate::adapter::Adapter;
use crate::backbone::Backbone;
use crate::knowledge::KnowledgeBase;
use crate::rules::AugmentKind;
use coachlm_text::lexicon;
use coachlm_text::normalize;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// What kind of repair was applied at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RepairTag {
    /// Misspelling corrected.
    Typo,
    /// Multi-word grammar error corrected.
    Grammar,
    /// Factual corruption corrected.
    Fact,
    /// Vague instruction rewritten to be specific.
    VagueRewrite,
    /// Infeasible requirement removed/rewritten.
    InfeasibleFix,
    /// Context/requirements added to an instruction.
    ContextAdd,
    /// Response expanded with reasoning/explanations.
    Expand,
    /// Truncated response completed.
    Complete,
    /// Tone humanised.
    WarmTone,
    /// Unsafe content replaced with a safe completion.
    Safety,
    /// Layout/whitespace/punctuation normalised.
    Layout,
    /// Irrelevant response rewritten on-topic.
    RelevanceRewrite,
    /// A learned phrase rule (not classifiable above) fired.
    LearnedPhrase,
}

impl RepairTag {
    /// Every repair tag, in declaration order.
    pub const ALL: [RepairTag; 13] = [
        RepairTag::Typo,
        RepairTag::Grammar,
        RepairTag::Fact,
        RepairTag::VagueRewrite,
        RepairTag::InfeasibleFix,
        RepairTag::ContextAdd,
        RepairTag::Expand,
        RepairTag::Complete,
        RepairTag::WarmTone,
        RepairTag::Safety,
        RepairTag::Layout,
        RepairTag::RelevanceRewrite,
        RepairTag::LearnedPhrase,
    ];

    /// A stable string label (used as a stage-counter key suffix).
    pub fn label(self) -> &'static str {
        match self {
            RepairTag::Typo => "typo",
            RepairTag::Grammar => "grammar",
            RepairTag::Fact => "fact",
            RepairTag::VagueRewrite => "vague-rewrite",
            RepairTag::InfeasibleFix => "infeasible-fix",
            RepairTag::ContextAdd => "context-add",
            RepairTag::Expand => "expand",
            RepairTag::Complete => "complete",
            RepairTag::WarmTone => "warm-tone",
            RepairTag::Safety => "safety",
            RepairTag::Layout => "layout",
            RepairTag::RelevanceRewrite => "relevance-rewrite",
            RepairTag::LearnedPhrase => "learned-phrase",
        }
    }
}

/// The result of revising one instruction pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RevisionOutcome {
    /// Revised instruction text.
    pub instruction: String,
    /// Revised response text.
    pub response: String,
    /// Repairs applied, in order.
    pub repairs: Vec<RepairTag>,
    /// Whether the raw decode degenerated (echoed template / stuttered);
    /// callers replace such outputs with the originals (§III-B1).
    pub degenerate: bool,
}

impl RevisionOutcome {
    /// Whether the instruction side changed.
    pub fn instruction_changed(&self, original: &str) -> bool {
        self.instruction != original
    }

    /// Whether the response side changed.
    pub fn response_changed(&self, original: &str) -> bool {
        self.response != original
    }
}

/// Word-count below which a response without reasoning markers counts as
/// "thin" and eligible for expansion.
const THIN_RESPONSE_WORDS: usize = 60;
/// Relevance overlap below which a response counts as off-topic.
const RELEVANCE_FLOOR: f64 = 0.15;

/// A revision decoder over `(backbone, adapter)`.
#[derive(Debug)]
pub struct Transducer<'a> {
    backbone: &'a Backbone,
    adapter: &'a Adapter,
}

impl<'a> Transducer<'a> {
    /// Creates a transducer.
    pub fn new(backbone: &'a Backbone, adapter: &'a Adapter) -> Self {
        Self { backbone, adapter }
    }

    /// The backbone in use.
    pub fn backbone(&self) -> &Backbone {
        self.backbone
    }

    /// Probability that an applicable repair actually fires.
    ///
    /// `(prior + (1 − prior)·elicitation) · (1 − copy_penalty)`.
    pub fn apply_probability(&self) -> f64 {
        let prior = self.backbone.profile().alignment_prior;
        let e = self.adapter.elicitation();
        (prior + (1.0 - prior) * e) * (1.0 - self.adapter.copy_penalty())
    }

    /// Probability the decode degenerates (template echo / stutter); the
    /// source of the ~1.3 % invalid outputs the paper post-processes away.
    /// Foundation backbones without an alignment stage degenerate far more
    /// often — one of the reasons a LLaMA-backboned CoachLM gains little
    /// over Alpaca in Table XI.
    pub fn degeneracy_probability(&self) -> f64 {
        let prior = self.backbone.profile().alignment_prior;
        0.004 + 0.03 * (1.0 - self.apply_probability()) + 0.12 * (1.0 - prior).powi(3)
    }

    /// Revises one `(instruction, response)` pair. Deterministic for a
    /// given RNG state.
    pub fn revise_pair<R: Rng>(
        &self,
        rng: &mut R,
        instruction: &str,
        response: &str,
    ) -> RevisionOutcome {
        if rng.gen_bool(self.degeneracy_probability().clamp(0.0, 1.0)) {
            return self.degenerate_output(rng, instruction, response);
        }
        let mut repairs = Vec::new();
        let instr = self.revise_instruction(rng, instruction, &mut repairs);
        // Relevance and topic decisions are made against the *original*
        // instruction (that is what CoachLM conditions on), not the revised
        // one whose appended context would dilute lexical overlap.
        let resp = self.revise_response(rng, instruction, response, &mut repairs);
        RevisionOutcome {
            instruction: instr,
            response: resp,
            repairs,
            degenerate: false,
        }
    }

    fn degenerate_output<R: Rng>(
        &self,
        rng: &mut R,
        instruction: &str,
        response: &str,
    ) -> RevisionOutcome {
        // Two classic failure modes: echoing the prompt template, or a
        // decoding stutter.
        let resp = if rng.gen_bool(0.5) {
            format!("### Instruction: {instruction} ### Response: {response}")
        } else {
            let tail: String = response
                .split_whitespace()
                .take(4)
                .collect::<Vec<_>>()
                .join(" ");
            format!("{response} {}", format!("{tail} ").repeat(6).trim_end())
        };
        RevisionOutcome {
            instruction: instruction.to_string(),
            response: resp,
            repairs: Vec::new(),
            degenerate: true,
        }
    }

    // ----- instruction side ------------------------------------------------

    fn revise_instruction<R: Rng>(
        &self,
        rng: &mut R,
        instruction: &str,
        repairs: &mut Vec<RepairTag>,
    ) -> String {
        let p = self.apply_probability();
        let kb = self.backbone.knowledge();
        let mut text = instruction.to_string();

        // Infeasible requirements: strip the offending phrase.
        if let Some(marker) = lexicon::find_marker(&text, lexicon::INFEASIBLE_PHRASES) {
            if rng.gen_bool(p) {
                text = remove_phrase_fold(&text, marker);
                repairs.push(RepairTag::InfeasibleFix);
            }
        }

        // Vague instructions: rewrite around the topic.
        if lexicon::contains_marker(&text, lexicon::VAGUE_PHRASES) && rng.gen_bool(p) {
            let topic = topic_of(&text);
            let templates = kb.clarifications();
            if !templates.is_empty() && !topic.is_empty() {
                let t = self.pick_fluent(rng, templates, &topic);
                text = t;
                repairs.push(RepairTag::VagueRewrite);
            }
        }

        // Lexical repairs: learned phrase rules + backbone typo/grammar.
        let (fixed, tags) = apply_lexical(rng, p, kb, &self.adapter.instruction_rules, &text);
        text = fixed;
        repairs.extend(tags);

        // Context enrichment (advanced dimension — applied sparingly: the
        // paper observes CoachLM "primarily adjusted the logical and
        // linguistic aspects of the INSTRUCTIONS without adding much new
        // content", §III-B1).
        if !lexicon::contains_marker(&text, lexicon::CONTEXT_MARKERS) && rng.gen_bool(p * 0.06) {
            let templates = kb.contexts();
            let learned = self
                .adapter
                .instruction_rules
                .augment_material(AugmentKind::AddContext);
            let chosen = choose_augment(rng, learned, templates);
            if let Some(add) = chosen {
                text = format!("{} {}", text.trim_end(), add);
                repairs.push(RepairTag::ContextAdd);
            }
        }

        // Layout adjustment (the 68.1% "Adjust" class of Table IV).
        if rng.gen_bool(p) {
            let tidy = normalize::normalize_layout(&text);
            if tidy != text {
                text = tidy;
                repairs.push(RepairTag::Layout);
            }
        }
        text
    }

    // ----- response side ---------------------------------------------------

    fn revise_response<R: Rng>(
        &self,
        rng: &mut R,
        instruction: &str,
        response: &str,
        repairs: &mut Vec<RepairTag>,
    ) -> String {
        let p = self.apply_probability();
        let kb = self.backbone.knowledge();
        let mut text = response.to_string();
        let topic = topic_of(instruction);

        // Safety red line first: aligned backbones front-load this.
        if lexicon::contains_marker(&text, lexicon::UNSAFE_MARKERS) {
            let p_safe = p
                .max(self.backbone.profile().alignment_prior + 0.3)
                .min(0.98);
            if rng.gen_bool(p_safe) {
                let tmpl = kb.safe_completions();
                let lead = tmpl[rng.gen_range(0..tmpl.len())];
                text = format!("{lead} {}", self.compose_on_topic(rng, &topic, 2));
                repairs.push(RepairTag::Safety);
            }
        }

        // Relevance: rewrite off-topic responses around the instruction.
        if lexicon::is_off_topic(instruction, &text, RELEVANCE_FLOOR)
            && !topic.is_empty()
            && rng.gen_bool(p)
        {
            text = self.compose_on_topic(rng, &topic, 3);
            repairs.push(RepairTag::RelevanceRewrite);
        }

        // Truncation: complete the dangling sentence.
        if is_truncated(&text) && rng.gen_bool(p) {
            let trimmed = text
                .trim_end()
                .trim_end_matches("...")
                .trim_end_matches([',', ';', ' '])
                .to_string();
            let learned = self
                .adapter
                .response_rules
                .augment_material(AugmentKind::Complete);
            let closer = choose_augment(rng, learned, kb.expansions())
                .map(|c| {
                    KnowledgeBase::fill(&c, topic.first().map(String::as_str).unwrap_or("this"))
                })
                .unwrap_or_else(|| "and the remaining part follows the same pattern.".to_string());
            text = format!(
                "{} {}",
                normalize::ensure_terminal_punctuation(&trimmed),
                closer
            );
            repairs.push(RepairTag::Complete);
        }

        // Lexical repairs: learned phrase rules + typo/grammar + facts.
        let (fixed, tags) = apply_lexical(rng, p, kb, &self.adapter.response_rules, &text);
        text = fixed;
        repairs.extend(tags);
        if let Some((wrong, right)) = kb.fact_correction(&text) {
            if rng.gen_bool(p) {
                text = text.replace(&wrong, &right);
                repairs.push(RepairTag::Fact);
            }
        }

        // Expansion: the dominant revision class (43.7% of Table IV); it is
        // what drives the Table VII length growth (44 → 143 words).
        // CoachLM learned the expert bar (reasoning + example + ≥55 words),
        // so it expands anything below it — which is why Table VII's revised
        // responses average 3× the original length.
        let word_count = coachlm_text::token::word_count(&text);
        let has_reasoning = lexicon::contains_marker(&text, lexicon::REASONING_MARKERS);
        let has_example = normalize::fold_case(&text).contains("for example");
        let thin = word_count < THIN_RESPONSE_WORDS;
        // Expansion fires slightly less reliably than lexical repairs —
        // composing new content is the hardest revision class, and the
        // paper's revised dataset keeps ~21% of pairs below the 4.5 bar.
        if (thin || !has_reasoning || !has_example) && rng.gen_bool(p * 0.85) {
            // Enough sentences (~13 words each) to land near the paper's
            // revised-length average, plus reasoning/example markers.
            let deficit = 90usize.saturating_sub(word_count);
            let sentences = (deficit / 13).clamp(2, 7);
            let addition = self.compose_on_topic_avoiding(rng, &topic, sentences, &text);
            if !addition.is_empty() {
                text = format!(
                    "{} {}",
                    normalize::ensure_terminal_punctuation(&text),
                    addition
                );
                repairs.push(RepairTag::Expand);
            }
        }

        // Tone: strip machine boilerplate, add warmth.
        if let Some(marker) = lexicon::find_marker(&text, lexicon::MACHINE_TONE_MARKERS) {
            if rng.gen_bool(p) {
                text = remove_phrase_fold(&text, marker);
                repairs.push(RepairTag::WarmTone);
            }
        }
        if !lexicon::contains_marker(&text, lexicon::WARM_MARKERS) && rng.gen_bool(p * 0.5) {
            let learned = self
                .adapter
                .response_rules
                .augment_material(AugmentKind::WarmTone);
            if let Some(warm) = choose_augment(rng, learned, kb.warmth()) {
                text = format!("{} {}", normalize::ensure_terminal_punctuation(&text), warm);
                repairs.push(RepairTag::WarmTone);
            }
        }

        // Layout.
        if rng.gen_bool(p) {
            let tidy = normalize::normalize_layout(&text);
            if tidy != text {
                text = tidy;
                repairs.push(RepairTag::Layout);
            }
        }
        text
    }

    /// Composes `n` on-topic sentences from expansion material, preferring
    /// learned augment texts, scored for fluency by the backbone.
    fn compose_on_topic<R: Rng>(&self, rng: &mut R, topic: &[String], n: usize) -> String {
        self.compose_on_topic_avoiding(rng, topic, n, "")
    }

    /// Like [`Self::compose_on_topic`], but skips sentences already present
    /// in `avoid` (prevents duplicate expansions after a rewrite).
    fn compose_on_topic_avoiding<R: Rng>(
        &self,
        rng: &mut R,
        topic: &[String],
        n: usize,
        avoid: &str,
    ) -> String {
        let kb = self.backbone.knowledge();
        let templates = kb.expansions();
        let learned = self
            .adapter
            .response_rules
            .augment_material(AugmentKind::ExpandResponse);
        let mut pool: Vec<String> = Vec::new();
        if let Some((texts, _)) = learned {
            pool.extend(texts.iter().cloned());
        }
        let topic_word = topic.first().map(String::as_str).unwrap_or("the topic");
        pool.extend(templates.iter().map(|t| KnowledgeBase::fill(t, topic_word)));
        pool.retain(|s| !avoid.contains(s.as_str()));
        if pool.is_empty() {
            return String::new();
        }
        // Rank by backbone fluency (stronger backbones pick better prose),
        // then take a seeded rotation so output varies across pairs.
        let mut scored: Vec<(f64, String)> = pool
            .into_iter()
            .map(|s| (self.backbone.fluency(&s), s))
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        let start = rng.gen_range(0..scored.len().min(3));
        let mut picked: Vec<String> = scored
            .iter()
            .cycle()
            .skip(start)
            .take(n.min(scored.len()))
            .map(|(_, s)| s.clone())
            .collect();
        // The expert bar includes a concrete example; make sure one of the
        // picked sentences carries the marker when the pool has one.
        let has_example = |s: &str| normalize::fold_case(s).contains("for example");
        if !picked.iter().any(|s| has_example(s)) && !avoid.to_lowercase().contains("for example") {
            if let Some((_, ex)) = scored.iter().find(|(_, s)| has_example(s)) {
                if let Some(last) = picked.last_mut() {
                    *last = ex.clone();
                } else {
                    picked.push(ex.clone());
                }
            }
        }
        picked.dedup();
        picked.join(" ")
    }

    /// Fills each template with the topic and returns the most fluent one.
    fn pick_fluent<R: Rng>(&self, rng: &mut R, templates: &[&str], topic: &[String]) -> String {
        let topic_word = topic.first().map(String::as_str).unwrap_or("the request");
        let mut best: Option<(f64, String)> = None;
        for t in templates {
            let filled = KnowledgeBase::fill(t, topic_word);
            let f = self.backbone.fluency(&filled) + rng.gen_range(0.0..1e-9);
            if best.as_ref().is_none_or(|(bf, _)| f > *bf) {
                best = Some((f, filled));
            }
        }
        best.map(|(_, s)| s).unwrap_or_default()
    }
}

/// Topic content words of an instruction.
fn topic_of(text: &str) -> Vec<String> {
    lexicon::content_words(text, 4)
}

/// Whether the response looks truncated: ends with an ellipsis or a
/// non-terminal character.
fn is_truncated(text: &str) -> bool {
    let t = text.trim_end();
    if t.is_empty() {
        return false;
    }
    t.ends_with("...")
        || t.chars()
            .last()
            .is_some_and(|c| c.is_alphanumeric() || c == ',' || c == ';')
}

/// Case-insensitively removes one occurrence of `phrase` from `text`,
/// collapsing the leftover whitespace.
fn remove_phrase_fold(text: &str, phrase: &str) -> String {
    let folded = normalize::fold_case(text);
    let needle = normalize::fold_case(phrase);
    if let Some(pos) = folded.find(&needle) {
        let mut out = String::with_capacity(text.len());
        out.push_str(&text[..pos]);
        out.push_str(&text[pos + needle.len()..]);
        normalize::collapse_whitespace(&out)
    } else {
        text.to_string()
    }
}

/// Picks one augmentation text from the learned material (preferred) plus
/// the knowledge-base templates; `None` when both pools are empty.
fn choose_augment<R: Rng>(
    rng: &mut R,
    learned: Option<(&[String], u64)>,
    templates: &[&str],
) -> Option<String> {
    let mut pool: Vec<String> = Vec::new();
    if let Some((texts, _)) = learned {
        pool.extend(texts.iter().cloned());
    }
    pool.extend(templates.iter().map(|s| (*s).to_string()));
    if pool.is_empty() {
        None
    } else {
        let idx = rng.gen_range(0..pool.len());
        Some(pool.swap_remove(idx))
    }
}

/// Lexical pass shared by both sides: learned phrase rules (longest match
/// first), then backbone typo and grammar corrections.
fn apply_lexical<R: Rng>(
    rng: &mut R,
    p: f64,
    kb: &KnowledgeBase,
    rules: &crate::rules::RuleSet,
    text: &str,
) -> (String, Vec<RepairTag>) {
    let mut tags = Vec::new();
    let words = coachlm_text::token::words(text);
    let max_len = rules.max_from_len().clamp(1, 5);
    let mut out: Vec<String> = Vec::with_capacity(words.len());
    let mut i = 0usize;
    'outer: while i < words.len() {
        // Longest-match learned rule.
        for len in (1..=max_len.min(words.len() - i)).rev() {
            let window: Vec<String> = words[i..i + len]
                .iter()
                .map(|w| normalize::fold_case(w))
                .collect();
            if let Some((to, _count)) = rules.phrase_replacement(&window) {
                if rng.gen_bool(p) {
                    let informative = window.join(" ") != to.join(" ").to_lowercase();
                    out.extend(to.iter().cloned());
                    i += len;
                    if informative {
                        tags.push(RepairTag::LearnedPhrase);
                    }
                    continue 'outer;
                }
            }
        }
        // Backbone typo knowledge.
        let w = words[i];
        if let Some(fix) = kb.typo_correction(&normalize::fold_case(w)) {
            if rng.gen_bool(p) {
                out.push(fix.to_string());
                tags.push(RepairTag::Typo);
                i += 1;
                continue;
            }
        }
        out.push(w.to_string());
        i += 1;
    }
    // Only adopt the token-rebuilt text when a rule actually fired —
    // rebuilding normalises whitespace/newlines, which is the layout
    // pass's job, not this one's.
    let mut joined = if tags.is_empty() {
        text.to_string()
    } else {
        join_words(&out)
    };
    // Grammar phrases operate on the joined text.
    while let Some((wrong, right)) = kb.grammar_correction(&joined) {
        if !rng.gen_bool(p) {
            break;
        }
        let folded = normalize::fold_case(&joined);
        if let Some(pos) = folded.find(wrong) {
            joined.replace_range(pos..pos + wrong.len(), right);
            tags.push(RepairTag::Grammar);
        } else {
            break;
        }
    }
    (joined, tags)
}

/// Joins word tokens back into text with sane punctuation spacing.
fn join_words(words: &[String]) -> String {
    let mut out = String::new();
    for w in words {
        let is_punct = w.chars().all(|c| !c.is_alphanumeric()) && w.chars().count() == 1;
        let opens = matches!(w.as_str(), "(" | "[" | "{" | "\"" | "'");
        let space_before = if is_punct {
            opens
        } else {
            !out.ends_with(['(', '[', '{'])
        };
        if !out.is_empty() && space_before {
            out.push(' ');
        }
        out.push_str(w);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::AdapterConfig;
    use crate::backbone::BackboneKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn strong_setup() -> (Backbone, Adapter) {
        let backbone = Backbone::load(BackboneKind::ChatGlm2_6b);
        let mut adapter = Adapter::new(AdapterConfig::default());
        // Enough substantive examples to saturate elicitation.
        for i in 0..400 {
            adapter.observe(
                &format!("explain teh topic {i} becuase readers ask alot about it"),
                &format!("explain the topic {i} because readers ask a lot about it today"),
                &format!("short answer {i}"),
                &format!(
                    "Short answer {i}. This is because the underlying idea matters. \
                     For example, a concrete case makes it clear. In summary, details help."
                ),
            );
        }
        adapter.finalize();
        (backbone, adapter)
    }

    #[test]
    fn trained_transducer_fires_reliably() {
        let (b, a) = strong_setup();
        let t = Transducer::new(&b, &a);
        assert!(t.apply_probability() > 0.9, "p = {}", t.apply_probability());
    }

    #[test]
    fn untrained_transducer_uses_prior_only() {
        let b = Backbone::load(BackboneKind::ChatGlm2_6b);
        let a = Adapter::new(AdapterConfig::default());
        let t = Transducer::new(&b, &a);
        assert!((t.apply_probability() - b.profile().alignment_prior).abs() < 1e-9);
    }

    #[test]
    fn fixes_typos_in_both_sides() {
        let (b, a) = strong_setup();
        let t = Transducer::new(&b, &a);
        let mut rng = StdRng::seed_from_u64(3);
        let out = t.revise_pair(
            &mut rng,
            "Explain teh water cycle to a child",
            "Water evaporates becuase of heat and later falls as rain over rivers and fields.",
        );
        assert!(
            out.instruction.contains("the water cycle"),
            "{}",
            out.instruction
        );
        assert!(
            out.response.to_lowercase().contains("because"),
            "{}",
            out.response
        );
        assert!(out
            .repairs
            .iter()
            .any(|r| matches!(r, RepairTag::Typo | RepairTag::LearnedPhrase)));
    }

    #[test]
    fn expands_thin_responses() {
        let (b, a) = strong_setup();
        let t = Transducer::new(&b, &a);
        let mut rng = StdRng::seed_from_u64(11);
        let out = t.revise_pair(&mut rng, "Explain photosynthesis", "Plants make food.");
        let before = coachlm_text::token::word_count("Plants make food.");
        let after = coachlm_text::token::word_count(&out.response);
        assert!(
            after > before * 3,
            "expanded {before} -> {after}: {}",
            out.response
        );
        assert!(out.repairs.contains(&RepairTag::Expand));
    }

    #[test]
    fn rewrites_irrelevant_responses_on_topic() {
        let (b, a) = strong_setup();
        let t = Transducer::new(&b, &a);
        let mut rng = StdRng::seed_from_u64(5);
        let out = t.revise_pair(
            &mut rng,
            "Describe the climate of the Sahara desert",
            "Bananas are yellow and taste sweet when ripe.",
        );
        assert!(
            out.repairs.contains(&RepairTag::RelevanceRewrite),
            "{:?}",
            out.repairs
        );
        let overlap =
            lexicon::content_overlap("Describe the climate of the Sahara desert", &out.response);
        assert!(overlap > 0.2, "overlap {overlap}: {}", out.response);
    }

    #[test]
    fn replaces_unsafe_content() {
        let (b, a) = strong_setup();
        let t = Transducer::new(&b, &a);
        let mut rng = StdRng::seed_from_u64(9);
        let out = t.revise_pair(
            &mut rng,
            "Give investment advice",
            "Buy this coin, guaranteed to double your investment overnight.",
        );
        assert!(
            out.repairs.contains(&RepairTag::Safety),
            "{:?}",
            out.repairs
        );
        assert!(!lexicon::contains_marker(
            &out.response,
            lexicon::UNSAFE_MARKERS
        ));
    }

    #[test]
    fn completes_truncated_responses() {
        let (b, a) = strong_setup();
        let t = Transducer::new(&b, &a);
        let mut rng = StdRng::seed_from_u64(21);
        let out = t.revise_pair(
            &mut rng,
            "List three uses of baking soda",
            "Baking soda can be used for cleaning, baking, and...",
        );
        assert!(
            out.repairs.contains(&RepairTag::Complete),
            "{:?}",
            out.repairs
        );
        assert!(!out.response.trim_end().ends_with("..."));
    }

    #[test]
    fn strips_infeasible_requirements() {
        let (b, a) = strong_setup();
        let t = Transducer::new(&b, &a);
        let mut rng = StdRng::seed_from_u64(2);
        let out = t.revise_pair(
            &mut rng,
            "Summarize this paragraph using exactly zero words for the team",
            "A summary of the paragraph would describe the team goals clearly and simply.",
        );
        assert!(
            out.repairs.contains(&RepairTag::InfeasibleFix),
            "{:?}",
            out.repairs
        );
        assert!(!lexicon::contains_marker(
            &out.instruction,
            lexicon::INFEASIBLE_PHRASES
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let (b, a) = strong_setup();
        let t = Transducer::new(&b, &a);
        let mut r1 = StdRng::seed_from_u64(77);
        let mut r2 = StdRng::seed_from_u64(77);
        let o1 = t.revise_pair(&mut r1, "Explain teh tides", "The moon pulls water.");
        let o2 = t.revise_pair(&mut r2, "Explain teh tides", "The moon pulls water.");
        assert_eq!(o1, o2);
    }

    #[test]
    fn degenerate_outputs_flagged() {
        let (b, a) = strong_setup();
        let t = Transducer::new(&b, &a);
        let mut rng = StdRng::seed_from_u64(0);
        let mut degens = 0usize;
        for _ in 0..2000 {
            let out = t.revise_pair(&mut rng, "Say hi", "Hello there, nice to meet you today.");
            if out.degenerate {
                degens += 1;
                // Degenerates are detectable: template leak, or a trailing
                // stutter the §III-B1 cleaning pass collapses.
                let cleaned = coachlm_text::clean::clean_output(&out.response);
                assert!(
                    out.response.contains("### Instruction:") || cleaned.len() < out.response.len(),
                    "undetectable degenerate: {}",
                    out.response
                );
            }
        }
        // degeneracy_probability ≈ 0.7–1.3%; allow a wide band.
        assert!(degens > 2 && degens < 80, "degens = {degens}");
    }

    #[test]
    fn weak_backbone_repairs_less() {
        let weak_b = Backbone::load(BackboneKind::Llama7b);
        let strong_b = Backbone::load(BackboneKind::ChatGlm2_6b);
        let empty = Adapter::new(AdapterConfig::default());
        let tw = Transducer::new(&weak_b, &empty);
        let ts = Transducer::new(&strong_b, &empty);
        assert!(tw.apply_probability() < ts.apply_probability());
    }

    #[test]
    fn join_words_respects_punctuation() {
        let words: Vec<String> = ["Hello", ",", "world", "!"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(join_words(&words), "Hello, world!");
    }

    #[test]
    fn remove_phrase_is_case_insensitive() {
        assert_eq!(
            remove_phrase_fold(
                "Do it Using Exactly Zero Words now",
                "using exactly zero words"
            ),
            "Do it now"
        );
    }
}
