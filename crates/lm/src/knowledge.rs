//! The repair knowledge base available to a backbone.
//!
//! §II-F1 of the paper argues that "the requisite knowledge for content
//! revision exists in the pre-training stage of LLMs" and coach tuning only
//! *elicits* it. We model that stored knowledge explicitly: a knowledge base
//! of corrections, templates, and phrases, of which a backbone commands a
//! profile-dependent prefix (its *coverage*). Coach tuning (in
//! `coachlm-core`) then decides **when** to apply which repair — it cannot
//! invent repairs the backbone does not know, which is exactly why stronger
//! backbones yield stronger CoachLMs (Table XI).

use coachlm_text::lexicon;

/// Expansion templates used to enrich a bare response with reasoning or
/// explanation (Table IV: "Diversify angles… expand the reasoning process",
/// 43.7 % of response revisions). `{}` is the topic slot.
pub const EXPANSION_TEMPLATES: &[&str] = &[
    "Let us break this down step by step to make the reasoning clear.",
    "This is because {} plays the central role in the outcome.",
    "For example, a concrete case of {} makes the idea easier to see.",
    "In summary, the key points above cover the main aspects of {}.",
    "Note that edge cases of {} deserve attention as well.",
    "To add background, {} is commonly discussed in this context.",
    "As a result, the conclusion follows from the facts about {}.",
    "A useful way to remember this is to connect {} with a familiar situation.",
];

/// Clarification templates that turn a vague instruction into a specific
/// one (Table IV: "Rewrite infeasible instructions… confusing and ambiguous
/// part", 24.9 % of instruction revisions). `{}` is the topic slot.
pub const CLARIFY_TEMPLATES: &[&str] = &[
    "Please provide a clear and specific answer about {}.",
    "Explain {} in two or three sentences with one concrete example.",
    "Describe the most important aspects of {} for a general reader.",
    "List the main steps involved in {} in order.",
];

/// Context-enrichment sentences appended to instructions lacking context
/// (Table IV: "Diversify the context; add specific requirements and
/// examples", 7.0 %).
pub const CONTEXT_TEMPLATES: &[&str] = &[
    "For example, you could structure the answer as a short list.",
    "You are a knowledgeable assistant; include at least one concrete example.",
    "Please reason step by step and state any assumptions.",
    "Requirements: keep the answer factual, structured, and under 200 words.",
];

/// Warm closers used to humanise a response's tone (Table IV: "Adjust the
/// tone to be empathetic and personalized").
pub const WARMTH_TEMPLATES: &[&str] = &[
    "I hope this helps; feel free to ask a follow up question.",
    "That is a great question, and the points above cover the essentials.",
    "Happy to help - let me know if you would like more detail.",
];

/// Safe-completion templates replacing unsafe response content.
pub const SAFE_COMPLETION_TEMPLATES: &[&str] = &[
    "I can't help with that part, but here is safe, general information instead.",
    "For safety reasons, please consult a qualified professional about this.",
];

/// A backbone's view of the knowledge base: each list is truncated to the
/// backbone's coverage fraction.
#[derive(Debug, Clone)]
pub struct KnowledgeBase {
    coverage: f64,
}

impl KnowledgeBase {
    /// Creates a view with the given coverage fraction in `[0, 1]`.
    pub fn with_coverage(coverage: f64) -> Self {
        Self {
            coverage: coverage.clamp(0.0, 1.0),
        }
    }

    /// The coverage fraction.
    pub fn coverage(&self) -> f64 {
        self.coverage
    }

    fn take(&self, len: usize) -> usize {
        ((len as f64) * self.coverage).round() as usize
    }

    /// Correction for a misspelled word, if known at this coverage.
    pub fn typo_correction(&self, word: &str) -> Option<&'static str> {
        lexicon::typo_correction(word, self.take(lexicon::TYPO_PAIRS.len()))
    }

    /// Correction for a multi-word grammar error found in `text`, as
    /// `(wrong, right)`, if known at this coverage.
    pub fn grammar_correction(&self, text: &str) -> Option<(&'static str, &'static str)> {
        let folded = coachlm_text::normalize::fold_case(text);
        lexicon::GRAMMAR_PAIRS
            .iter()
            .take(self.take(lexicon::GRAMMAR_PAIRS.len()))
            .find(|(wrong, _)| folded.contains(wrong))
            .copied()
    }

    /// Fact correction: if `text` contains a corrupted fact this backbone
    /// knows, returns `(wrong_fragment, corrected_fragment)`.
    pub fn fact_correction(&self, text: &str) -> Option<(String, String)> {
        let folded = coachlm_text::normalize::fold_case(text);
        for (subject, correct, wrong) in lexicon::FACT_TABLE
            .iter()
            .take(self.take(lexicon::FACT_TABLE.len()))
        {
            let subj = coachlm_text::normalize::fold_case(subject);
            let wrong_f = coachlm_text::normalize::fold_case(wrong);
            if folded.contains(&subj) && folded.contains(&wrong_f) {
                return Some(((*wrong).to_string(), (*correct).to_string()));
            }
        }
        None
    }

    /// Expansion templates available at this coverage.
    pub fn expansions(&self) -> &'static [&'static str] {
        &EXPANSION_TEMPLATES[..self.take(EXPANSION_TEMPLATES.len())]
    }

    /// Clarification templates available at this coverage.
    pub fn clarifications(&self) -> &'static [&'static str] {
        &CLARIFY_TEMPLATES[..self.take(CLARIFY_TEMPLATES.len())]
    }

    /// Context-enrichment templates available at this coverage.
    pub fn contexts(&self) -> &'static [&'static str] {
        &CONTEXT_TEMPLATES[..self.take(CONTEXT_TEMPLATES.len())]
    }

    /// Warm closers available at this coverage.
    pub fn warmth(&self) -> &'static [&'static str] {
        &WARMTH_TEMPLATES[..self.take(WARMTH_TEMPLATES.len())]
    }

    /// Safe-completion templates (always fully available — safety
    /// knowledge is front-loaded in every aligned backbone).
    pub fn safe_completions(&self) -> &'static [&'static str] {
        SAFE_COMPLETION_TEMPLATES
    }

    /// Instantiates a template's `{}` slot with `topic`.
    pub fn fill(template: &str, topic: &str) -> String {
        template.replace("{}", topic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_coverage_knows_everything() {
        let kb = KnowledgeBase::with_coverage(1.0);
        assert_eq!(kb.typo_correction("teh"), Some("the"));
        assert_eq!(kb.typo_correction("tommorow"), Some("tomorrow"));
        assert_eq!(kb.expansions().len(), EXPANSION_TEMPLATES.len());
    }

    #[test]
    fn low_coverage_knows_a_prefix() {
        let kb = KnowledgeBase::with_coverage(0.1);
        // "teh" is the most common typo — still known.
        assert_eq!(kb.typo_correction("teh"), Some("the"));
        // A tail typo is unknown at 10% coverage.
        assert_eq!(kb.typo_correction("tommorow"), None);
        assert!(kb.expansions().len() < EXPANSION_TEMPLATES.len());
    }

    #[test]
    fn zero_coverage_knows_nothing_but_safety() {
        let kb = KnowledgeBase::with_coverage(0.0);
        assert_eq!(kb.typo_correction("teh"), None);
        assert!(kb.expansions().is_empty());
        assert!(!kb.safe_completions().is_empty());
    }

    #[test]
    fn grammar_correction_matches_phrases() {
        let kb = KnowledgeBase::with_coverage(1.0);
        let (wrong, right) = kb.grammar_correction("You could of asked first").unwrap();
        assert_eq!(wrong, "could of");
        assert_eq!(right, "could have");
        assert!(kb.grammar_correction("perfectly fine text").is_none());
    }

    #[test]
    fn fact_correction_detects_corruption() {
        let kb = KnowledgeBase::with_coverage(1.0);
        let (wrong, right) = kb
            .fact_correction("Everyone knows the capital of France is Berlin.")
            .unwrap();
        assert_eq!(wrong, "Berlin");
        assert_eq!(right, "Paris");
        assert!(kb
            .fact_correction("the capital of France is Paris, of course")
            .is_none());
    }

    #[test]
    fn coverage_is_monotone() {
        let weak = KnowledgeBase::with_coverage(0.3);
        let strong = KnowledgeBase::with_coverage(0.9);
        // Every repair the weak backbone knows, the strong one knows too.
        for (wrong, _) in coachlm_text::lexicon::TYPO_PAIRS {
            if weak.typo_correction(wrong).is_some() {
                assert!(strong.typo_correction(wrong).is_some());
            }
        }
        assert!(strong.expansions().len() >= weak.expansions().len());
    }

    #[test]
    fn fill_replaces_slot() {
        assert_eq!(
            KnowledgeBase::fill("All about {} here", "gravity"),
            "All about gravity here"
        );
        assert_eq!(KnowledgeBase::fill("no slot", "x"), "no slot");
    }
}
