//! Vocabulary over interned word symbols with special tokens and counts.

use coachlm_text::fxhash::FxHashMap;
use coachlm_text::intern::{Interner, Sym};

/// Special begin-of-sequence token text.
pub const BOS: &str = "<s>";
/// Special end-of-sequence token text.
pub const EOS: &str = "</s>";
/// Special unknown-word token text.
pub const UNK: &str = "<unk>";

/// A counting vocabulary: interns words and tracks unigram frequencies.
#[derive(Debug)]
pub struct Vocab {
    interner: Interner,
    counts: FxHashMap<Sym, u64>,
    total: u64,
    bos: Sym,
    eos: Sym,
    unk: Sym,
}

impl Default for Vocab {
    fn default() -> Self {
        Self::new()
    }
}

impl Vocab {
    /// Creates a vocabulary containing only the special tokens.
    pub fn new() -> Self {
        let mut interner = Interner::with_capacity(1024);
        let bos = interner.intern(BOS);
        let eos = interner.intern(EOS);
        let unk = interner.intern(UNK);
        Self {
            interner,
            counts: FxHashMap::default(),
            total: 0,
            bos,
            eos,
            unk,
        }
    }

    /// The begin-of-sequence symbol.
    pub fn bos(&self) -> Sym {
        self.bos
    }

    /// The end-of-sequence symbol.
    pub fn eos(&self) -> Sym {
        self.eos
    }

    /// The unknown-word symbol.
    pub fn unk(&self) -> Sym {
        self.unk
    }

    /// Interns (and counts) a word during training.
    pub fn add(&mut self, word: &str) -> Sym {
        let sym = self.interner.intern(word);
        *self.counts.entry(sym).or_insert(0) += 1;
        self.total += 1;
        sym
    }

    /// Encodes a word for scoring: known words map to their symbol, unknown
    /// words to [`UNK`]. Does not mutate the vocabulary.
    pub fn encode(&self, word: &str) -> Sym {
        self.interner.get(word).unwrap_or(self.unk)
    }

    /// Encodes a whole string via the canonical word tokeniser, wrapping the
    /// sequence in BOS/EOS.
    pub fn encode_text(&self, text: &str) -> Vec<Sym> {
        let mut out = Vec::with_capacity(16);
        out.push(self.bos);
        for w in coachlm_text::token::words(text) {
            out.push(self.encode(w));
        }
        out.push(self.eos);
        out
    }

    /// Interns + counts a whole training string, returning the BOS/EOS
    /// wrapped symbol sequence.
    pub fn add_text(&mut self, text: &str) -> Vec<Sym> {
        let words = coachlm_text::token::words(text);
        let mut out = Vec::with_capacity(words.len() + 2);
        out.push(self.bos);
        for w in words {
            out.push(self.add(w));
        }
        out.push(self.eos);
        out
    }

    /// Resolves a symbol back to its word text.
    pub fn resolve(&self, sym: Sym) -> &str {
        self.interner.resolve(sym)
    }

    /// Training count of `sym` (0 for specials unless they appeared).
    pub fn count(&self, sym: Sym) -> u64 {
        self.counts.get(&sym).copied().unwrap_or(0)
    }

    /// Total number of counted word occurrences.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct words (including the three specials).
    pub fn len(&self) -> usize {
        self.interner.len()
    }

    /// Whether only the special tokens exist.
    pub fn is_empty(&self) -> bool {
        self.interner.len() <= 3
    }

    /// Whether `word` is in-vocabulary.
    pub fn contains(&self, word: &str) -> bool {
        self.interner.get(word).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_with_specials() {
        let v = Vocab::new();
        assert_eq!(v.len(), 3);
        assert!(v.is_empty());
        assert_ne!(v.bos(), v.eos());
        assert_ne!(v.eos(), v.unk());
    }

    #[test]
    fn add_counts_occurrences() {
        let mut v = Vocab::new();
        let a1 = v.add("apple");
        let a2 = v.add("apple");
        assert_eq!(a1, a2);
        assert_eq!(v.count(a1), 2);
        assert_eq!(v.total(), 2);
    }

    #[test]
    fn encode_maps_oov_to_unk() {
        let mut v = Vocab::new();
        v.add("known");
        assert_eq!(v.encode("known"), v.encode("known"));
        assert_eq!(v.encode("never-seen"), v.unk());
    }

    #[test]
    fn encode_text_wraps_with_bos_eos() {
        let mut v = Vocab::new();
        v.add("hello");
        let seq = v.encode_text("hello world");
        assert_eq!(seq.first(), Some(&v.bos()));
        assert_eq!(seq.last(), Some(&v.eos()));
        assert_eq!(seq.len(), 4);
        assert_eq!(seq[2], v.unk()); // "world" unseen
    }

    #[test]
    fn add_text_then_encode_round_trip() {
        let mut v = Vocab::new();
        let train = v.add_text("the cat sat");
        let enc = v.encode_text("the cat sat");
        assert_eq!(train, enc);
        assert!(v.contains("cat"));
    }
}
