//! Backbone model profiles.
//!
//! The paper trains CoachLM from three open backbones (Table XI): LLaMA-7B
//! (a foundation model), ChatGLM-6B, and ChatGLM2-6B (both RL-tuned chat
//! models), observing that stronger backbones yield stronger CoachLMs. Our
//! backbone stand-ins differ along the axes that plausibly cause that
//! ordering: how much pre-training text they saw (corpus fraction → n-gram
//! fluency), how much of the repair knowledge base they command (coverage),
//! and how strong their prior alignment is (RL-tuned models follow the
//! revision instruction more reliably).

use crate::knowledge::KnowledgeBase;
use crate::ngram_model::NgramLm;

/// The identity of a supported backbone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum BackboneKind {
    /// LLaMA-7B: foundation model, no alignment stage.
    Llama7b,
    /// ChatGLM-6B: RL-tuned chat model, first generation.
    ChatGlm6b,
    /// ChatGLM2-6B: RL-tuned chat model, second generation (the paper's
    /// main-experiment backbone, §III-A3).
    ChatGlm2_6b,
}

impl BackboneKind {
    /// All supported kinds, in Table XI order.
    pub const ALL: [BackboneKind; 3] = [
        BackboneKind::Llama7b,
        BackboneKind::ChatGlm6b,
        BackboneKind::ChatGlm2_6b,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            BackboneKind::Llama7b => "LLaMA",
            BackboneKind::ChatGlm6b => "ChatGLM",
            BackboneKind::ChatGlm2_6b => "ChatGLM2",
        }
    }

    /// The static capability profile of this backbone.
    pub fn profile(self) -> BackboneProfile {
        match self {
            BackboneKind::Llama7b => BackboneProfile {
                kind: self,
                params_b: 7.0,
                corpus_fraction: 0.55,
                knowledge_coverage: 0.45,
                alignment_prior: 0.15,
                rl_tuned: false,
            },
            BackboneKind::ChatGlm6b => BackboneProfile {
                kind: self,
                params_b: 6.0,
                corpus_fraction: 0.75,
                knowledge_coverage: 0.70,
                alignment_prior: 0.35,
                rl_tuned: true,
            },
            BackboneKind::ChatGlm2_6b => BackboneProfile {
                kind: self,
                params_b: 6.0,
                corpus_fraction: 1.0,
                knowledge_coverage: 0.90,
                alignment_prior: 0.45,
                rl_tuned: true,
            },
        }
    }
}

/// Static capability numbers for a backbone.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BackboneProfile {
    /// Which backbone this profiles.
    pub kind: BackboneKind,
    /// Parameter count in billions (display only).
    pub params_b: f64,
    /// Fraction of the built-in pre-training corpora this backbone saw.
    pub corpus_fraction: f64,
    /// Fraction of the repair knowledge base this backbone commands.
    pub knowledge_coverage: f64,
    /// Probability the backbone follows a revision instruction *before*
    /// any coach tuning (its zero-shot alignment; α = 0 in Fig 5 uses the
    /// raw backbone for revision).
    pub alignment_prior: f64,
    /// Whether the backbone went through an RL alignment pipeline.
    pub rl_tuned: bool,
}

/// An instantiated backbone: profile + trained n-gram LM + knowledge view.
#[derive(Debug)]
pub struct Backbone {
    profile: BackboneProfile,
    lm: NgramLm,
    knowledge: KnowledgeBase,
    // Dataset-scale revision re-scores the same filled templates millions of
    // times; memoising fluency turns that hot path into a hash lookup.
    fluency_cache: std::sync::Mutex<coachlm_text::fxhash::FxHashMap<Box<str>, f64>>,
}

impl Backbone {
    /// Instantiates (i.e. "pre-trains") a backbone of the given kind on its
    /// corpus share. Deterministic; takes ~milliseconds.
    pub fn load(kind: BackboneKind) -> Self {
        let profile = kind.profile();
        let sentences = crate::corpus::corpus_slice(profile.corpus_fraction);
        let lm = NgramLm::train(3, &sentences);
        let knowledge = KnowledgeBase::with_coverage(profile.knowledge_coverage);
        Self {
            profile,
            lm,
            knowledge,
            fluency_cache: std::sync::Mutex::new(Default::default()),
        }
    }

    /// The static profile.
    pub fn profile(&self) -> &BackboneProfile {
        &self.profile
    }

    /// The backbone's fluency model.
    pub fn lm(&self) -> &NgramLm {
        &self.lm
    }

    /// The backbone's repair knowledge.
    pub fn knowledge(&self) -> &KnowledgeBase {
        &self.knowledge
    }

    /// Fluency of `text` under this backbone, in [0, 1]. Memoised: the cache
    /// is bounded (template-derived texts dominate the hot path).
    pub fn fluency(&self, text: &str) -> f64 {
        const CACHE_CAP: usize = 100_000;
        // A poisoned lock only means another thread panicked between lock
        // and unlock; the map itself is always left coherent, so recover it
        // rather than propagating the panic into this chain.
        if let Some(&f) = self
            .fluency_cache
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(text)
        {
            return f;
        }
        let f = self.lm.fluency(text);
        let mut cache = self
            .fluency_cache
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if cache.len() < CACHE_CAP {
            cache.insert(text.into(), f);
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_order_by_strength() {
        let l = BackboneKind::Llama7b.profile();
        let g1 = BackboneKind::ChatGlm6b.profile();
        let g2 = BackboneKind::ChatGlm2_6b.profile();
        assert!(l.knowledge_coverage < g1.knowledge_coverage);
        assert!(g1.knowledge_coverage < g2.knowledge_coverage);
        assert!(l.alignment_prior < g1.alignment_prior);
        assert!(g1.alignment_prior < g2.alignment_prior);
        assert!(!l.rl_tuned && g1.rl_tuned && g2.rl_tuned);
    }

    #[test]
    fn load_builds_working_backbone() {
        let b = Backbone::load(BackboneKind::ChatGlm2_6b);
        assert_eq!(b.profile().kind, BackboneKind::ChatGlm2_6b);
        let f = b.fluency("Correct the grammatical errors in the sentence.");
        assert!(f > 0.0 && f <= 1.0);
    }

    #[test]
    fn stronger_backbone_knows_more_repairs() {
        let weak = Backbone::load(BackboneKind::Llama7b);
        let strong = Backbone::load(BackboneKind::ChatGlm2_6b);
        let known_weak = coachlm_text::lexicon::TYPO_PAIRS
            .iter()
            .filter(|(w, _)| weak.knowledge().typo_correction(w).is_some())
            .count();
        let known_strong = coachlm_text::lexicon::TYPO_PAIRS
            .iter()
            .filter(|(w, _)| strong.knowledge().typo_correction(w).is_some())
            .count();
        assert!(known_strong > known_weak);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(BackboneKind::Llama7b.name(), "LLaMA");
        assert_eq!(BackboneKind::ChatGlm6b.name(), "ChatGLM");
        assert_eq!(BackboneKind::ChatGlm2_6b.name(), "ChatGLM2");
    }
}
