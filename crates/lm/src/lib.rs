//! # coachlm-lm
//!
//! The simulated language-model substrate for the CoachLM reproduction.
//!
//! The paper fine-tunes a 6B-parameter backbone (ChatGLM2, with LLaMA and
//! ChatGLM ablations, Table XI) with LoRA to obtain CoachLM. Training a
//! multi-billion-parameter transformer is out of scope for a CPU-only
//! reproduction, so — per the substitution policy in `DESIGN.md` — this crate
//! implements a *mechanistic stand-in* with the same observable interfaces:
//!
//! * [`vocab`] — a vocabulary over interned words with special tokens.
//! * [`ngram_model`] — an interpolated n-gram language model (Witten-Bell
//!   smoothing) that provides fluency scores, perplexity, and sampling. This
//!   is the "pre-trained knowledge" of a backbone.
//! * [`corpus`] — built-in pretraining corpora; each backbone profile trains
//!   on a profile-dependent fraction, so stronger backbones genuinely know
//!   more.
//! * [`knowledge`] — the repair knowledge base: a grammar/typo confusion
//!   lexicon, expansion templates, and politeness phrases. A backbone's
//!   coverage of this base scales with its profile, which is what makes
//!   "stronger backbone → better revisions" (Table XI) emerge mechanically.
//! * [`backbone`] — backbone model profiles (LLaMA-7B, ChatGLM-6B,
//!   ChatGLM2-6B, and the student-side LLaMA base).
//! * [`rules`] — phrase-level rewrite rules, the unit of what coach tuning
//!   learns.
//! * [`adapter`] — the LoRA analogue: a bounded-capacity rule table layered
//!   over a frozen backbone.
//! * [`transducer`] — applies an adapter's rules to an input token stream
//!   (greedy decode, beam size 1 as in §III-A3), with copy-mass competition
//!   that reproduces the α-sweep behaviour of Fig 5(a).

#![deny(unused_must_use)]
#![warn(missing_docs)]

pub mod adapter;
pub mod backbone;
pub mod corpus;
pub mod knowledge;
pub mod ngram_model;
pub mod rules;
pub mod transducer;
pub mod vocab;

pub use adapter::Adapter;
pub use backbone::{Backbone, BackboneKind, BackboneProfile};
pub use ngram_model::NgramLm;
pub use rules::{RewriteRule, RuleAction, RuleSet};
pub use transducer::{RevisionOutcome, Transducer};
pub use vocab::Vocab;
