//! Built-in pretraining corpora.
//!
//! Real backbones differ because they were pre-trained on different amounts
//! of text. Our stand-in backbones differ the same way: each trains its
//! n-gram model on a profile-dependent prefix of these built-in corpora and
//! unlocks a profile-dependent share of the repair knowledge base. The text
//! below is original filler prose spanning the domains the ALPACA52K
//! categories cover (general knowledge, explanation, reasoning, coding,
//! politeness, editing instructions).

/// A named corpus section.
#[derive(Debug, Clone, Copy)]
pub struct Section {
    /// Domain label.
    pub name: &'static str,
    /// The sentences of this section.
    pub sentences: &'static [&'static str],
}

/// General-knowledge prose.
pub const GENERAL: &[&str] = &[
    "The capital of France is Paris, a city known for its museums and architecture.",
    "Water boils at one hundred degrees Celsius at sea level.",
    "Photosynthesis converts sunlight, water, and carbon dioxide into glucose and oxygen.",
    "The Great Wall of China was built over many centuries to protect northern borders.",
    "A healthy diet includes fruits, vegetables, whole grains, and lean proteins.",
    "The human heart pumps blood through a network of arteries and veins.",
    "Mount Everest is the tallest mountain above sea level on Earth.",
    "Renewable energy sources include solar, wind, hydroelectric, and geothermal power.",
    "The printing press transformed the spread of information in the fifteenth century.",
    "Ocean currents distribute heat around the planet and shape regional climates.",
    "Vaccines train the immune system to recognize and fight specific pathogens.",
    "The speed of light in a vacuum is approximately three hundred thousand kilometers per second.",
    "Honey never spoils because its low moisture and acidity prevent bacterial growth.",
    "Democracy depends on free elections, independent courts, and a free press.",
    "Supply and demand together determine prices in a competitive market.",
    "The moon causes tides through its gravitational pull on the oceans.",
    "Antibiotics treat bacterial infections but are ineffective against viruses.",
    "A balanced budget means that spending does not exceed income over a period.",
    "Biodiversity strengthens ecosystems by spreading risk across many species.",
    "The internet is a global network of networks communicating through shared protocols.",
];

/// Explanation and reasoning scaffolds (chain-of-thought style connectives).
pub const REASONING: &[&str] = &[
    "Let us work through this step by step to reach the answer.",
    "First, identify what the question is asking and list the known quantities.",
    "Second, choose the formula or rule that connects the known values to the unknown.",
    "Third, substitute the values carefully and simplify the expression.",
    "Finally, check that the result is reasonable and answers the original question.",
    "To see why this holds, consider a simple example with small numbers.",
    "The key insight is that each step preserves the equality.",
    "Therefore, the conclusion follows directly from the two premises.",
    "In other words, the total is the sum of the individual parts.",
    "This means the remaining amount equals the original minus what was removed.",
    "As a result, the pattern repeats every four terms.",
    "For instance, doubling the input doubles the output in a linear relation.",
    "Breaking the problem into smaller cases makes each case easy to verify.",
    "Because the two events are independent, their probabilities multiply.",
    "It follows that the average equals the total divided by the count.",
    "To summarize, we combined the rates and solved for the unknown time.",
    "Note that the units must match before the quantities can be added.",
    "Checking the boundary cases confirms that the formula behaves correctly.",
];

/// Coding-domain prose.
pub const CODING: &[&str] = &[
    "A function should do one thing and do it well.",
    "The loop iterates over the list and accumulates the running total.",
    "Use descriptive variable names so the code explains itself.",
    "A hash map provides expected constant time lookup by key.",
    "Recursion needs a base case to terminate.",
    "The compiler reports a type error when the argument does not match the signature.",
    "Unit tests verify each function in isolation before integration.",
    "Sorting the array first allows a binary search afterwards.",
    "An off by one error often hides at the boundary of a loop.",
    "Exceptions should be caught at the level that can handle them meaningfully.",
    "The class encapsulates state behind a small public interface.",
    "Version control records every change so mistakes can be undone.",
    "Caching the result avoids recomputing the same value repeatedly.",
    "The algorithm runs in logarithmic time because it halves the search space.",
    "Immutable data structures make concurrent code easier to reason about.",
    "Here is a simple example in Python that prints the first ten squares.",
];

/// Politeness, empathy, and humanised-tone phrases (the Humanization
/// dimension of Table II).
pub const POLITE: &[&str] = &[
    "Of course, I would be happy to help with that.",
    "That is a great question, and the answer has a few parts.",
    "I hope this explanation makes the idea clearer for you.",
    "Please let me know if you would like more detail on any step.",
    "Thank you for the helpful context; it makes the request easier to answer.",
    "It is completely understandable to find this topic confusing at first.",
    "Here is a friendly summary of the main points.",
    "Feel free to ask a follow up question at any time.",
    "I understand this situation can be stressful, so let us take it one step at a time.",
    "Wishing you the best of luck with your project.",
];

/// Editing and revision instructions (the pre-training signal the paper
/// says elicits content-revision ability, §II-F1).
pub const EDITING: &[&str] = &[
    "Correct the grammatical errors in the sentence without changing its meaning.",
    "Rewrite the paragraph to be clearer and more concise.",
    "Improve the word choice so the tone is professional.",
    "Fix the spelling mistakes and adjust the punctuation.",
    "Expand the answer with an example and a short explanation.",
    "Rephrase the ambiguous request into a specific question.",
    "Add a brief introduction and a concluding sentence.",
    "Reorganize the list so related items appear together.",
    "Replace the vague terms with precise measurements.",
    "Shorten the response while keeping every essential fact.",
    "Check the calculation and correct the arithmetic if needed.",
    "Make the instruction specific, detailed, and feasible for a language model.",
];

/// Creative-writing prose.
pub const CREATIVE: &[&str] = &[
    "The old lighthouse blinked slowly against the violet dusk.",
    "She packed her suitcase with maps, courage, and a spare umbrella.",
    "Rain tapped the window like a patient visitor.",
    "The story begins in a village where every door is painted blue.",
    "His laughter rolled across the valley and startled the crows.",
    "A good opening line invites the reader to lean closer.",
    "The melody rose, hesitated, and then tumbled into the chorus.",
    "Morning light spilled over the desk and warmed the unfinished letter.",
    "The dragon, to everyone's surprise, preferred gardening to burning castles.",
    "Endings work best when they echo the beginning with a difference.",
];

/// All corpus sections in canonical order.
pub const SECTIONS: &[Section] = &[
    Section {
        name: "general",
        sentences: GENERAL,
    },
    Section {
        name: "reasoning",
        sentences: REASONING,
    },
    Section {
        name: "coding",
        sentences: CODING,
    },
    Section {
        name: "polite",
        sentences: POLITE,
    },
    Section {
        name: "editing",
        sentences: EDITING,
    },
    Section {
        name: "creative",
        sentences: CREATIVE,
    },
];

/// Returns the training sentences for a backbone that consumes `fraction`
/// (0.0–1.0) of every section. Stronger backbones see strictly more text,
/// and every backbone sees a prefix of the same ordering (so capabilities
/// nest, as with real model families).
pub fn corpus_slice(fraction: f64) -> Vec<&'static str> {
    let fraction = fraction.clamp(0.0, 1.0);
    let mut out = Vec::new();
    for sec in SECTIONS {
        let take = ((sec.sentences.len() as f64) * fraction).ceil() as usize;
        out.extend_from_slice(&sec.sentences[..take.min(sec.sentences.len())]);
    }
    out
}

/// Total number of sentences across all sections.
pub fn total_sentences() -> usize {
    SECTIONS.iter().map(|s| s.sentences.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_are_nonempty() {
        for s in SECTIONS {
            assert!(!s.sentences.is_empty(), "section {} empty", s.name);
        }
        assert!(total_sentences() > 80);
    }

    #[test]
    fn corpus_slice_is_monotone() {
        let small = corpus_slice(0.3);
        let big = corpus_slice(0.9);
        assert!(small.len() < big.len());
        // Nesting: everything in the small slice is in the big slice.
        for s in &small {
            assert!(big.contains(s));
        }
    }

    #[test]
    fn corpus_slice_bounds() {
        assert_eq!(corpus_slice(0.0).len(), 0);
        assert_eq!(corpus_slice(1.0).len(), total_sentences());
        assert_eq!(corpus_slice(2.0).len(), total_sentences());
        assert_eq!(corpus_slice(-1.0).len(), 0);
    }
}
