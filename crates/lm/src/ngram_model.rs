//! An interpolated n-gram language model with Witten-Bell smoothing.
//!
//! This is the "pre-trained knowledge" of a simulated backbone: it scores
//! fluency (used by the transducer to prefer grammatical revisions) and can
//! sample text. Witten-Bell smoothing is chosen over Kneser-Ney because it
//! is robust on the small built-in corpora (no discount tuning) while still
//! interpolating across orders.

use crate::vocab::Vocab;
use coachlm_text::intern::Sym;
use coachlm_text::ngram::NgramCounter;
use rand::Rng;

/// An n-gram language model over word symbols.
#[derive(Debug)]
pub struct NgramLm {
    vocab: Vocab,
    counter: NgramCounter<Sym>,
    order: usize,
}

impl NgramLm {
    /// Trains a model of the given `order` (e.g. 3 for trigram) on the
    /// sentences.
    ///
    /// # Panics
    /// Panics if `order == 0`.
    pub fn train<S: AsRef<str>>(order: usize, sentences: &[S]) -> Self {
        assert!(order >= 1, "order must be at least 1");
        let mut vocab = Vocab::new();
        let mut counter = NgramCounter::new(order);
        for s in sentences {
            let seq = vocab.add_text(s.as_ref());
            counter.observe(&seq);
        }
        Self {
            vocab,
            counter,
            order,
        }
    }

    /// The model's vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Model order.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Witten-Bell interpolated probability of `word` following `context`
    /// (context uses at most `order - 1` trailing symbols).
    pub fn prob(&self, context: &[Sym], word: Sym) -> f64 {
        let ctx_start = context.len().saturating_sub(self.order - 1);
        self.prob_backoff(&context[ctx_start..], word)
    }

    fn prob_backoff(&self, context: &[Sym], word: Sym) -> f64 {
        if context.is_empty() {
            // Unigram with uniform interpolation over V+1 (reserving mass
            // for unseen events).
            let v = self.vocab.len() as f64 + 1.0;
            let total = self.counter.total(1) as f64;
            let c = self.counter.count(&[word]) as f64;
            let t = self.counter.distinct(1) as f64;
            return (c + t / v) / (total + t).max(1.0);
        }
        // Fingerprint the context once, extend by one element for the full
        // gram: no buffer is assembled, so scoring allocates nothing.
        let ctx_fp = NgramCounter::<Sym>::fingerprint(context);
        let gram_fp = NgramCounter::<Sym>::fingerprint_extend(ctx_fp, &word);
        let c_hw = self.counter.count_fp(context.len() + 1, gram_fp) as f64;
        let c_h = self.counter.count_fp(context.len(), ctx_fp) as f64;
        let t_h = self.counter.continuations_fp(context.len(), ctx_fp) as f64;
        let lower = self.prob_backoff(&context[1..], word);
        if c_h == 0.0 && t_h == 0.0 {
            return lower;
        }
        (c_hw + t_h * lower) / (c_h + t_h)
    }

    /// Log2 probability of a full text (BOS/EOS wrapped).
    pub fn log2_prob(&self, text: &str) -> f64 {
        let seq = self.vocab.encode_text(text);
        let mut lp = 0.0;
        for i in 1..seq.len() {
            let p = self.prob(&seq[..i], seq[i]);
            lp += p.max(1e-12).log2();
        }
        lp
    }

    /// Per-word perplexity of `text`. Lower is more fluent.
    pub fn perplexity(&self, text: &str) -> f64 {
        let seq = self.vocab.encode_text(text);
        let events = (seq.len() - 1).max(1) as f64;
        (2f64).powf(-self.log2_prob(text) / events)
    }

    /// A bounded fluency score in [0, 1]: 1.0 for text the model finds
    /// highly predictable, approaching 0 for gibberish. Computed as a
    /// squashed inverse perplexity; thresholds picked so in-corpus text
    /// scores > 0.7 and shuffled text scores visibly lower.
    pub fn fluency(&self, text: &str) -> f64 {
        let ppl = self.perplexity(text);
        // Squash: fluency = 1 / (1 + (ppl / scale)^2). scale ≈ the model's
        // typical in-domain perplexity.
        let scale = (self.vocab.len() as f64).sqrt().max(8.0);
        1.0 / (1.0 + (ppl / scale).powi(2))
    }

    /// Samples a continuation of `context_text` up to `max_words` words,
    /// stopping at EOS. Greedy when `temperature == 0`, otherwise samples
    /// from the distribution restricted to observed continuations.
    pub fn sample<R: Rng>(
        &self,
        rng: &mut R,
        context_text: &str,
        max_words: usize,
        temperature: f64,
    ) -> String {
        let mut seq = self.vocab.encode_text(context_text);
        seq.pop(); // drop EOS so we continue the sequence
        let mut out_words: Vec<String> = Vec::new();
        for _ in 0..max_words {
            let next = self.sample_next(rng, &seq, temperature);
            if next == self.vocab.eos() {
                break;
            }
            out_words.push(self.vocab.resolve(next).to_string());
            seq.push(next);
        }
        out_words.join(" ")
    }

    fn sample_next<R: Rng>(&self, rng: &mut R, seq: &[Sym], temperature: f64) -> Sym {
        // Candidate continuations: words observed after the longest
        // available context, backing off until some context has data.
        let max_ctx = self.order - 1;
        for ctx_len in (0..=max_ctx.min(seq.len())).rev() {
            let context = &seq[seq.len() - ctx_len..];
            let candidates = self.observed_continuations(context);
            if candidates.is_empty() {
                continue;
            }
            if temperature <= f64::EPSILON {
                // `candidates` is non-empty here, so `max_by` always yields;
                // the `continue` (back off one more context level) is the
                // panic-free fallback the type demands.
                match candidates.into_iter().max_by(|a, b| a.1.total_cmp(&b.1)) {
                    Some((s, _)) => return s,
                    None => continue,
                }
            }
            let weights: Vec<f64> = candidates
                .iter()
                .map(|(_, p)| p.powf(1.0 / temperature))
                .collect();
            let total: f64 = weights.iter().sum();
            let mut pick = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
            for (i, w) in weights.iter().enumerate() {
                if pick < *w {
                    return candidates[i].0;
                }
                pick -= w;
            }
            // Float rounding can walk `pick` past the final weight; the last
            // candidate is the correct landing spot, and the non-empty check
            // above guarantees one exists.
            if let Some(&(last, _)) = candidates.last() {
                return last;
            }
        }
        self.vocab.eos()
    }

    fn observed_continuations(&self, context: &[Sym]) -> Vec<(Sym, f64)> {
        // Enumerate observed (context, w) grams by scanning the vocabulary;
        // vocabularies here are small (built-in corpora), so this is fine.
        let mut out = Vec::new();
        let ctx_fp = NgramCounter::<Sym>::fingerprint(context);
        for idx in 0..self.vocab.len() as u32 {
            let w = Sym(idx);
            let fp = NgramCounter::<Sym>::fingerprint_extend(ctx_fp, &w);
            if self.counter.count_fp(context.len() + 1, fp) > 0 {
                out.push((w, self.prob(context, w)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model() -> NgramLm {
        NgramLm::train(
            3,
            &[
                "the cat sat on the mat",
                "the cat ran to the door",
                "the dog sat on the rug",
                "a bird sang in the tree",
            ],
        )
    }

    #[test]
    fn probabilities_sum_to_at_most_one() {
        let m = tiny_model();
        let ctx = m.vocab().encode_text("the cat");
        // Sum P(w | context) over the whole vocab; should be <= 1 + eps.
        let mut sum = 0.0;
        for idx in 0..m.vocab().len() as u32 {
            sum += m.prob(&ctx[..ctx.len() - 1], Sym(idx));
        }
        assert!(sum <= 1.0 + 1e-6, "sum = {sum}");
        assert!(sum > 0.5, "sum = {sum}");
    }

    #[test]
    fn seen_text_more_probable_than_gibberish() {
        let m = tiny_model();
        let fluent = m.log2_prob("the cat sat on the mat");
        let garbage = m.log2_prob("mat the on sat cat the");
        assert!(fluent > garbage, "{fluent} vs {garbage}");
    }

    #[test]
    fn perplexity_orders_fluency() {
        let m = tiny_model();
        assert!(m.perplexity("the cat sat on the mat") < m.perplexity("zebra quantum xylophone"));
    }

    #[test]
    fn fluency_is_bounded() {
        let m = tiny_model();
        for t in ["the cat sat", "qqq www eee", ""] {
            let f = m.fluency(t);
            assert!((0.0..=1.0).contains(&f), "fluency {f} for {t:?}");
        }
    }

    #[test]
    fn greedy_sampling_is_deterministic() {
        let m = tiny_model();
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(99);
        let a = m.sample(&mut r1, "the cat", 5, 0.0);
        let b = m.sample(&mut r2, "the cat", 5, 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn seeded_sampling_reproducible() {
        let m = tiny_model();
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        assert_eq!(
            m.sample(&mut r1, "the", 8, 1.0),
            m.sample(&mut r2, "the", 8, 1.0)
        );
    }

    #[test]
    fn sample_respects_max_words() {
        let m = tiny_model();
        let mut rng = StdRng::seed_from_u64(7);
        let text = m.sample(&mut rng, "the", 3, 1.0);
        assert!(text.split_whitespace().count() <= 3);
    }

    #[test]
    #[should_panic(expected = "order")]
    fn zero_order_panics() {
        let _ = NgramLm::train(0, &["x"]);
    }

    #[test]
    fn bigger_corpus_lowers_tail_perplexity() {
        let small = NgramLm::train(3, &crate::corpus::corpus_slice(0.2));
        let big = NgramLm::train(3, &crate::corpus::corpus_slice(1.0));
        // A tail sentence only the full corpus contains: the big model must
        // find it far more predictable than the small model does.
        let probe = "Make the instruction specific, detailed, and feasible for a language model.";
        assert!(big.perplexity(probe) < small.perplexity(probe));
    }
}
