//! Crash-consistent write-ahead journal for chain runs.
//!
//! A 52k-pair revision sweep is hours of work; a killed process must not
//! lose it. The executor appends one compact record per *committed* item —
//! an item that finished the whole chain, whatever its disposition — and a
//! resumed run replays those records instead of re-executing them, then
//! re-enters the batch at the exact frontier. Because every per-item
//! outcome is already a pure function of `(chain, input, seed)`, replay
//! composes with fresh execution bit-for-bit: the resumed run's items,
//! deterministic report fields, quarantine, and breaker evolution are
//! identical to an uninterrupted run at any thread count and under either
//! schedule.
//!
//! ## On-disk format
//!
//! A journal is a flat sequence of length-prefixed, checksummed records:
//!
//! ```text
//! record   := len:u32le  crc:u64le  payload[len]
//! crc      := fxhash64(payload)
//! payload  := kind:u8 body
//! kind 1   := header — format version, input length, run fingerprint
//! kind 2   := item trace — index, pair id (the RNG key), disposition,
//!             final text (only where changed), tags, failure record,
//!             content digest, and per-stage outcome deltas
//! ```
//!
//! The header's fingerprint hashes everything that determines outcomes —
//! chain seed, stage names, retry policy, fault plan, breaker policy, and
//! the full input content — so resuming under *different* semantics is
//! rejected up front instead of silently diverging. Thread count and
//! schedule are deliberately excluded: they never affect results, and a
//! journal written by a 16-thread dynamic run must resume on a 1-thread
//! static one.
//!
//! ## Torn writes
//!
//! Appends are buffered and fsynced in batches ([`Journal::sync_every`]),
//! so a crash can leave a torn tail: a partial record, or a complete-
//! looking record whose bytes never all reached the disk. [`Journal::open`]
//! scans from the start and stops at the first record whose length prefix
//! overruns the file or whose checksum mismatches, truncating the file
//! back to the last consistent frontier — replay never trusts a record
//! that was not durably and completely written. Item records are
//! independent (no inter-record delta coding), so dropping the tail loses
//! at most the unsynced suffix of work, never corrupts the prefix.
//!
//! Payloads attached via [`StageItem::set_payload`](crate::StageItem) are
//! *not* journalled (they are opaque `Any` boxes); chains whose stages
//! communicate through payloads should treat the journal as covering the
//! item text, tags, and failure state only.

use crate::fault::{FailureKind, FailureRecord};
use coachlm_text::fxhash::FxHasher;
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::hash::Hasher;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Journal format version; bumped on any encoding change.
/// v2 added the per-stage `iterations` counter for looping stages.
pub(crate) const JOURNAL_VERSION: u32 = 2;

/// Bytes of frame overhead per record (length prefix + checksum).
const FRAME_BYTES: u64 = 12;

/// Upper bound on a single record's payload, to reject absurd length
/// prefixes from corrupt files before allocating.
const MAX_RECORD_BYTES: u32 = 1 << 28;

/// Records buffered between fsyncs by default.
const DEFAULT_SYNC_EVERY: usize = 32;

/// Why a journal could not be created, recovered, or resumed from.
#[derive(Debug)]
pub enum JournalError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The journal is internally valid but belongs to a different run
    /// (fingerprint, input length, or version mismatch) or refers to
    /// items the given input does not contain.
    Incompatible(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal IO error: {e}"),
            JournalError::Incompatible(why) => {
                write!(f, "journal incompatible with this run: {why}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// The header record's decoded body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct HeaderRecord {
    /// Format version ([`JOURNAL_VERSION`] when written by this build).
    pub(crate) version: u32,
    /// Length of the input the journal was written against.
    pub(crate) input_len: u64,
    /// Hash of everything that determines outcomes (see module docs).
    pub(crate) fingerprint: u64,
}

/// Per-stage outcome deltas for one committed item, enough to rebuild the
/// item's contribution to every deterministic [`StageReport`] field.
///
/// [`StageReport`]: crate::StageReport
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct StageTrace {
    /// Chain position of the stage.
    pub(crate) stage: u32,
    /// Whether the breaker passed the item through instead of executing.
    pub(crate) degraded: bool,
    /// Whether the item was still retained after this stage.
    pub(crate) retained_after: bool,
    /// Whether this stage quarantined the item.
    pub(crate) quarantined: bool,
    /// Retries taken at this stage.
    pub(crate) retries: u32,
    /// Committed iteration passes at this stage (1 for a plain stage the
    /// item completed; up to the stage's iteration budget for a looping
    /// stage; 0 when the item degraded or quarantined before committing).
    pub(crate) iterations: u32,
    /// Faults injected into this stage's attempts.
    pub(crate) faults: u64,
    /// Attempts cut short by the stage deadline.
    pub(crate) timeouts: u32,
    /// Simulated backoff charged, in nanoseconds.
    pub(crate) backoff_nanos: u64,
    /// Simulated latency charged, in nanoseconds.
    pub(crate) latency_nanos: u64,
    /// Stage counter deltas, sorted by key.
    pub(crate) counters: Vec<(String, u64)>,
}

/// One committed item: its terminal state plus per-stage deltas.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ItemTrace {
    /// Position in the chain input.
    pub(crate) index: u64,
    /// The pair's id — the per-item RNG key, cross-checked on resume.
    pub(crate) pair_id: u64,
    /// Terminal disposition: 0 retained, 1 dropped, 2 quarantined.
    pub(crate) disposition: u8,
    /// Final instruction, recorded only when a stage changed it.
    pub(crate) instruction: Option<String>,
    /// Final response, recorded only when a stage changed it.
    pub(crate) response: Option<String>,
    /// All tags attached during the run, in order.
    pub(crate) tags: Vec<String>,
    /// The failure record, for quarantined items.
    pub(crate) failure: Option<FailureRecord>,
    /// Content digest of the terminal item state, re-verified on replay.
    pub(crate) digest: u64,
    /// Per-stage deltas, in chain order (stages the item never reached
    /// are absent).
    pub(crate) stages: Vec<StageTrace>,
}

/// An append-only, checksummed, fsync-batched record log for one chain
/// run, with torn-tail recovery on open. See the module docs for the
/// format and guarantees; drive it through
/// [`Executor::run_journaled`](crate::Executor::run_journaled) /
/// [`Executor::resume_from`](crate::Executor::resume_from).
pub struct Journal {
    file: File,
    path: PathBuf,
    header: Option<HeaderRecord>,
    committed: BTreeMap<u64, ItemTrace>,
    spans: Vec<(u64, u64)>,
    /// Logical end offset: durable bytes plus buffered bytes.
    len: u64,
    buf: Vec<u8>,
    buffered_records: usize,
    sync_every: usize,
    /// Per-frame mirror: handed every appended frame's exact bytes before
    /// batching. The supervised worker tees its journal onto the
    /// supervisor pipe with this.
    tee: Option<TeeSink>,
}

/// A per-frame mirror sink (see [`Journal::set_tee`]).
pub(crate) type TeeSink = Box<dyn FnMut(&[u8]) + Send>;

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("header", &self.header)
            .field("committed", &self.committed.len())
            .field("len", &self.len)
            .field("buffered_records", &self.buffered_records)
            .field("sync_every", &self.sync_every)
            .field("tee", &self.tee.is_some())
            .finish()
    }
}

impl Journal {
    /// Creates a fresh journal at `path`, truncating anything there.
    pub fn create(path: impl AsRef<Path>) -> Result<Journal, JournalError> {
        let path = path.as_ref();
        let file = File::create(path)?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
            header: None,
            committed: BTreeMap::new(),
            spans: Vec::new(),
            len: 0,
            buf: Vec::new(),
            buffered_records: 0,
            sync_every: DEFAULT_SYNC_EVERY,
            tee: None,
        })
    }

    /// Opens the journal at `path` for resumption (creating an empty one
    /// if none exists), recovering whatever consistent prefix survives: a
    /// torn or corrupt tail — partial frame, short payload, checksum
    /// mismatch, undecodable body — ends the scan, and the file is
    /// truncated back to that frontier so later appends extend a clean
    /// log.
    pub fn open(path: impl AsRef<Path>) -> Result<Journal, JournalError> {
        let path = path.as_ref();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;

        let mut header = None;
        let mut committed = BTreeMap::new();
        let mut spans = Vec::new();
        let mut pos: usize = 0;
        while let Some((payload, end)) = next_frame(&data, pos) {
            let mut dec = Dec::new(payload);
            let parsed = match dec.u8() {
                Some(1) if header.is_none() => decode_header(&mut dec).map(|h| {
                    header = Some(h);
                }),
                Some(2) if header.is_some() => decode_item(&mut dec).map(|t| {
                    committed.insert(t.index, t);
                }),
                // Unknown kind, duplicate header, or an item before the
                // header: not a log this build wrote — stop at the last
                // good frontier.
                _ => None,
            };
            if parsed.is_none() || !dec.exhausted() {
                break;
            }
            spans.push((pos as u64, end as u64));
            pos = end;
        }

        if (pos as u64) < data.len() as u64 {
            file.set_len(pos as u64)?;
        }
        file.seek(SeekFrom::Start(pos as u64))?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
            header,
            committed,
            spans,
            len: pos as u64,
            buf: Vec::new(),
            buffered_records: 0,
            sync_every: DEFAULT_SYNC_EVERY,
            tee: None,
        })
    }

    /// Installs a per-frame tee: every subsequently appended frame's exact
    /// bytes (length prefix, checksum, payload) are handed to `sink` as
    /// one call, at append time — ahead of the fsync batching, so a
    /// mirror sees frames the moment they are committed logically rather
    /// than when they become durable.
    pub(crate) fn set_tee(&mut self, sink: TeeSink) {
        self.tee = Some(sink);
    }

    /// Overrides how many records are buffered between fsyncs (floored at
    /// 1 — every record synced immediately). The trade is the usual one:
    /// larger batches cost fewer fsyncs but widen the window of work a
    /// crash can lose.
    pub fn sync_every(mut self, records: usize) -> Journal {
        self.sync_every = records.max(1);
        self
    }

    /// Number of committed item records recovered or appended so far.
    pub fn committed(&self) -> usize {
        self.committed.len()
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Byte spans `(start, end)` of every valid record, header included —
    /// the crash tests use these to truncate mid-record at every offset.
    pub fn record_spans(&self) -> &[(u64, u64)] {
        &self.spans
    }

    /// The recovered header, if the journal has one.
    pub(crate) fn header(&self) -> Option<&HeaderRecord> {
        self.header.as_ref()
    }

    /// Writes the header record. Must be the first append.
    pub(crate) fn write_header(&mut self, h: HeaderRecord) -> Result<(), std::io::Error> {
        let mut enc = Enc::new();
        enc.u8(1);
        enc.u32(h.version);
        enc.u64(h.input_len);
        enc.u64(h.fingerprint);
        self.header = Some(h);
        self.append_frame(enc.into_payload())
    }

    /// Appends one committed item record (buffered; durable after the
    /// next batch boundary or [`Journal::sync`]).
    pub(crate) fn append(&mut self, trace: &ItemTrace) -> Result<(), std::io::Error> {
        let mut enc = Enc::new();
        enc.u8(2);
        encode_item(&mut enc, trace);
        self.committed.insert(trace.index, trace.clone());
        self.append_frame(enc.into_payload())
    }

    /// Flushes buffered records and fsyncs file data.
    pub fn sync(&mut self) -> Result<(), std::io::Error> {
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.buf.clear();
        }
        self.buffered_records = 0;
        self.file.sync_data()
    }

    /// Takes the recovered traces for replay. The records stay durable in
    /// the file; the in-memory copy moves to the resuming run, so one
    /// `Journal` handle drives at most one run.
    pub(crate) fn take_committed(&mut self) -> BTreeMap<u64, ItemTrace> {
        std::mem::take(&mut self.committed)
    }

    /// The recovered traces, by item index, without consuming them — the
    /// supervised worker backfills these onto its result pipe before the
    /// resuming run takes them.
    pub(crate) fn committed_traces(&self) -> &BTreeMap<u64, ItemTrace> {
        &self.committed
    }

    fn append_frame(&mut self, payload: Vec<u8>) -> Result<(), std::io::Error> {
        let mut h = FxHasher::default();
        h.write(&payload);
        let crc = h.finish();
        let start = self.len;
        let buf_start = self.buf.len();
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.buf.extend_from_slice(&payload);
        if let Some(tee) = self.tee.as_mut() {
            tee(&self.buf[buf_start..]);
        }
        self.len = start + FRAME_BYTES + payload.len() as u64;
        self.spans.push((start, self.len));
        self.buffered_records += 1;
        if self.buffered_records >= self.sync_every {
            self.sync()?;
        }
        Ok(())
    }
}

/// Frames a payload in the journal's on-disk/on-wire format:
/// `len:u32le crc:u64le payload`. The supervised worker protocol reuses
/// this framing for its own control frames.
pub(crate) fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut h = FxHasher::default();
    h.write(payload);
    let crc = h.finish();
    let mut out = Vec::with_capacity(FRAME_BYTES as usize + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// One step of incremental frame parsing over a growing byte stream —
/// unlike [`next_frame`] (which treats anything short or corrupt as
/// end-of-log), a pipe reader must distinguish "wait for more bytes" from
/// "the sender is corrupt".
pub(crate) enum FrameScan<'a> {
    /// A complete, checksum-valid frame: its payload and end offset.
    Frame { payload: &'a [u8], end: usize },
    /// The bytes so far are a valid prefix of a frame; read more.
    NeedMore,
    /// The bytes can never become a valid frame (absurd length prefix or
    /// checksum mismatch over a complete payload).
    Corrupt,
}

/// Scans for the frame starting at `pos` in a stream still being read.
pub(crate) fn scan_frame(data: &[u8], pos: usize) -> FrameScan<'_> {
    let Some(frame) = data.get(pos..) else {
        return FrameScan::NeedMore;
    };
    let Some(len_bytes) = frame.get(..4) else {
        return FrameScan::NeedMore;
    };
    let len = u32::from_le_bytes(len_bytes.try_into().unwrap_or([0; 4]));
    if len == 0 || len > MAX_RECORD_BYTES {
        return FrameScan::Corrupt;
    }
    let Some(crc_bytes) = frame.get(4..12) else {
        return FrameScan::NeedMore;
    };
    let crc = u64::from_le_bytes(crc_bytes.try_into().unwrap_or([0; 8]));
    let Some(payload) = frame.get(12..12 + len as usize) else {
        return FrameScan::NeedMore;
    };
    let mut h = FxHasher::default();
    h.write(payload);
    if h.finish() != crc {
        return FrameScan::Corrupt;
    }
    FrameScan::Frame {
        payload,
        end: pos + 12 + len as usize,
    }
}

/// Extracts the frame starting at `pos`: returns the payload slice and
/// the frame's end offset, or `None` for a torn/corrupt/absent frame.
fn next_frame(data: &[u8], pos: usize) -> Option<(&[u8], usize)> {
    let frame = data.get(pos..)?;
    let len_bytes: [u8; 4] = frame.get(..4)?.try_into().ok()?;
    let crc_bytes: [u8; 8] = frame.get(4..12)?.try_into().ok()?;
    let len = u32::from_le_bytes(len_bytes);
    if len == 0 || len > MAX_RECORD_BYTES {
        return None;
    }
    let payload = frame.get(12..12 + len as usize)?;
    let mut h = FxHasher::default();
    h.write(payload);
    if h.finish() != u64::from_le_bytes(crc_bytes) {
        return None;
    }
    Some((payload, pos + 12 + len as usize))
}

fn decode_header(dec: &mut Dec<'_>) -> Option<HeaderRecord> {
    Some(HeaderRecord {
        version: dec.u32()?,
        input_len: dec.u64()?,
        fingerprint: dec.u64()?,
    })
}

pub(crate) fn encode_item(enc: &mut Enc, t: &ItemTrace) {
    enc.u64(t.index);
    enc.u64(t.pair_id);
    enc.u8(t.disposition);
    enc.opt_str(t.instruction.as_deref());
    enc.opt_str(t.response.as_deref());
    enc.u32(t.tags.len() as u32);
    for tag in &t.tags {
        enc.str(tag);
    }
    match &t.failure {
        None => enc.u8(0),
        Some(f) => {
            enc.u8(1);
            enc.str(&f.stage);
            enc.u32(f.attempts);
            enc.str(&f.error);
            enc.u8(match f.kind {
                FailureKind::RetriesExhausted => 0,
                FailureKind::Fatal => 1,
            });
        }
    }
    enc.u64(t.digest);
    enc.u32(t.stages.len() as u32);
    for s in &t.stages {
        enc.u32(s.stage);
        enc.u8(u8::from(s.degraded));
        enc.u8(u8::from(s.retained_after));
        enc.u8(u8::from(s.quarantined));
        enc.u32(s.retries);
        enc.u32(s.iterations);
        enc.u64(s.faults);
        enc.u32(s.timeouts);
        enc.u64(s.backoff_nanos);
        enc.u64(s.latency_nanos);
        enc.u32(s.counters.len() as u32);
        for (key, v) in &s.counters {
            enc.str(key);
            enc.u64(*v);
        }
    }
}

pub(crate) fn decode_item(dec: &mut Dec<'_>) -> Option<ItemTrace> {
    let index = dec.u64()?;
    let pair_id = dec.u64()?;
    let disposition = dec.u8()?;
    if disposition > 2 {
        return None;
    }
    let instruction = dec.opt_str()?;
    let response = dec.opt_str()?;
    let n_tags = dec.u32()?;
    let mut tags = Vec::with_capacity(n_tags.min(1024) as usize);
    for _ in 0..n_tags {
        tags.push(dec.str()?);
    }
    let failure = match dec.u8()? {
        0 => None,
        1 => Some(FailureRecord {
            stage: dec.str()?,
            attempts: dec.u32()?,
            error: dec.str()?,
            kind: match dec.u8()? {
                0 => FailureKind::RetriesExhausted,
                1 => FailureKind::Fatal,
                _ => return None,
            },
        }),
        _ => return None,
    };
    let digest = dec.u64()?;
    let n_stages = dec.u32()?;
    let mut stages = Vec::with_capacity(n_stages.min(1024) as usize);
    for _ in 0..n_stages {
        let stage = dec.u32()?;
        let degraded = dec.bool()?;
        let retained_after = dec.bool()?;
        let quarantined = dec.bool()?;
        let retries = dec.u32()?;
        let iterations = dec.u32()?;
        let faults = dec.u64()?;
        let timeouts = dec.u32()?;
        let backoff_nanos = dec.u64()?;
        let latency_nanos = dec.u64()?;
        let n_counters = dec.u32()?;
        let mut counters = Vec::with_capacity(n_counters.min(1024) as usize);
        for _ in 0..n_counters {
            let key = dec.str()?;
            let v = dec.u64()?;
            counters.push((key, v));
        }
        stages.push(StageTrace {
            stage,
            degraded,
            retained_after,
            quarantined,
            retries,
            iterations,
            faults,
            timeouts,
            backoff_nanos,
            latency_nanos,
            counters,
        });
    }
    Some(ItemTrace {
        index,
        pair_id,
        disposition,
        instruction,
        response,
        tags,
        failure,
        digest,
        stages,
    })
}

/// Little-endian record encoder.
pub(crate) struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn new() -> Enc {
        Enc { buf: Vec::new() }
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub(crate) fn opt_str(&mut self, s: Option<&str>) {
        match s {
            None => self.u8(0),
            Some(s) => {
                self.u8(1);
                self.str(s);
            }
        }
    }

    pub(crate) fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    pub(crate) fn into_payload(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian record decoder; every getter returns `None` on underrun
/// or malformed data, which the scanner treats as end-of-valid-log.
pub(crate) struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Dec<'a> {
        Dec { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.data.get(self.pos..self.pos.checked_add(n)?)?;
        self.pos += n;
        Some(slice)
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    pub(crate) fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        self.take(4)?.try_into().ok().map(u32::from_le_bytes)
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        self.take(8)?.try_into().ok().map(u64::from_le_bytes)
    }

    pub(crate) fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    pub(crate) fn opt_str(&mut self) -> Option<Option<String>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(self.str()?)),
            _ => None,
        }
    }

    /// `true` when the whole payload was consumed — trailing garbage in a
    /// checksummed record means a format mismatch, not a torn write, and
    /// is rejected all the same.
    pub(crate) fn bytes(&mut self) -> Option<Vec<u8>> {
        let len = self.u32()? as usize;
        self.take(len).map(|b| b.to_vec())
    }

    pub(crate) fn exhausted(&self) -> bool {
        self.pos == self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static UNIQUE: AtomicU64 = AtomicU64::new(0);

    fn temp_path(tag: &str) -> PathBuf {
        let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "coachlm-journal-unit-{}-{tag}-{n}.wal",
            std::process::id()
        ))
    }

    fn header() -> HeaderRecord {
        HeaderRecord {
            version: JOURNAL_VERSION,
            input_len: 4,
            fingerprint: 0xFEED_BEEF,
        }
    }

    fn trace(index: u64) -> ItemTrace {
        ItemTrace {
            index,
            pair_id: index * 10,
            disposition: u8::from(index % 3 == 2) * 2,
            instruction: index.is_multiple_of(2).then(|| format!("revised {index}?")),
            response: Some(format!("answer {index} with ünïcode")),
            tags: vec!["leakage".into(), format!("t{index}")],
            failure: (index % 3 == 2).then(|| FailureRecord {
                stage: "coach-revise".into(),
                attempts: 3,
                error: "injected: transient".into(),
                kind: FailureKind::RetriesExhausted,
            }),
            digest: 0xD1_6E57 ^ index,
            stages: vec![StageTrace {
                stage: 0,
                degraded: index % 4 == 1,
                retained_after: index % 3 != 2,
                quarantined: index % 3 == 2,
                retries: 2,
                iterations: u32::try_from(1 + index % 3).unwrap_or(1),
                faults: 3,
                timeouts: 1,
                backoff_nanos: 30_000_000,
                latency_nanos: 250_000_000,
                counters: vec![("invalid".into(), 1), ("repair:x".into(), 2)],
            }],
        }
    }

    #[test]
    fn records_round_trip_through_a_reopen() {
        let path = temp_path("roundtrip");
        let mut j = Journal::create(&path).unwrap();
        j.write_header(header()).unwrap();
        for i in 0..4 {
            j.append(&trace(i)).unwrap();
        }
        j.sync().unwrap();
        drop(j);

        let mut back = Journal::open(&path).unwrap();
        assert_eq!(back.header(), Some(&header()));
        assert_eq!(back.committed(), 4);
        let committed = back.take_committed();
        for i in 0..4u64 {
            assert_eq!(committed.get(&i), Some(&trace(i)));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_tail_truncation_offset_recovers_the_prefix() {
        let path = temp_path("torn");
        let mut j = Journal::create(&path).unwrap();
        j.write_header(header()).unwrap();
        for i in 0..3 {
            j.append(&trace(i)).unwrap();
        }
        j.sync().unwrap();
        let spans = j.record_spans().to_vec();
        drop(j);
        let full = std::fs::read(&path).unwrap();
        let (last_start, last_end) = spans[spans.len() - 1];
        assert_eq!(last_end, full.len() as u64);

        // Cutting anywhere inside the tail record must recover exactly
        // the first two items and truncate the torn bytes away.
        for cut in last_start..last_end {
            std::fs::write(&path, &full[..cut as usize]).unwrap();
            let j = Journal::open(&path).unwrap();
            assert_eq!(j.committed(), 2, "cut at {cut}");
            assert_eq!(
                std::fs::metadata(&path).unwrap().len(),
                last_start,
                "cut at {cut} must truncate to the frontier"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_byte_drops_everything_from_the_flip_onward() {
        let path = temp_path("corrupt");
        let mut j = Journal::create(&path).unwrap();
        j.write_header(header()).unwrap();
        for i in 0..3 {
            j.append(&trace(i)).unwrap();
        }
        j.sync().unwrap();
        let spans = j.record_spans().to_vec();
        drop(j);
        let mut data = std::fs::read(&path).unwrap();
        // Flip a byte inside item record 1 (spans[0] is the header).
        let mid = (spans[2].0 + 13) as usize;
        data[mid] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();

        let j = Journal::open(&path).unwrap();
        assert_eq!(j.committed(), 1);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), spans[2].0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn appends_after_recovery_extend_the_clean_log() {
        let path = temp_path("extend");
        let mut j = Journal::create(&path).unwrap();
        j.write_header(header()).unwrap();
        j.append(&trace(0)).unwrap();
        j.append(&trace(1)).unwrap();
        j.sync().unwrap();
        let full_len = std::fs::metadata(&path).unwrap().len();
        drop(j);
        // Tear the tail record in half, reopen, append a replacement.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 5]).unwrap();
        let mut j = Journal::open(&path).unwrap();
        assert_eq!(j.committed(), 1);
        j.append(&trace(1)).unwrap();
        j.sync().unwrap();
        drop(j);
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.committed(), 2);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), full_len);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn item_record_before_header_is_rejected() {
        let path = temp_path("no-header");
        let mut j = Journal::create(&path).unwrap();
        j.write_header(header()).unwrap();
        j.append(&trace(0)).unwrap();
        j.sync().unwrap();
        let spans = j.record_spans().to_vec();
        drop(j);
        // Strip the header record; the orphaned item must not be trusted.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[spans[0].1 as usize..]).unwrap();
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.committed(), 0);
        assert!(j.header().is_none());
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sync_every_floors_at_one_and_batches_otherwise() {
        let path = temp_path("batch");
        let mut j = Journal::create(&path).unwrap().sync_every(0);
        j.write_header(header()).unwrap();
        // sync_every(0) floors to 1: the record is already durable.
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            j.record_spans()[0].1
        );
        drop(j);

        let path2 = temp_path("batch2");
        let mut j = Journal::create(&path2).unwrap().sync_every(100);
        j.write_header(header()).unwrap();
        j.append(&trace(0)).unwrap();
        // Buffered, not yet written.
        assert_eq!(std::fs::metadata(&path2).unwrap().len(), 0);
        j.sync().unwrap();
        assert!(std::fs::metadata(&path2).unwrap().len() > 0);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&path2).ok();
    }

    /// The `sync_every` durability contract the supervised restart path
    /// leans on: a kill at *any* append point loses at most `sync_every`
    /// committed-but-unsynced item records from the durable prefix (they
    /// are re-executed on resume, never lost), and the recovered log
    /// extends cleanly to the full record count.
    #[test]
    fn sync_every_bounds_unsynced_tail_loss() {
        let total = 20u64;
        for k in [1usize, 3, 8] {
            let path = temp_path(&format!("tail-bound-{k}"));
            let snap = temp_path(&format!("tail-bound-snap-{k}"));
            let mut j = Journal::create(&path).unwrap().sync_every(k);
            j.write_header(header()).unwrap();
            for i in 0..total {
                j.append(&trace(i)).unwrap();
                // A kill right now leaves exactly the bytes currently on
                // disk; snapshot them and measure the durable prefix.
                std::fs::copy(&path, &snap).unwrap();
                let recovered = Journal::open(&snap).unwrap();
                let appended = i + 1;
                let durable = recovered.committed() as u64;
                assert!(durable <= appended, "k={k}: disk ran ahead at {i}");
                assert!(
                    appended - durable <= k as u64,
                    "k={k}: kill after append {i} would lose {} > {k} records",
                    appended - durable
                );
            }
            drop(j);

            // Resume from the last kill point: replay the durable prefix,
            // re-append the lost tail, and the log converges to a clean
            // full-length journal.
            let mut resumed = Journal::open(&snap).unwrap();
            for i in resumed.committed() as u64..total {
                resumed.append(&trace(i)).unwrap();
            }
            resumed.sync().unwrap();
            drop(resumed);
            assert_eq!(Journal::open(&snap).unwrap().committed() as u64, total);
            std::fs::remove_file(&path).ok();
            std::fs::remove_file(&snap).ok();
        }
    }
}
