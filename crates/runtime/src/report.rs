//! Per-stage execution reports.

use std::collections::BTreeMap;
use std::time::Duration;

/// What one stage did over a whole run.
///
/// Item counts and counters are deterministic (thread-count-invariant);
/// [`cpu_time`](Self::cpu_time) is measured and varies run to run.
#[derive(Debug, Clone, Default)]
pub struct StageReport {
    /// The stage's [`name`](crate::Stage::name).
    pub stage: String,
    /// Items that entered the stage (still retained when they reached it).
    pub items_in: usize,
    /// Items still retained after the stage.
    pub items_out: usize,
    /// Stage counters, summed across workers.
    pub counters: BTreeMap<String, u64>,
    /// Total time spent inside this stage's `process`, summed across
    /// workers (CPU-side busy time, not wall clock).
    pub cpu_time: Duration,
}

impl StageReport {
    /// The counter's value, zero when never bumped.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Items discarded by this stage.
    pub fn items_dropped(&self) -> usize {
        self.items_in - self.items_out
    }

    /// Processing rate derived from measured stage time; `0.0` when the
    /// stage saw no items or ran too fast to time.
    pub fn samples_per_sec(&self) -> f64 {
        let secs = self.cpu_time.as_secs_f64();
        if self.items_in == 0 || secs <= 0.0 {
            0.0
        } else {
            self.items_in as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rate_is_zero_guarded() {
        let mut r = StageReport::default();
        assert_eq!(r.samples_per_sec(), 0.0);
        r.items_in = 100;
        assert_eq!(r.samples_per_sec(), 0.0);
        r.cpu_time = Duration::from_millis(500);
        assert!((r.samples_per_sec() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn counters_default_to_zero() {
        let mut r = StageReport::default();
        assert_eq!(r.counter("missing"), 0);
        r.counters.insert("seen".into(), 3);
        assert_eq!(r.counter("seen"), 3);
        r.items_in = 5;
        r.items_out = 2;
        assert_eq!(r.items_dropped(), 3);
    }
}
