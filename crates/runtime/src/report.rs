//! Per-stage execution reports.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// What one stage did over a whole run.
///
/// Item counts, counters, retry/quarantine/timeout/degraded tallies,
/// [`backoff_time`](Self::backoff_time), and
/// [`latency_time`](Self::latency_time) are deterministic
/// (thread-count-invariant); [`cpu_time`](Self::cpu_time) is measured wall
/// time, the one field the determinism contract excludes.
///
/// The three time channels are disjoint — measured stage-body time
/// ([`cpu_time`](Self::cpu_time)), simulated retry backoff
/// ([`backoff_time`](Self::backoff_time)), and simulated injected
/// latency / deadline waits ([`latency_time`](Self::latency_time)) — and
/// [`total_time`](Self::total_time) is their sum. Earlier versions folded
/// the simulated channels into `cpu_time` as well, double-counting backoff
/// whenever latency and transient faults hit the same (stage, item,
/// attempt); the split accounting makes each channel additive on its own.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[must_use]
pub struct StageReport {
    /// The stage's [`name`](crate::Stage::name).
    pub stage: String,
    /// Items that entered the stage (still retained when they reached it).
    pub items_in: usize,
    /// Items still retained after the stage.
    pub items_out: usize,
    /// Items this stage sent to quarantine (retries exhausted or a
    /// permanent failure).
    pub quarantined: usize,
    /// Retry attempts beyond each item's first (deterministic under a
    /// seeded fault plan).
    pub retries: u64,
    /// Committed iteration passes, summed over items. A plain stage
    /// contributes exactly one per item it completed (retries of the same
    /// pass do not count); a looping stage (one returning
    /// [`StageOutcome::Again`](crate::StageOutcome::Again)) contributes up
    /// to its [`iteration_budget`](crate::Stage::iteration_budget). This
    /// is what keeps multi-pass stages from silently reporting single-pass
    /// work: `iterations / items_in` is the mean pass count.
    pub iterations: u64,
    /// Faults the executor injected into this stage (all three classes).
    pub faults_injected: u64,
    /// Attempts cut short because an injected latency spike exceeded the
    /// stage's [`deadline`](crate::Stage::deadline) budget (each also
    /// counts as an injected fault and feeds the retry machinery).
    pub timeouts: u64,
    /// Items that passed through unprocessed because the stage's circuit
    /// breaker was open (the §III-B1 leakage fallback).
    pub degraded: usize,
    /// Stage counters, summed across workers.
    pub counters: BTreeMap<String, u64>,
    /// Measured stage-body time, summed across workers. Informational:
    /// this is the one report field that varies run to run.
    #[serde(with = "duration_nanos")]
    pub cpu_time: Duration,
    /// Simulated retry backoff. Fully deterministic:
    /// `Σ base × 2^(retry-1)` over every retry actually taken (the final
    /// failed attempt of an exhausted item charges no backoff — there is
    /// no retry after it to wait for).
    #[serde(with = "duration_nanos")]
    pub backoff_time: Duration,
    /// Simulated injected latency: spikes that ran to completion plus
    /// deadline-capped waits for attempts that timed out. Deterministic
    /// under a fixed [`FaultPlan`](crate::FaultPlan).
    #[serde(with = "duration_nanos")]
    pub latency_time: Duration,
}

/// `Duration` ⇄ integer nanoseconds, for exact serialization round-trips.
pub(crate) mod duration_nanos {
    use serde::{Error, Value};
    use std::time::Duration;

    /// Serializes as a u64 nanosecond count (saturating far beyond any
    /// real stage time).
    pub fn to_value(d: &Duration) -> Value {
        Value::UInt(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }

    /// Deserializes from the nanosecond count.
    pub fn from_value(v: &Value) -> Result<Duration, Error> {
        match v {
            Value::UInt(n) => Ok(Duration::from_nanos(*n)),
            _ => Err(Error::expected("u64 nanoseconds", "Duration")),
        }
    }
}

impl StageReport {
    /// The counter's value, zero when never bumped.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Items this stage deliberately discarded (not counting quarantined
    /// ones, which left the chain by failure rather than by filtering).
    pub fn items_dropped(&self) -> usize {
        self.items_in - self.items_out - self.quarantined
    }

    /// Everything attributed to the stage: measured body time plus the
    /// simulated backoff and latency the production system would have
    /// spent. This is what throughput figures divide by, so chaos runs
    /// report degraded-mode rates instead of pretending faults are free.
    pub fn total_time(&self) -> Duration {
        self.cpu_time + self.backoff_time + self.latency_time
    }

    /// Processing rate derived from attributed stage time
    /// ([`total_time`](Self::total_time)); `0.0` when the stage saw no
    /// items or ran too fast to time.
    pub fn samples_per_sec(&self) -> f64 {
        let secs = self.total_time().as_secs_f64();
        if self.items_in == 0 || secs <= 0.0 {
            0.0
        } else {
            self.items_in as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rate_is_zero_guarded() {
        let mut r = StageReport::default();
        assert_eq!(r.samples_per_sec(), 0.0);
        r.items_in = 100;
        assert_eq!(r.samples_per_sec(), 0.0);
        r.cpu_time = Duration::from_millis(500);
        assert!((r.samples_per_sec() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn counters_default_to_zero() {
        let mut r = StageReport::default();
        assert_eq!(r.counter("missing"), 0);
        r.counters.insert("seen".into(), 3);
        assert_eq!(r.counter("seen"), 3);
        r.items_in = 5;
        r.items_out = 2;
        assert_eq!(r.items_dropped(), 3);
    }

    #[test]
    fn quarantined_items_are_not_counted_as_dropped() {
        let r = StageReport {
            items_in: 10,
            items_out: 6,
            quarantined: 3,
            ..StageReport::default()
        };
        assert_eq!(r.items_dropped(), 1);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut r = StageReport {
            stage: "coach-revise".into(),
            items_in: 100,
            items_out: 90,
            quarantined: 4,
            retries: 11,
            iterations: 137,
            faults_injected: 15,
            timeouts: 3,
            degraded: 7,
            cpu_time: Duration::from_nanos(1_234_567_891),
            backoff_time: Duration::from_millis(70),
            latency_time: Duration::from_millis(460),
            ..StageReport::default()
        };
        r.counters.insert("invalid".into(), 2);
        let json = serde_json::to_string(&r).unwrap();
        let back: StageReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn iteration_accounting_round_trips_exactly() {
        // Multi-pass stages report more iterations than items; the field
        // must survive serialization bit-exactly, not as a float.
        let r = StageReport {
            stage: "revise-until-pass".into(),
            items_in: 50,
            items_out: 50,
            iterations: u64::MAX - 3,
            ..StageReport::default()
        };
        let back: StageReport = serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
        assert_eq!(back.iterations, u64::MAX - 3);
        assert_eq!(back, r);
    }

    #[test]
    fn total_time_sums_the_disjoint_channels() {
        let r = StageReport {
            cpu_time: Duration::from_millis(5),
            backoff_time: Duration::from_millis(30),
            latency_time: Duration::from_millis(65),
            ..StageReport::default()
        };
        assert_eq!(r.total_time(), Duration::from_millis(100));
        // The rate divides by total time, so simulated waits slow the
        // reported throughput exactly as they would in production.
        let r = StageReport { items_in: 100, ..r };
        assert!((r.samples_per_sec() - 1000.0).abs() < 1e-9);
    }
}
