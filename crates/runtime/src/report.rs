//! Per-stage execution reports.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// What one stage did over a whole run.
///
/// Item counts, counters, retry/quarantine tallies, and
/// [`backoff_time`](Self::backoff_time) are deterministic
/// (thread-count-invariant); [`cpu_time`](Self::cpu_time) mixes measured
/// stage time with the deterministic simulated portion, so it varies run
/// to run by the measured part only.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[must_use]
pub struct StageReport {
    /// The stage's [`name`](crate::Stage::name).
    pub stage: String,
    /// Items that entered the stage (still retained when they reached it).
    pub items_in: usize,
    /// Items still retained after the stage.
    pub items_out: usize,
    /// Items this stage sent to quarantine (retries exhausted or a
    /// permanent failure).
    pub quarantined: usize,
    /// Retry attempts beyond each item's first (deterministic under a
    /// seeded fault plan).
    pub retries: u64,
    /// Faults the executor injected into this stage (all three classes).
    pub faults_injected: u64,
    /// Stage counters, summed across workers.
    pub counters: BTreeMap<String, u64>,
    /// Total time attributed to this stage, summed across workers: measured
    /// CPU-side busy time plus the simulated backoff and injected latency
    /// the production system would have spent.
    #[serde(with = "duration_nanos")]
    pub cpu_time: Duration,
    /// The simulated retry-backoff portion of [`cpu_time`](Self::cpu_time)
    /// alone. Fully deterministic: `Σ base × 2^(retry-1)` over every retry.
    #[serde(with = "duration_nanos")]
    pub backoff_time: Duration,
}

/// `Duration` ⇄ integer nanoseconds, for exact serialization round-trips.
pub(crate) mod duration_nanos {
    use serde::{Error, Value};
    use std::time::Duration;

    /// Serializes as a u64 nanosecond count (saturating far beyond any
    /// real stage time).
    pub fn to_value(d: &Duration) -> Value {
        Value::UInt(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }

    /// Deserializes from the nanosecond count.
    pub fn from_value(v: &Value) -> Result<Duration, Error> {
        match v {
            Value::UInt(n) => Ok(Duration::from_nanos(*n)),
            _ => Err(Error::expected("u64 nanoseconds", "Duration")),
        }
    }
}

impl StageReport {
    /// The counter's value, zero when never bumped.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Items this stage deliberately discarded (not counting quarantined
    /// ones, which left the chain by failure rather than by filtering).
    pub fn items_dropped(&self) -> usize {
        self.items_in - self.items_out - self.quarantined
    }

    /// Processing rate derived from attributed stage time; `0.0` when the
    /// stage saw no items or ran too fast to time.
    pub fn samples_per_sec(&self) -> f64 {
        let secs = self.cpu_time.as_secs_f64();
        if self.items_in == 0 || secs <= 0.0 {
            0.0
        } else {
            self.items_in as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rate_is_zero_guarded() {
        let mut r = StageReport::default();
        assert_eq!(r.samples_per_sec(), 0.0);
        r.items_in = 100;
        assert_eq!(r.samples_per_sec(), 0.0);
        r.cpu_time = Duration::from_millis(500);
        assert!((r.samples_per_sec() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn counters_default_to_zero() {
        let mut r = StageReport::default();
        assert_eq!(r.counter("missing"), 0);
        r.counters.insert("seen".into(), 3);
        assert_eq!(r.counter("seen"), 3);
        r.items_in = 5;
        r.items_out = 2;
        assert_eq!(r.items_dropped(), 3);
    }

    #[test]
    fn quarantined_items_are_not_counted_as_dropped() {
        let r = StageReport {
            items_in: 10,
            items_out: 6,
            quarantined: 3,
            ..StageReport::default()
        };
        assert_eq!(r.items_dropped(), 1);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut r = StageReport {
            stage: "coach-revise".into(),
            items_in: 100,
            items_out: 90,
            quarantined: 4,
            retries: 11,
            faults_injected: 15,
            cpu_time: Duration::from_nanos(1_234_567_891),
            backoff_time: Duration::from_millis(70),
            ..StageReport::default()
        };
        r.counters.insert("invalid".into(), 2);
        let json = serde_json::to_string(&r).unwrap();
        let back: StageReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
