//! The content-addressed revision cache.
//!
//! CoachLM's deployment traffic (§IV-A) is duplicate-heavy: near-identical
//! instruction pairs arrive constantly, and re-running the full
//! Clean → CoachRevise → ExpertAnnotate chain on every copy burns the
//! pipeline's most expensive stage on work it has already done. The
//! revision cache memoizes the *full per-item chain result* — disposition,
//! rewritten text, tags, and the per-stage report deltas — keyed by a
//! content fingerprint of the pair as it entered the chain, so a duplicate
//! skips the whole stage-group topology.
//!
//! ## Determinism model
//!
//! The cache only exists in **content-keyed** runs
//! ([`ExecutorConfig::content_keyed`](crate::ExecutorConfig::content_keyed)),
//! where the per-(stage, item) RNG and the fault rolls key on the content
//! fingerprint instead of the pair id. Under that keying, two items with
//! identical input content produce byte-identical terminal states, tags,
//! failures, and stage counters — so replaying the first occurrence's
//! recorded effects onto a duplicate *is* executing it. That is what keeps
//! a cached run digest-identical to an uncached content-keyed run at any
//! thread count, queue capacity, or schedule, faults included.
//!
//! The machinery is a deterministic **dedup pre-pass** at admission: slots
//! are scanned once, sequentially, in index order; the first non-shed
//! occurrence of each content key becomes the *representative*, and later
//! occurrences are marked as hits pointing at it. Workers skip hit slots
//! entirely (they charge zero virtual time — the throughput win); the
//! ordered sink, which always sees the representative before its
//! duplicates, replays the representative's journal-visible effects onto
//! each hit: terminal item state, report deltas, and (under a journal) a
//! synthesized per-item record, so crash-resume with a warm cache
//! converges to the uninterrupted digest.
//!
//! ## Near-match tier
//!
//! Optionally, a key that misses the exact tier probes previously inserted
//! representatives within a `k`-bounded word-level edit distance (the
//! banded DP from `coachlm-text`, over interned word symbols). A near hit
//! reuses the representative's revision — an *approximation*, tagged
//! `cache:near`, deterministic for a fixed policy but intentionally
//! different from what uncached execution would produce. Digest-identity
//! guarantees therefore apply to the exact tier; the near tier trades
//! fidelity for throughput and is fingerprinted so a journal written with
//! one policy never resumes under another.
//!
//! Breakers are incompatible with the cache: degraded passthrough depends
//! on an item's *index* (epoch position), not its content, so duplicates
//! may legitimately diverge under a breaker. The executor rejects the
//! combination.

use crate::stream::Slot;
use coachlm_data::InstructionPair;
use coachlm_text::editdist::edit_distance_bounded;
use coachlm_text::fxhash::{fingerprint_fields, FxHashMap};
use coachlm_text::intern::{Interner, Sym};
use std::hash::Hasher;

/// How the revision cache matches and retains entries. Part of the journal
/// fingerprint: hit decisions are part of run outcomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachePolicy {
    near_distance: usize,
    near_probes: usize,
    capacity: usize,
}

impl CachePolicy {
    /// Exact-fingerprint matching only, unbounded entries. This tier is
    /// lossless: hits replay exactly what execution would have produced.
    pub fn exact() -> Self {
        CachePolicy {
            near_distance: 0,
            near_probes: 0,
            capacity: 0,
        }
    }

    /// Enables the near-match tier: an exact miss probes up to
    /// `max_probes` stored representatives (most recent first, same
    /// category, word lengths within range) and reuses the first one
    /// within word-level edit distance `max_distance`. `max_distance` of 0
    /// disables the tier.
    pub fn near(mut self, max_distance: usize, max_probes: usize) -> Self {
        self.near_distance = max_distance;
        self.near_probes = max_probes.max(1);
        self
    }

    /// Caps the number of representatives the cache tracks; once full, new
    /// content keys stop being inserted (deterministically) and stay
    /// misses. 0 (the default) means unbounded.
    pub fn capacity(mut self, entries: usize) -> Self {
        self.capacity = entries;
        self
    }

    /// The near tier as `(max_distance, max_probes)`, if enabled.
    pub fn near_tier(&self) -> Option<(usize, usize)> {
        (self.near_distance > 0).then_some((self.near_distance, self.near_probes))
    }

    /// The representative cap (0 = unbounded).
    pub fn capacity_entries(&self) -> usize {
        self.capacity
    }

    /// Folds the policy into a run fingerprint.
    pub(crate) fn fingerprint_into(&self, h: &mut impl Hasher) {
        h.write_u64(self.near_distance as u64);
        h.write_u64(self.near_probes as u64);
        h.write_u64(self.capacity as u64);
    }
}

/// Deterministic per-run revision-cache tallies.
///
/// Every non-shed input slot is classified exactly once — as a miss (it
/// became, or failed to become, a representative) or as an exact/near hit.
/// Replayed journal slots classify the same way, so the tallies are
/// identical between a fresh run and a crash-resumed one; like
/// `sim_elapsed`, they are deterministic but excluded from the output
/// digest (an uncached run reports all zeros).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Slots whose content fingerprint matched a representative exactly.
    pub exact_hits: u64,
    /// Slots matched by the bounded-edit-distance tier.
    pub near_hits: u64,
    /// Slots that matched nothing (including every representative itself).
    pub misses: u64,
    /// Representatives inserted (distinct contents seen, capacity-capped).
    pub entries: u64,
}

impl CacheStats {
    /// Total hits across both tiers.
    pub fn hits(&self) -> u64 {
        self.exact_hits + self.near_hits
    }

    /// Total classified lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits() + self.misses
    }

    /// Hits as a fraction of lookups (0.0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits() as f64 / lookups as f64
        }
    }

    /// Adds another run's tallies into this one (shard merging).
    pub fn absorb(&mut self, other: CacheStats) {
        self.exact_hits += other.exact_hits;
        self.near_hits += other.near_hits;
        self.misses += other.misses;
        self.entries += other.entries;
    }
}

/// Content fingerprint of a pair as it entered the chain: instruction,
/// response, and category — deliberately *not* the pair id, so duplicate
/// submissions with fresh ids key identically. Built on the
/// `coachlm-text` fxhash field-fingerprint primitive.
pub(crate) fn content_key(pair: &InstructionPair) -> u64 {
    fingerprint_fields(&[
        pair.instruction.as_bytes(),
        pair.response.as_bytes(),
        &pair.category.0.to_le_bytes(),
    ])
}

/// A hit recorded on a live slot by the pre-pass: replay the effects of
/// the representative with item index `rep`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SlotHit {
    pub(crate) rep: usize,
    pub(crate) near: bool,
}

/// Output of the dedup pre-pass.
pub(crate) struct CachePlan {
    /// Representative *item index* → number of live dependent hits. The
    /// sink stores a representative's result only while this is non-zero,
    /// decrementing per replay, so store memory is bounded by in-flight
    /// duplication, not by the input.
    pub(crate) uses: FxHashMap<usize, usize>,
    pub(crate) stats: CacheStats,
}

/// Bounded-edit-distance candidate index over inserted representatives.
///
/// Representatives are bucketed by word-sequence length band; a probe
/// scans the bands its length could match (|len(a) − len(b)| ≤ k is
/// necessary), newest representative first, and takes the first candidate
/// within the bound — a fixed, schedule-independent order, so the tier is
/// deterministic by construction.
struct NearIndex {
    max_distance: usize,
    max_probes: usize,
    interner: Interner,
    /// `(slot index, category, interned instruction+response words)`.
    reps: Vec<(usize, u16, Vec<Sym>)>,
    /// Length band (`len / max_distance`) → indices into `reps`.
    bands: FxHashMap<usize, Vec<usize>>,
}

impl NearIndex {
    fn new(max_distance: usize, max_probes: usize) -> Self {
        NearIndex {
            max_distance,
            max_probes,
            interner: Interner::new(),
            reps: Vec::new(),
            bands: FxHashMap::default(),
        }
    }

    /// Interned word sequence of a pair, with a separator symbol the
    /// interner can never hand out, so instruction/response boundaries
    /// count in the distance.
    fn syms(&mut self, pair: &InstructionPair) -> Vec<Sym> {
        let mut v = self.interner.intern_words(&pair.instruction);
        v.push(Sym(u32::MAX));
        v.extend(self.interner.intern_words(&pair.response));
        v
    }

    fn band_of(&self, len: usize) -> usize {
        len / self.max_distance.max(1)
    }

    /// First representative within the bound, or `None`.
    fn probe(&self, pair: &InstructionPair, syms: &[Sym]) -> Option<usize> {
        let len = syms.len();
        let lo = self.band_of(len.saturating_sub(self.max_distance));
        let hi = self.band_of(len + self.max_distance);
        let mut candidates: Vec<usize> = (lo..=hi)
            .filter_map(|b| self.bands.get(&b))
            .flatten()
            .copied()
            .collect();
        // Newest first: recent traffic is the likeliest match, and the
        // order is a pure function of insertion order (= index order).
        candidates.sort_unstable_by(|a, b| b.cmp(a));
        let mut probes = 0usize;
        for rid in candidates {
            let (slot, cat, rep_syms) = &self.reps[rid];
            if *cat != pair.category.0 || rep_syms.len().abs_diff(len) > self.max_distance {
                continue;
            }
            probes += 1;
            if probes > self.max_probes {
                break;
            }
            if edit_distance_bounded(rep_syms, syms, self.max_distance).is_some() {
                return Some(*slot);
            }
        }
        None
    }

    fn insert(&mut self, slot: usize, pair: &InstructionPair, syms: Vec<Sym>) {
        let band = self.band_of(syms.len());
        self.bands.entry(band).or_default().push(self.reps.len());
        self.reps.push((slot, pair.category.0, syms));
    }
}

/// The dedup pre-pass: scans the slot sequence once, in index order, and
/// marks every live duplicate with a [`SlotHit`] pointing at its
/// representative (the first non-shed occurrence of the content).
///
/// The pass reads only input content, shed flags, and the policy — all of
/// which are identical between a fresh run and a journal-resumed one — so
/// the hit assignment is a pure function of the run's inputs. Replayed
/// slots participate in representative selection (their committed results
/// feed live duplicates via the sink's replay store) but are never marked
/// as hits themselves: their state is already final.
pub(crate) fn plan_hits(slots: &mut [Slot], policy: &CachePolicy) -> CachePlan {
    let mut by_key: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
    let mut near = policy.near_tier().map(|(d, p)| NearIndex::new(d, p));
    let mut uses: FxHashMap<usize, usize> = FxHashMap::default();
    let mut stats = CacheStats::default();
    let mut decisions: Vec<(usize, SlotHit)> = Vec::new();
    let mut entries = 0usize;

    for i in 0..slots.len() {
        if slots[i].shed {
            continue;
        }
        let key = content_key(&slots[i].item.original);
        // Exact tier: full-content comparison behind the fingerprint, so a
        // 64-bit collision degrades to a miss instead of a wrong replay.
        let exact_rep = by_key.get(&key).and_then(|cands| {
            cands
                .iter()
                .copied()
                .find(|&c| same_content(&slots[c].item.original, &slots[i].item.original))
        });
        if let Some(rep_pos) = exact_rep {
            stats.exact_hits += 1;
            if slots[i].replay.is_none() {
                let rep = slots[rep_pos].item.index;
                decisions.push((i, SlotHit { rep, near: false }));
                *uses.entry(rep).or_insert(0) += 1;
            }
            continue;
        }
        let syms = near.as_mut().map(|n| n.syms(&slots[i].item.original));
        let near_rep = match (&near, &syms) {
            (Some(n), Some(s)) => n.probe(&slots[i].item.original, s),
            _ => None,
        };
        if let Some(rep) = near_rep {
            stats.near_hits += 1;
            if slots[i].replay.is_none() {
                decisions.push((i, SlotHit { rep, near: true }));
                *uses.entry(rep).or_insert(0) += 1;
            }
            continue;
        }
        stats.misses += 1;
        if policy.capacity == 0 || entries < policy.capacity {
            by_key.entry(key).or_default().push(i);
            if let (Some(n), Some(s)) = (near.as_mut(), syms) {
                n.insert(slots[i].item.index, &slots[i].item.original, s);
            }
            entries += 1;
        }
    }
    stats.entries = entries as u64;

    for (i, hit) in decisions {
        slots[i].hit = Some(hit);
    }
    CachePlan { uses, stats }
}

fn same_content(a: &InstructionPair, b: &InstructionPair) -> bool {
    a.category == b.category && a.instruction == b.instruction && a.response == b.response
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::StageItem;
    use coachlm_data::Category;

    fn pair(id: u64, instruction: &str, response: &str, cat: u16) -> InstructionPair {
        InstructionPair::new(
            id,
            instruction.to_string(),
            response.to_string(),
            Category(cat),
        )
    }

    fn slot(index: usize, p: InstructionPair) -> Slot {
        Slot::live(StageItem::new(index, p), false)
    }

    #[test]
    fn content_key_ignores_id_and_respects_content() {
        let a = pair(1, "Explain x.", "X is y.", 0);
        let b = pair(999, "Explain x.", "X is y.", 0);
        assert_eq!(content_key(&a), content_key(&b));
        let c = pair(1, "Explain x.", "X is z.", 0);
        assert_ne!(content_key(&a), content_key(&c));
        let d = pair(1, "Explain x.", "X is y.", 3);
        assert_ne!(content_key(&a), content_key(&d));
    }

    #[test]
    fn first_occurrence_is_rep_later_ones_hit() {
        let mut slots = vec![
            slot(0, pair(0, "q", "a", 0)),
            slot(1, pair(1, "other", "b", 0)),
            slot(2, pair(2, "q", "a", 0)),
            slot(3, pair(3, "q", "a", 0)),
        ];
        let plan = plan_hits(&mut slots, &CachePolicy::exact());
        assert!(slots[0].hit.is_none());
        assert!(slots[1].hit.is_none());
        assert_eq!(slots[2].hit.map(|h| h.rep), Some(0));
        assert_eq!(slots[3].hit.map(|h| h.rep), Some(0));
        assert_eq!(plan.uses.get(&0), Some(&2));
        assert_eq!(plan.stats.exact_hits, 2);
        assert_eq!(plan.stats.misses, 2);
        assert_eq!(plan.stats.entries, 2);
        assert!((plan.stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shed_slots_are_excluded_entirely() {
        let mut slots = vec![
            slot(0, pair(0, "q", "a", 0)),
            slot(1, pair(1, "q", "a", 0)),
            slot(2, pair(2, "q", "a", 0)),
        ];
        slots[0].shed = true;
        slots[0].item.discard("shed:admission");
        let plan = plan_hits(&mut slots, &CachePolicy::exact());
        // The shed slot is neither a rep nor a hit; slot 1 is the rep.
        assert!(slots[0].hit.is_none());
        assert!(slots[1].hit.is_none());
        assert_eq!(slots[2].hit.map(|h| h.rep), Some(1));
        assert_eq!(plan.stats.lookups(), 2);
    }

    #[test]
    fn capacity_freezes_insertion_deterministically() {
        let mut slots: Vec<Slot> = (0..6)
            .map(|i| slot(i, pair(i as u64, &format!("q{i}"), "a", 0)))
            .collect();
        slots.push(slot(6, pair(6, "q5", "a", 0)));
        let plan = plan_hits(&mut slots, &CachePolicy::exact().capacity(3));
        // Only q0..q2 inserted; q5's duplicate misses because q5 was never
        // admitted as a representative.
        assert_eq!(plan.stats.entries, 3);
        assert_eq!(plan.stats.exact_hits, 0);
        assert_eq!(plan.stats.misses, 7);
        assert!(slots.iter().all(|s| s.hit.is_none()));
    }

    #[test]
    fn near_tier_matches_within_bound_and_same_category_only() {
        let mut slots = vec![
            slot(0, pair(0, "please rewrite this text carefully", "sure", 1)),
            // One word substituted: distance 1.
            slot(1, pair(1, "please rewrite this text quickly", "sure", 1)),
            // Same text, different category: no match.
            slot(2, pair(2, "please rewrite this text quickly", "sure", 2)),
            // Too far: every word differs.
            slot(
                3,
                pair(
                    3,
                    "completely unrelated words entirely different",
                    "nope",
                    1,
                ),
            ),
        ];
        let plan = plan_hits(&mut slots, &CachePolicy::exact().near(2, 8));
        assert_eq!(
            slots[1].hit.map(|h| (h.rep, h.near)),
            Some((0, true)),
            "near hit on the one-word variant"
        );
        assert!(slots[2].hit.is_none(), "category mismatch never matches");
        assert!(slots[3].hit.is_none(), "distance beyond the bound misses");
        assert_eq!(plan.stats.near_hits, 1);
    }

    #[test]
    fn near_probe_prefers_newest_and_budget_bounds_work() {
        // Two representatives more than `k` apart from each other (so the
        // second is inserted, not matched), then two probes.
        let mut slots = vec![
            // Rep A: distance 3 from rep B (two words + the response).
            slot(0, pair(0, "w1 w2 w3 w4 w5", "r", 0)),
            // Rep B: misses A at bound 2, becomes the newest rep.
            slot(1, pair(1, "w1 w2 w3 x4 x5", "x", 0)),
            // Probe 1: distance 1 from B, distance 2 from A — both within
            // bound, so newest-first order decides: B wins.
            slot(2, pair(2, "w1 w2 w3 w4 x5", "x", 0)),
            // Probe 2: distance 1 from A only (B is at distance 3). A
            // budget of 1 spends the whole budget on B and never reaches
            // A: the probe misses and becomes a rep itself.
            slot(3, pair(3, "w1 w2 w3 w4 w5", "r2", 0)),
        ];
        let plan = plan_hits(&mut slots, &CachePolicy::exact().near(2, 1));
        assert_eq!(
            slots[2].hit.map(|h| (h.rep, h.near)),
            Some((1, true)),
            "both reps within bound: the newest is probed first"
        );
        assert!(
            slots[3].hit.is_none(),
            "budget exhausted on the newest rep before reaching the match"
        );
        assert_eq!(plan.stats.near_hits, 1);
        assert_eq!(plan.stats.entries, 3);
    }
}
