//! Deterministic fault injection, retry policy, and the quarantine channel.
//!
//! The §IV-A deployment runs CoachLM inside a production data-management
//! pipeline where stage failures, slow items, and malformed pairs are
//! routine. This module supplies the executor's fault-tolerance vocabulary:
//!
//! * [`FaultPlan`] — a seeded description of *injected* faults. Whether a
//!   fault fires is a pure function of `(plan seed, stage salt, item id,
//!   attempt)`, so a plan perturbs a chain identically at any thread count
//!   and under either schedule — chaos tests stay reproducible.
//! * [`RetryPolicy`] — bounded attempts with *simulated* exponential
//!   backoff. No wall-clock sleeping happens; the backoff the production
//!   system would have spent is accounted into the stage report
//!   deterministically instead.
//! * [`FailureRecord`] / [`Quarantine`] — items that exhaust their retries
//!   or hit a permanent fault land in a structured quarantine dataset
//!   instead of panicking the worker or silently vanishing. Automated
//!   curation systems route unprocessable examples to a remediation path
//!   for exactly this reason: a dropped item is invisible, a quarantined
//!   item is a work order.

use coachlm_data::InstructionPair;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// One injected fault, decided per `(stage, item, attempt)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The attempt fails before the stage runs; retrying may succeed.
    Transient,
    /// The item cannot be processed by this stage at all; it is
    /// quarantined without burning further attempts.
    Permanent,
    /// The attempt succeeds but costs an extra latency spike, accounted
    /// into the stage's time.
    Latency(Duration),
}

/// A seeded, deterministic description of which faults to inject.
///
/// Rates are per-attempt probabilities in `[0, 1]`; the three classes are
/// mutually exclusive on any single roll (a permanent fault wins over a
/// transient one, which wins over a latency spike). The default plan is
/// [`FaultPlan::none`]: it injects nothing and adds no per-item overhead.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    transient: f64,
    permanent: f64,
    latency: f64,
    latency_spike: Duration,
}

impl FaultPlan {
    /// The inert plan: no faults, no overhead. Chains run byte-identical
    /// to an executor without a fault layer.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            transient: 0.0,
            permanent: 0.0,
            latency: 0.0,
            latency_spike: Duration::ZERO,
        }
    }

    /// An inert plan carrying a seed; add rates with the builder methods.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::none()
        }
    }

    /// Sets the per-attempt transient-fault probability.
    pub fn transient(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "transient rate {p} out of [0, 1]");
        self.transient = p;
        self
    }

    /// Sets the per-attempt permanent-fault probability.
    pub fn permanent(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "permanent rate {p} out of [0, 1]");
        self.permanent = p;
        self
    }

    /// Sets the per-attempt latency-spike probability and spike size.
    pub fn latency(mut self, p: f64, spike: Duration) -> Self {
        assert!((0.0..=1.0).contains(&p), "latency rate {p} out of [0, 1]");
        self.latency = p;
        self.latency_spike = spike;
        self
    }

    /// `true` when the plan can never fire (the zero-overhead fast path).
    pub fn is_inert(&self) -> bool {
        self.transient <= 0.0 && self.permanent <= 0.0 && self.latency <= 0.0
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Feeds every behaviour-relevant field into a journal fingerprint, so
    /// a resume under a different plan is rejected instead of silently
    /// diverging.
    pub(crate) fn fingerprint_into(&self, h: &mut impl std::hash::Hasher) {
        h.write_u64(self.seed);
        h.write_u64(self.transient.to_bits());
        h.write_u64(self.permanent.to_bits());
        h.write_u64(self.latency.to_bits());
        h.write_u128(self.latency_spike.as_nanos());
    }

    /// Decides the fault for one `(stage, item, attempt)`.
    ///
    /// Pure in its arguments: the same plan rolls the same fault for the
    /// same coordinates no matter which worker asks, which is what keeps
    /// faulted runs thread-count- and schedule-invariant.
    pub fn roll(&self, stage_salt: u64, item_id: u64, attempt: u32) -> Option<Fault> {
        if self.is_inert() {
            return None;
        }
        let mix = self.seed
            ^ stage_salt.rotate_left(17)
            ^ item_id.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (u64::from(attempt)).wrapping_mul(0x517C_C1B7_2722_0A95);
        let u: f64 = StdRng::seed_from_u64(mix).gen();
        if u < self.permanent {
            Some(Fault::Permanent)
        } else if u < self.permanent + self.transient {
            Some(Fault::Transient)
        } else if u < self.permanent + self.transient + self.latency {
            Some(Fault::Latency(self.latency_spike))
        } else {
            None
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Bounded retries with deterministic simulated exponential backoff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per (stage, item), including the first (floored at 1).
    pub max_attempts: u32,
    /// Simulated wait before the first retry; each further retry doubles it.
    pub base_backoff: Duration,
}

impl RetryPolicy {
    /// A policy with the given attempt budget and base backoff.
    pub fn new(max_attempts: u32, base_backoff: Duration) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_backoff,
        }
    }

    /// Feeds the policy into a journal fingerprint (see
    /// [`FaultPlan::fingerprint_into`]).
    pub(crate) fn fingerprint_into(&self, h: &mut impl std::hash::Hasher) {
        h.write_u32(self.max_attempts);
        h.write_u128(self.base_backoff.as_nanos());
    }

    /// The simulated wait charged before retry number `retry` (1-based):
    /// `base × 2^(retry-1)`, saturating.
    pub fn backoff_before(&self, retry: u32) -> Duration {
        self.base_backoff.saturating_mul(
            1u32.checked_shl(retry.saturating_sub(1))
                .unwrap_or(u32::MAX),
        )
    }
}

impl Default for RetryPolicy {
    /// Three attempts, 10 ms base backoff (so a fully exhausted item
    /// charges 10 + 20 = 30 ms of simulated wait).
    fn default() -> Self {
        RetryPolicy::new(3, Duration::from_millis(10))
    }
}

/// Why a quarantined item's last attempt could not be salvaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureKind {
    /// Every attempt failed with a transient error.
    RetriesExhausted,
    /// A permanent error ended processing immediately.
    Fatal,
}

/// Structured account of one quarantined item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureRecord {
    /// Name of the stage the item failed in.
    pub stage: String,
    /// Attempts made (including the first) before giving up.
    pub attempts: u32,
    /// The last attempt's error message.
    pub error: String,
    /// Whether retries ran out or a permanent fault ended it early.
    pub kind: FailureKind,
}

/// One quarantined pair with its failure account.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantinedPair {
    /// The item's position in the chain input, so quarantines from
    /// resumed partial runs can be [`merge`](Quarantine::merge)d back into
    /// a deterministic order. Defaults to 0 when absent from older
    /// serialised quarantines.
    #[serde(default)]
    pub index: usize,
    /// The pair in the state it entered the failing stage (failed attempts
    /// never leak partial mutations — see [`StageOutcome`]).
    ///
    /// [`StageOutcome`]: crate::StageOutcome
    pub pair: InstructionPair,
    /// What happened.
    pub failure: FailureRecord,
}

/// The quarantine channel of one chain run: every item that exhausted its
/// retries or hit a permanent fault, with structured failure records, in
/// input order. The §IV-A remediation story needs these *recoverable* —
/// quarantine serialises to JSON so a later batch (or a human) can re-run
/// exactly the failed pairs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[must_use]
pub struct Quarantine {
    /// Name of the quarantine set (conventionally `{input}-quarantine`).
    pub name: String,
    /// The quarantined pairs, in input order.
    pub items: Vec<QuarantinedPair>,
}

impl Quarantine {
    /// Number of quarantined items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing was quarantined.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The quarantined pairs as a dataset, for re-running through a
    /// remediation chain.
    pub fn dataset(&self) -> coachlm_data::Dataset {
        coachlm_data::Dataset {
            name: self.name.clone(),
            pairs: self.items.iter().map(|q| q.pair.clone()).collect(),
        }
    }

    /// Combines this quarantine with another — e.g. the quarantine of a
    /// crashed partial run with the quarantine of its resumed remainder.
    ///
    /// The result keeps `self`'s name, is sorted by `(failing stage, item
    /// index)`, and drops duplicate `(stage, index)` entries (an item
    /// replayed from a journal appears in both halves; the first copy
    /// wins). Merging is therefore order-independent on the items:
    /// `a.merge(b)` and `b.merge(a)` carry identical item lists.
    pub fn merge(mut self, other: Quarantine) -> Quarantine {
        self.items.extend(other.items);
        self.items
            .sort_by(|a, b| (&a.failure.stage, a.index).cmp(&(&b.failure.stage, b.index)));
        self.items
            .dedup_by(|a, b| a.failure.stage == b.failure.stage && a.index == b.index);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_never_fires() {
        let plan = FaultPlan::none();
        assert!(plan.is_inert());
        for item in 0..100 {
            assert_eq!(plan.roll(7, item, 0), None);
        }
    }

    #[test]
    fn roll_is_deterministic_per_coordinates() {
        let plan = FaultPlan::new(42).transient(0.3).permanent(0.1);
        for (salt, id, attempt) in [(1u64, 5u64, 0u32), (2, 9, 1), (3, 0, 2)] {
            assert_eq!(
                plan.roll(salt, id, attempt),
                plan.roll(salt, id, attempt),
                "same coordinates must roll the same fault"
            );
        }
        // Different attempts on the same item may roll differently; over
        // many items each class actually fires.
        let mut transient = 0;
        let mut permanent = 0;
        for id in 0..2000 {
            match plan.roll(1, id, 0) {
                Some(Fault::Transient) => transient += 1,
                Some(Fault::Permanent) => permanent += 1,
                _ => {}
            }
        }
        let (t, p) = (transient as f64 / 2000.0, permanent as f64 / 2000.0);
        assert!((0.2..0.4).contains(&t), "transient rate {t}");
        assert!((0.05..0.15).contains(&p), "permanent rate {p}");
    }

    #[test]
    fn latency_rolls_carry_the_spike() {
        let spike = Duration::from_millis(7);
        let plan = FaultPlan::new(1).latency(1.0, spike);
        assert_eq!(plan.roll(0, 0, 0), Some(Fault::Latency(spike)));
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let p = RetryPolicy::new(5, Duration::from_millis(10));
        assert_eq!(p.backoff_before(1), Duration::from_millis(10));
        assert_eq!(p.backoff_before(2), Duration::from_millis(20));
        assert_eq!(p.backoff_before(3), Duration::from_millis(40));
        // Very deep retries must not overflow.
        let deep = RetryPolicy::new(u32::MAX, Duration::from_secs(1));
        assert!(deep.backoff_before(200) > Duration::from_secs(1));
    }

    #[test]
    fn max_attempts_floors_at_one() {
        assert_eq!(RetryPolicy::new(0, Duration::ZERO).max_attempts, 1);
    }

    #[test]
    fn quarantine_round_trips_to_dataset() {
        use coachlm_data::Category;
        let q = Quarantine {
            name: "batch-quarantine".into(),
            items: vec![QuarantinedPair {
                index: 3,
                pair: InstructionPair::new(3, "Q?", "A.", Category(0)),
                failure: FailureRecord {
                    stage: "coach-revise".into(),
                    attempts: 3,
                    error: "injected: transient".into(),
                    kind: FailureKind::RetriesExhausted,
                },
            }],
        };
        let d = q.dataset();
        assert_eq!(d.len(), 1);
        assert_eq!(d.pairs[0].id, 3);
        assert!(!q.is_empty());
        assert_eq!(q.len(), 1);
    }

    fn qp(stage: &str, index: usize) -> QuarantinedPair {
        use coachlm_data::Category;
        QuarantinedPair {
            index,
            pair: InstructionPair::new(index as u64, "Q?", "A.", Category(0)),
            failure: FailureRecord {
                stage: stage.into(),
                attempts: 1,
                error: "injected: permanent".into(),
                kind: FailureKind::Fatal,
            },
        }
    }

    #[test]
    fn merge_sorts_dedups_and_is_order_independent() {
        let a = Quarantine {
            name: "first-half".into(),
            items: vec![qp("revise", 9), qp("clean", 4), qp("revise", 2)],
        };
        let b = Quarantine {
            name: "second-half".into(),
            items: vec![qp("clean", 1), qp("revise", 2), qp("revise", 7)],
        };
        let ab = a.clone().merge(b.clone());
        let ba = b.merge(a);
        // Same items either way (names keep the receiver's).
        assert_eq!(ab.items, ba.items);
        assert_eq!(ab.name, "first-half");
        assert_eq!(ba.name, "second-half");
        // Sorted by (stage, index), duplicate (revise, 2) collapsed.
        let keys: Vec<(&str, usize)> = ab
            .items
            .iter()
            .map(|q| (q.failure.stage.as_str(), q.index))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("clean", 1),
                ("clean", 4),
                ("revise", 2),
                ("revise", 7),
                ("revise", 9)
            ]
        );
    }
}
