//! The deterministic hash-sharded multi-worker driver.
//!
//! CoachLM's deployment traffic arrives at a scale no single pipeline
//! keeps up with; this module runs N independent **shards** of the stage
//! chain over a hash-partitioned input and merges their outputs back into
//! one run-shaped result. Partitioning keys on the same content
//! fingerprint as the revision cache ([`crate::cache`]), so duplicate
//! items always land on the same shard and each shard's cache sees its
//! full duplicate cluster — sharding multiplies throughput *without*
//! diluting hit rates.
//!
//! ## Determinism and the merge
//!
//! Each shard is an ordinary [`Executor`] run (optionally journaled, one
//! journal file per shard) over its subsequence of the input, with the
//! items' *global* indices restored before merging. The merge is
//! order-independent by construction:
//!
//! * items are placed by global index — a permutation, not a fold;
//! * per-stage [`StageReport`]s merge by field summation (commutative);
//! * per-shard [`Quarantine`]s fold through [`Quarantine::merge`], which
//!   sorts by `(failing stage, item index)` and dedups — `a.merge(b)`
//!   and `b.merge(a)` carry identical item lists;
//! * `sim_elapsed` is the max over shards (shards run concurrently in
//!   deployment), and the tally fields sum.
//!
//! Because stage behaviour keys on pair content and per-item RNG/fault
//! rolls key on the pair id (or the content fingerprint in content-keyed
//! runs) — never on the item's position — a sharded run produces exactly
//! the items an unsharded run produces, and
//! [`ChainOutput::digest`] agrees at any shard count. The sharded
//! determinism proptests pin this. The one requirement on stages is the
//! same one content-keyed caching already imposes: stage logic must not
//! read `item.index` (shard-local positions differ from global ones).
//!
//! ## Admission control and breakers
//!
//! A [`Feed::Sustained`] source is admitted *globally, before
//! partitioning* — shedding is a function of arrival order over the whole
//! input, so per-shard admission would diverge from the unsharded run.
//! Shed items never reach a shard; the driver re-inserts them at their
//! global indices with the usual `shed:admission` discard. Admitted items
//! then run under a batch feed per shard (the virtual-time model treats
//! them as ready on arrival at their shard).
//!
//! Circuit breakers are rejected: breaker epochs are windows of global
//! index order and cannot be partitioned without changing the evolution.

use crate::cache::{content_key, CacheStats};
use crate::executor::{ChainOutput, Executor, ExecutorConfig};
use crate::fault::Quarantine;
use crate::journal::{Journal, JournalError};
use crate::report::StageReport;
use crate::stage::{Stage, StageItem};
use crate::stream::{admission_plan, merge_report, Feed, StreamSource};
use coachlm_data::InstructionPair;
use std::fmt;
use std::path::Path;
use std::time::Duration;

/// Typed rejection of an executor-config / feed composition that cannot
/// be sharded, raised at validation time — before any shard spawns —
/// instead of the historical mid-run assert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardConfigError {
    /// The config sets a [`crate::BreakerPolicy`]: breaker epochs are
    /// windows of *global* index order and do not partition — each shard
    /// would evolve its own breaker over a subsequence and diverge from
    /// the unsharded run.
    Breaker,
    /// The config sets a breaker *and* the source is [`Feed::Sustained`]:
    /// doubly unshardable, since admission shedding rewrites the very
    /// index sequence the breaker's epochs window over.
    BreakerWithSustainedFeed,
}

impl fmt::Display for ShardConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardConfigError::Breaker => write!(
                f,
                "sharding cannot be combined with a circuit breaker: breaker epochs \
                 are windows of global index order and do not partition"
            ),
            ShardConfigError::BreakerWithSustainedFeed => write!(
                f,
                "sharding cannot be combined with a circuit breaker under a sustained \
                 feed: admission shedding rewrites the index sequence the breaker's \
                 epochs window over"
            ),
        }
    }
}

impl std::error::Error for ShardConfigError {}

/// Why a journaled sharded run failed: the config/feed composition was
/// rejected up front, or a shard's crash journal failed.
#[derive(Debug)]
pub enum ShardError {
    /// Rejected at validation time, before any shard ran.
    Config(ShardConfigError),
    /// A shard's journal could not be created, recovered, or resumed from.
    Journal(JournalError),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Config(e) => write!(f, "{e}"),
            ShardError::Journal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<ShardConfigError> for ShardError {
    fn from(e: ShardConfigError) -> Self {
        ShardError::Config(e)
    }
}

impl From<JournalError> for ShardError {
    fn from(e: JournalError) -> Self {
        ShardError::Journal(e)
    }
}

/// Validates that `config` and `feed` compose with sharding, at
/// config-validation time. Every sharded entry point — in-process and
/// multi-process alike — calls this before partitioning; callers can call
/// it themselves to fail fast when assembling a deployment.
pub fn validate_sharding(config: &ExecutorConfig, feed: &Feed) -> Result<(), ShardConfigError> {
    if config.breaker_policy().is_some() {
        return Err(if matches!(feed, Feed::Sustained { .. }) {
            ShardConfigError::BreakerWithSustainedFeed
        } else {
            ShardConfigError::Breaker
        });
    }
    Ok(())
}

/// The shard an instruction pair is routed to: its content fingerprint
/// modulo the shard count. Duplicate content always co-locates, so each
/// shard's revision cache sees its whole duplicate cluster.
pub fn shard_of(pair: &InstructionPair, shards: usize) -> usize {
    (content_key(pair) % shards.max(1) as u64) as usize
}

/// Per-shard accounting surfaced next to the merged output.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct ShardStats {
    /// The shard index (`0..shards`).
    pub shard: usize,
    /// Items routed to this shard (shed items are routed to no shard).
    pub items: usize,
    /// Items this shard replayed from its journal instead of executing.
    pub replayed: usize,
    /// This shard's revision-cache tallies.
    pub revision_cache: CacheStats,
    /// This shard's modeled makespan; the merged run's `sim_elapsed` is
    /// the max of these.
    #[serde(with = "crate::report::duration_nanos")]
    pub sim_elapsed: Duration,
}

/// A sharded run's merged result.
pub struct ShardedOutput {
    /// The merged run, shaped exactly like an unsharded [`ChainOutput`]:
    /// items in global input order, reports summed per stage,
    /// `sim_elapsed` the across-shard makespan. Digest-identical to the
    /// unsharded run of the same config at any shard count.
    pub output: ChainOutput,
    /// Per-shard quarantines folded through [`Quarantine::merge`]
    /// (order-independent; equals `output.quarantine(..)`).
    pub quarantine: Quarantine,
    /// Per-shard accounting, in shard order.
    pub shards: Vec<ShardStats>,
}

impl std::fmt::Debug for ShardedOutput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedOutput")
            .field("items", &self.output.items.len())
            .field("digest", &self.output.digest())
            .field("shards", &self.shards)
            .finish_non_exhaustive()
    }
}

/// Runs `stages` over the source hash-partitioned across `shards`
/// independent pipeline instances (one OS thread each, sharing the stage
/// chain), and merges the results deterministically. See the module docs
/// for the merge invariants.
///
/// Rejects configs that set a [`crate::BreakerPolicy`] with a typed
/// [`ShardConfigError`] at validation time (see [`validate_sharding`]) —
/// breaker epochs are windows of global index order and cannot be
/// partitioned.
pub fn run_sharded(
    config: &ExecutorConfig,
    stages: &[Box<dyn Stage + '_>],
    source: StreamSource,
    shards: usize,
) -> Result<ShardedOutput, ShardConfigError> {
    match run_sharded_inner(config, stages, source, shards, None) {
        Ok(out) => Ok(out),
        Err(ShardError::Config(e)) => Err(e),
        Err(ShardError::Journal(e)) => unreachable!("no journals, no journal errors: {e}"),
    }
}

/// Journaled variant of [`run_sharded`]: each shard appends to (or
/// resumes from) its own journal file `shard-<i>-of-<n>.wal` under
/// `dir`, so a killed sharded run resumes at each shard's exact frontier
/// and — warm caches included — converges to the uninterrupted digest.
/// The first failing shard's journal error (lowest shard index) is
/// returned; invalid config/feed compositions are rejected up front as
/// [`ShardError::Config`].
pub fn run_sharded_journaled(
    config: &ExecutorConfig,
    stages: &[Box<dyn Stage + '_>],
    source: StreamSource,
    shards: usize,
    dir: &Path,
) -> Result<ShardedOutput, ShardError> {
    run_sharded_inner(config, stages, source, shards, Some(dir))
}

/// A hash-partitioned source: the shed items (already discarded), the
/// per-shard input subsequences, and the global index of each shard's
/// k-th item for the merge. Shared between the in-process driver here and
/// the multi-process driver in [`crate::supervise`], so both partition
/// identically by construction.
pub(crate) struct Partitioned {
    /// Total input length (shed included).
    pub(crate) n: usize,
    /// Items shed at global admission, already discarded.
    pub(crate) shed_items: Vec<StageItem>,
    /// Each shard's input subsequence, in global order.
    pub(crate) partitions: Vec<Vec<InstructionPair>>,
    /// Global index of each shard's k-th item.
    pub(crate) global_idx: Vec<Vec<usize>>,
}

/// Partitions a source across `shards` by content hash, applying global
/// admission first: shedding is a pure function of arrival order over the
/// whole input (see module docs), so it must happen before partitioning.
pub(crate) fn partition_source(source: StreamSource, shards: usize) -> Partitioned {
    let StreamSource { pairs, feed } = source;
    let n = pairs.len();
    let admission = admission_plan(&feed, n);
    let mut shed_items: Vec<StageItem> = Vec::new();
    let mut partitions: Vec<Vec<InstructionPair>> = vec![Vec::new(); shards];
    let mut global_idx: Vec<Vec<usize>> = vec![Vec::new(); shards];
    for (g, pair) in pairs.into_iter().enumerate() {
        if admission.as_ref().is_some_and(|plan| plan[g]) {
            let mut item = StageItem::new(g, pair);
            item.discard("shed:admission");
            shed_items.push(item);
            continue;
        }
        let s = shard_of(&pair, shards);
        partitions[s].push(pair);
        global_idx[s].push(g);
    }
    Partitioned {
        n,
        shed_items,
        partitions,
        global_idx,
    }
}

/// The deterministic merge: places items by global index (restoring it on
/// each), sums the per-stage tallies, and folds the quarantines. Takes
/// one [`ChainOutput`] per shard, in shard order. Shared between the
/// in-process and multi-process drivers.
pub(crate) fn merge_outputs(
    stages: &[Box<dyn Stage + '_>],
    shed_items: Vec<StageItem>,
    global_idx: &[Vec<usize>],
    n: usize,
    outputs: Vec<ChainOutput>,
) -> ShardedOutput {
    let mut slots: Vec<Option<StageItem>> = (0..n).map(|_| None).collect();
    for item in shed_items {
        let g = item.index;
        slots[g] = Some(item);
    }
    let mut reports: Vec<StageReport> = stages
        .iter()
        .map(|s| StageReport {
            stage: s.name().to_string(),
            ..StageReport::default()
        })
        .collect();
    let mut quarantine = Quarantine {
        name: "sharded".to_string(),
        items: Vec::new(),
    };
    let shards = outputs.len();
    let mut stats = Vec::with_capacity(shards);
    let mut replayed = 0usize;
    let (mut cache_hits, mut cache_misses) = (0u64, 0u64);
    let mut revision = CacheStats::default();
    let mut sim_elapsed = Duration::ZERO;
    let shed = n - global_idx.iter().map(Vec::len).sum::<usize>();
    for (s, mut out) in outputs.into_iter().enumerate() {
        debug_assert!(out.breaker_events.is_empty());
        stats.push(ShardStats {
            shard: s,
            items: out.items.len(),
            replayed: out.replayed,
            revision_cache: out.revision_cache,
            sim_elapsed: out.sim_elapsed,
        });
        replayed += out.replayed;
        cache_hits += out.cache_hits;
        cache_misses += out.cache_misses;
        revision.absorb(out.revision_cache);
        sim_elapsed = sim_elapsed.max(out.sim_elapsed);
        for (item, &g) in out.items.iter_mut().zip(&global_idx[s]) {
            item.index = g;
        }
        quarantine = quarantine.merge(out.quarantine(format!("shard-{s}")));
        for (report, delta) in reports.iter_mut().zip(out.reports) {
            merge_report(report, delta);
        }
        for (item, &g) in out.items.into_iter().zip(&global_idx[s]) {
            debug_assert!(slots[g].is_none(), "global index {g} assigned twice");
            slots[g] = Some(item);
        }
    }
    let items: Vec<StageItem> = slots
        .into_iter()
        .enumerate()
        .map(|(g, slot)| slot.unwrap_or_else(|| unreachable!("index {g} unassigned")))
        .collect();
    let output = ChainOutput {
        items,
        reports,
        breaker_events: Vec::new(),
        replayed,
        cache_hits,
        cache_misses,
        shed,
        sim_elapsed,
        revision_cache: revision,
    };
    ShardedOutput {
        output,
        quarantine,
        shards: stats,
    }
}

fn run_sharded_inner(
    config: &ExecutorConfig,
    stages: &[Box<dyn Stage + '_>],
    source: StreamSource,
    shards: usize,
    journal_dir: Option<&Path>,
) -> Result<ShardedOutput, ShardError> {
    validate_sharding(config, &source.feed)?;
    let shards = shards.max(1);
    let Partitioned {
        n,
        shed_items,
        partitions,
        global_idx,
    } = partition_source(source, shards);

    // One OS thread per shard, each an independent Executor run over its
    // subsequence. The stage chain is shared (`Stage: Sync`), exactly as
    // the streaming core shares it across lanes.
    let results: Vec<Result<ChainOutput, JournalError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = partitions
            .into_iter()
            .enumerate()
            .map(|(s, part)| {
                scope.spawn(move || -> Result<ChainOutput, JournalError> {
                    let executor = Executor::new(config.clone());
                    match journal_dir {
                        None => Ok(executor.run(stages, part)),
                        Some(dir) => {
                            let path = dir.join(format!("shard-{s}-of-{shards}.wal"));
                            let mut journal = if path.exists() {
                                Journal::open(&path)?
                            } else {
                                Journal::create(&path)?
                            };
                            executor.run_journaled(stages, part, &mut journal)
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });
    let mut outputs = Vec::with_capacity(shards);
    for result in results {
        outputs.push(result?);
    }
    Ok(merge_outputs(stages, shed_items, &global_idx, n, outputs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachePolicy;
    use crate::fault::FaultPlan;
    use crate::stage::{StageCtx, StageOutcome};
    use coachlm_data::Category;
    use rand::Rng;

    /// Content- and RNG-driven (never index-driven), so it satisfies the
    /// sharding contract.
    struct Rewrite;

    impl Stage for Rewrite {
        fn name(&self) -> &str {
            "rewrite"
        }
        fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) -> StageOutcome {
            let roll: u64 = ctx.rng.gen_range(0..1000);
            item.pair.response.push_str(&format!(" [{roll}]"));
            if item.pair.instruction.contains("drop") {
                item.discard("drop:marker");
            }
            StageOutcome::Ok
        }
    }

    /// Fatal whenever the instruction carries a poison marker.
    struct PoisonFatal;

    impl Stage for PoisonFatal {
        fn name(&self) -> &str {
            "poison"
        }
        fn process(&self, item: &mut StageItem, _ctx: &mut StageCtx<'_>) -> StageOutcome {
            if item.pair.instruction.contains("poison") {
                StageOutcome::fatal("organic: poison")
            } else {
                StageOutcome::Ok
            }
        }
    }

    fn stages() -> Vec<Box<dyn Stage>> {
        vec![Box::new(PoisonFatal), Box::new(Rewrite)]
    }

    fn mixed_pairs(n: usize) -> Vec<InstructionPair> {
        (0..n as u64)
            .map(|id| {
                let marker = match id % 11 {
                    0 => "poison",
                    1 => "drop",
                    _ => "plain",
                };
                // Duplicate content every 7 ids so caches and co-location
                // have something to chew on.
                InstructionPair::new(
                    id,
                    format!("{marker} question {}", id % 7),
                    format!("answer {}", id % 7),
                    Category((id % 3) as u16),
                )
            })
            .collect()
    }

    #[test]
    fn sharded_run_matches_unsharded_digest_at_any_shard_count() {
        let config = ExecutorConfig::new(41)
            .threads(2)
            .fault_plan(FaultPlan::new(13).transient(0.15).permanent(0.03));
        let base = Executor::new(config.clone()).run(&stages(), mixed_pairs(120));
        for shards in [1, 2, 4, 7] {
            let sharded = run_sharded(
                &config,
                &stages(),
                StreamSource::batch(mixed_pairs(120)),
                shards,
            )
            .expect("breaker-free config shards");
            assert_eq!(sharded.output.digest(), base.digest(), "shards = {shards}");
            assert_eq!(sharded.output.items.len(), 120);
            // The merged quarantine is in `Quarantine::merge` canonical
            // order (stage, then index); canonicalize the baseline the
            // same way before comparing.
            let canonical = base.quarantine("q").merge(Quarantine {
                name: String::new(),
                items: Vec::new(),
            });
            assert_eq!(
                sharded.quarantine.items, canonical.items,
                "shards = {shards}"
            );
            assert_eq!(sharded.shards.len(), shards);
            let routed: usize = sharded.shards.iter().map(|s| s.items).sum();
            assert_eq!(routed, 120);
        }
    }

    /// Fully periodic content: every field (marker, text, category) keys
    /// off `id % 21`, so 210 pairs collapse to 21 distinct contents and
    /// the exact cache should absorb ~90% of the traffic.
    fn dup_pairs(n: usize) -> Vec<InstructionPair> {
        (0..n as u64)
            .map(|id| {
                let k = id % 21;
                let marker = match k {
                    0 => "poison",
                    1 => "drop",
                    _ => "plain",
                };
                InstructionPair::new(
                    id,
                    format!("{marker} question {k}"),
                    format!("answer {k}"),
                    Category((k % 3) as u16),
                )
            })
            .collect()
    }

    #[test]
    fn duplicates_co_locate_so_shard_caches_keep_their_hit_rate() {
        let config = ExecutorConfig::new(9).revision_cache(CachePolicy::exact());
        let unsharded = Executor::new(config.clone()).run(&stages(), dup_pairs(210));
        let sharded = run_sharded(&config, &stages(), StreamSource::batch(dup_pairs(210)), 4)
            .expect("breaker-free config shards");
        assert_eq!(sharded.output.digest(), unsharded.digest());
        // Routing by content fingerprint keeps every duplicate cluster on
        // one shard: the summed hit tallies equal the unsharded run's.
        assert_eq!(
            sharded.output.revision_cache.exact_hits,
            unsharded.revision_cache.exact_hits
        );
        assert_eq!(
            sharded.output.revision_cache.entries,
            unsharded.revision_cache.entries
        );
        assert!(sharded.output.revision_cache.hit_rate() > 0.8);
    }

    #[test]
    fn sustained_feed_sheds_globally_before_partitioning() {
        let config = ExecutorConfig::new(3);
        let source = || StreamSource::sustained(mixed_pairs(300), 100.0, 40.0, 10);
        let base = Executor::new(config.clone()).run_stream(&stages(), source());
        assert!(base.shed > 0, "overload must shed");
        for shards in [2, 5] {
            let sharded = run_sharded(&config, &stages(), source(), shards)
                .expect("breaker-free config shards");
            assert_eq!(sharded.output.shed, base.shed, "shards = {shards}");
            assert_eq!(sharded.output.digest(), base.digest(), "shards = {shards}");
        }
    }

    #[test]
    fn breaker_configs_are_rejected_with_a_typed_error_not_an_assert() {
        let breakered = ExecutorConfig::new(5).breaker(crate::BreakerPolicy::default());
        // Validation alone, both feeds.
        assert_eq!(
            validate_sharding(&breakered, &Feed::Batch),
            Err(ShardConfigError::Breaker)
        );
        let sustained = Feed::Sustained {
            rate_per_sec: 100.0,
            drain_per_sec: 40.0,
            backlog_capacity: 10,
        };
        assert_eq!(
            validate_sharding(&breakered, &sustained),
            Err(ShardConfigError::BreakerWithSustainedFeed)
        );
        // The drivers surface the same typed error instead of asserting.
        let err = run_sharded(
            &breakered,
            &stages(),
            StreamSource::batch(mixed_pairs(8)),
            2,
        )
        .expect_err("breaker must be rejected");
        assert_eq!(err, ShardConfigError::Breaker);
        let dir =
            std::env::temp_dir().join(format!("coachlm-shard-validate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let err = run_sharded_journaled(
            &breakered,
            &stages(),
            StreamSource::sustained(mixed_pairs(8), 100.0, 40.0, 10),
            2,
            &dir,
        )
        .expect_err("breaker must be rejected before any journal is touched");
        assert!(matches!(
            err,
            ShardError::Config(ShardConfigError::BreakerWithSustainedFeed)
        ));
        // Validation must not have created any shard journal.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        std::fs::remove_dir_all(&dir).ok();
        // And the OK path still shards.
        assert!(validate_sharding(&ExecutorConfig::new(5), &Feed::Batch).is_ok());
        let ok = run_sharded(
            &ExecutorConfig::new(5),
            &stages(),
            StreamSource::batch(mixed_pairs(8)),
            2,
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn shard_of_is_stable_and_content_driven() {
        let a = InstructionPair::new(1, "same text", "same answer", Category(0));
        let b = InstructionPair::new(999, "same text", "same answer", Category(0));
        assert_eq!(shard_of(&a, 8), shard_of(&b, 8), "ids never affect routing");
        assert!(shard_of(&a, 1) == 0);
        let spread: std::collections::BTreeSet<usize> =
            mixed_pairs(200).iter().map(|p| shard_of(p, 4)).collect();
        assert!(spread.len() > 1, "hashing spreads across shards");
    }
}
