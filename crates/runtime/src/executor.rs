//! The deterministic executor: public entry points over the
//! pipeline-parallel streaming core in [`crate::stream`].

use crate::breaker::BreakerEvent;
use crate::breaker::BreakerPolicy;
use crate::cache::{CachePolicy, CacheStats};
use crate::fault::{FailureKind, FaultPlan, Quarantine, QuarantinedPair, RetryPolicy};
use crate::journal::{HeaderRecord, ItemTrace, Journal, JournalError, StageTrace, JOURNAL_VERSION};
use crate::report::StageReport;
use crate::stage::{Disposition, Stage, StageItem};
use crate::stream::{run_pipeline, Feed, Slot, StreamEnv, StreamSource};
use coachlm_data::{Dataset, InstructionPair};
use coachlm_text::fxhash::FxHasher;
use std::hash::Hasher;
use std::sync::Mutex;
use std::time::Duration;

/// How workers claim items.
///
/// Either way, each (stage, item) RNG is seeded independently of worker
/// assignment, so the schedule affects wall-clock time only — never the
/// output (the determinism proptests pin this across both schedules).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// One contiguous chunk per worker, sized `n / threads`. Simple, but a
    /// length-skewed batch serializes behind whichever worker drew the
    /// expensive region.
    Static,
    /// Workers repeatedly claim the next fixed-size chunk off an atomic
    /// counter until the batch is drained. Stragglers only ever hold one
    /// small chunk, so skewed batches stay balanced. The default.
    #[default]
    Dynamic,
}

/// How a chain run is parallelised, seeded, and hardened.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    // lint: allow(F1, reason = "thread count changes wall-clock time only; a 16-thread journal must resume on a 1-thread host")
    threads: usize,
    seed: u64,
    // lint: allow(F1, reason = "work distribution is result-invariant by the per-(stage, item) RNG contract; journals resume across schedules")
    schedule: Schedule,
    fault_plan: FaultPlan,
    retry: RetryPolicy,
    breaker: Option<BreakerPolicy>,
    // lint: allow(F1, reason = "backpressure bound shifts timing, never outcomes; resuming under a different capacity is supported")
    queue_capacity: usize,
    // lint: allow(F1, reason = "epoch length only batches journal flushes; replay is frame-exact regardless")
    epoch_len: usize,
    content_keyed: bool,
    revision_cache: Option<CachePolicy>,
}

impl ExecutorConfig {
    /// A config with the given chain seed and the default thread count:
    /// `std::thread::available_parallelism()` (1 if unavailable). The
    /// thread count never changes results, only wall-clock time, so the
    /// default is right unless an experiment pins threads for comparison.
    /// No faults are injected unless a [`FaultPlan`] is set, and no
    /// circuit breaking happens unless a [`BreakerPolicy`] is set.
    pub fn new(seed: u64) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        ExecutorConfig {
            threads,
            seed,
            schedule: Schedule::default(),
            fault_plan: FaultPlan::none(),
            retry: RetryPolicy::default(),
            breaker: None,
            queue_capacity: 64,
            epoch_len: 256,
            content_keyed: false,
            revision_cache: None,
        }
    }

    /// Overrides the worker count (floored at 1).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Overrides the scheduling policy (defaults to [`Schedule::Dynamic`]).
    pub fn schedule(mut self, s: Schedule) -> Self {
        self.schedule = s;
        self
    }

    /// Sets the fault plan to inject (defaults to [`FaultPlan::none`]).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Sets the retry policy (defaults to [`RetryPolicy::default`]).
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Enables per-stage circuit breaking under `policy` (defaults to
    /// none — every item always executes every stage).
    pub fn breaker(mut self, policy: BreakerPolicy) -> Self {
        self.breaker = Some(policy);
        self
    }

    /// Overrides the bounded inter-group queue capacity, in items
    /// (floored at 1; defaults to 64). A wall-clock/memory knob only:
    /// like the thread count, it never changes results.
    pub fn queue_capacity(mut self, items: usize) -> Self {
        self.queue_capacity = items.max(1);
        self
    }

    /// Overrides the logical-epoch length used when *no* breaker is
    /// configured (floored at 1; defaults to 256). Epochs drive journal
    /// frame commits and cache maintenance cadence; with a
    /// [`BreakerPolicy`] set, its `window` is the epoch length instead.
    pub fn epoch_len(mut self, items: usize) -> Self {
        self.epoch_len = items.max(1);
        self
    }

    /// Keys each item's per-stage RNG and fault rolls on a fingerprint of
    /// its *content* (instruction, response, category) instead of its pair
    /// id, so items with identical content behave identically regardless
    /// of id or arrival position. Off by default: with distinct ids the
    /// historical id-keyed behaviour is what golden digests pin. Forced on
    /// by [`revision_cache`](Self::revision_cache) — content keying is
    /// what makes replaying a duplicate's cached result indistinguishable
    /// from executing it. Part of the journal fingerprint.
    pub fn content_keyed(mut self, on: bool) -> Self {
        self.content_keyed = on;
        self
    }

    /// Enables the content-addressed revision cache (see [`crate::cache`]):
    /// duplicate items skip the stage chain and replay their
    /// representative's memoized result at the sink. Implies
    /// [`content_keyed`](Self::content_keyed). Incompatible with a
    /// [`BreakerPolicy`] — degraded passthrough keys on item index, not
    /// content, so duplicates may legitimately diverge under a breaker.
    pub fn revision_cache(mut self, policy: CachePolicy) -> Self {
        self.revision_cache = Some(policy);
        self
    }

    /// The configured worker count.
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// The configured bounded-queue capacity, in items.
    pub fn queue_capacity_items(&self) -> usize {
        self.queue_capacity
    }

    /// The configured breaker-less logical-epoch length, in items.
    pub fn epoch_length(&self) -> usize {
        self.epoch_len
    }

    /// The configured scheduling policy.
    pub fn scheduling(&self) -> Schedule {
        self.schedule
    }

    /// The configured fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// The configured retry policy.
    pub fn retries(&self) -> &RetryPolicy {
        &self.retry
    }

    /// The configured breaker policy, if circuit breaking is enabled.
    pub fn breaker_policy(&self) -> Option<&BreakerPolicy> {
        self.breaker.as_ref()
    }

    /// The chain seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `true` when per-item randomness keys on content fingerprints —
    /// set explicitly or implied by a configured revision cache.
    pub fn is_content_keyed(&self) -> bool {
        self.content_keyed || self.revision_cache.is_some()
    }

    /// The configured revision-cache policy, if caching is enabled.
    pub fn revision_cache_policy(&self) -> Option<&CachePolicy> {
        self.revision_cache.as_ref()
    }

    /// Folds every outcome-bearing knob into the run fingerprint: seed,
    /// retry policy, fault plan, breaker policy, content keying, and the
    /// revision-cache policy. `threads`, `schedule`, `queue_capacity`,
    /// and `epoch_len` are deliberately excluded (see the `allow(F1)`
    /// justifications on the fields) — they shift wall-clock behaviour
    /// only, and a journal written under one setting must resume under
    /// another. The static fingerprint-coverage check (`F1`) verifies
    /// this method against the field list.
    pub(crate) fn fingerprint_into(&self, h: &mut impl std::hash::Hasher) {
        h.write_u64(self.seed);
        self.retry.fingerprint_into(h);
        self.fault_plan.fingerprint_into(h);
        match &self.breaker {
            None => h.write_u8(0),
            Some(policy) => {
                h.write_u8(1);
                policy.fingerprint_into(h);
            }
        }
        // Content keying changes every RNG stream and fault roll, and the
        // cache policy decides which items replay instead of execute —
        // both are part of run outcomes. Hash the *effective* keying,
        // matching what the executor actually keys on.
        h.write_u8(u8::from(
            self.content_keyed || self.revision_cache.is_some(),
        ));
        match &self.revision_cache {
            None => h.write_u8(0),
            Some(policy) => {
                h.write_u8(1);
                policy.fingerprint_into(h);
            }
        }
    }
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig::new(0)
    }
}

/// Runs stage chains over datasets in parallel, deterministically.
pub struct Executor {
    config: ExecutorConfig,
}

/// Everything a chain run produced.
pub struct ChainOutput {
    /// All items, in input order, including discarded ones (their tags say
    /// why they were dropped).
    pub items: Vec<StageItem>,
    /// One report per stage, in chain order.
    pub reports: Vec<StageReport>,
    /// Breaker transitions, in (epoch, stage) order; empty unless the
    /// config set a [`BreakerPolicy`].
    pub breaker_events: Vec<BreakerEvent>,
    /// Items replayed from a journal instead of executed (always 0 for
    /// [`Executor::run`]).
    pub replayed: usize,
    /// Token-cache hits summed across workers (informational: depends on
    /// chunking, so it is *not* covered by the determinism contract).
    pub cache_hits: u64,
    /// Token-cache misses summed across workers (informational, as above).
    pub cache_misses: u64,
    /// Items shed by admission control before entering the chain (always
    /// 0 under a [`Feed::Batch`] source). Shed items still appear in
    /// [`items`](Self::items), discarded with a `shed:admission` tag.
    pub shed: usize,
    /// Modeled end-to-end elapsed time of the run under the virtual-time
    /// model: the completion time of the last item given the pipeline's
    /// lane topology, each stage's declared service time, and the
    /// deterministic backoff/latency channels. Deterministic for a fixed
    /// config, but *excluded* from [`digest`](Self::digest) — it varies
    /// with the configured thread count by design.
    pub sim_elapsed: Duration,
    /// Revision-cache tallies (all zeros unless the config enabled a
    /// [`CachePolicy`]). Deterministic for a fixed config — the pre-pass
    /// classifying items is sequential and schedule-independent — but
    /// excluded from [`digest`](Self::digest) like the other
    /// run-mechanics counters: a cached and an uncached run of the same
    /// content-keyed chain must digest identically.
    pub revision_cache: CacheStats,
}

impl ChainOutput {
    /// The retained items, in input order.
    pub fn retained(&self) -> impl Iterator<Item = &StageItem> {
        self.items.iter().filter(|i| i.retained)
    }

    /// Items a stage deliberately discarded, in input order.
    pub fn dropped(&self) -> impl Iterator<Item = &StageItem> {
        self.items
            .iter()
            .filter(|i| !i.retained && i.failure.is_none())
    }

    /// Items quarantined by a failing stage, in input order.
    pub fn quarantined(&self) -> impl Iterator<Item = &StageItem> {
        self.items.iter().filter(|i| i.failure.is_some())
    }

    /// Collects the retained pairs into a dataset.
    pub fn dataset(&self, name: impl Into<String>) -> Dataset {
        Dataset {
            name: name.into(),
            pairs: self.retained().map(|i| i.pair.clone()).collect(),
        }
    }

    /// Collects the quarantined items — each pair in the state it entered
    /// the failing stage, with its [`FailureRecord`] — for remediation.
    pub fn quarantine(&self, name: impl Into<String>) -> Quarantine {
        Quarantine {
            name: name.into(),
            items: self
                .items
                .iter()
                .filter_map(|i| {
                    i.failure.as_ref().map(|failure| QuarantinedPair {
                        index: i.index,
                        pair: i.pair.clone(),
                        failure: failure.clone(),
                    })
                })
                .collect(),
        }
    }

    /// The report for the named stage, if it ran.
    pub fn report(&self, stage: &str) -> Option<&StageReport> {
        self.reports.iter().find(|r| r.stage == stage)
    }

    /// Total attributed stage time across the whole chain: measured body
    /// time plus the simulated backoff/latency channels.
    pub fn total_time(&self) -> Duration {
        self.reports.iter().map(|r| r.total_time()).sum()
    }

    /// Retry attempts summed across all stages (deterministic).
    pub fn total_retries(&self) -> u64 {
        self.reports.iter().map(|r| r.retries).sum()
    }

    /// Quarantined items summed across all stages (deterministic; equals
    /// `self.quarantined().count()`).
    pub fn total_quarantined(&self) -> usize {
        self.reports.iter().map(|r| r.quarantined).sum()
    }

    /// Items that passed through at least one open breaker, summed across
    /// stages (deterministic).
    pub fn total_degraded(&self) -> usize {
        self.reports.iter().map(|r| r.degraded).sum()
    }

    /// A digest over every *deterministic* output field: item states,
    /// report counts/counters and simulated time channels, and breaker
    /// transitions. Measured `cpu_time`, the cache tallies, and the
    /// [`replayed`](Self::replayed) count are excluded — they legitimately
    /// vary run to run. Two runs of the same chain agree on this digest at
    /// any thread count, under either schedule, and across a crash/resume,
    /// which is exactly what the crash-matrix CI step asserts.
    pub fn digest(&self) -> u64 {
        let mut h = FxHasher::default();
        h.write_u64(self.items.len() as u64);
        for item in &self.items {
            h.write_u64(item_digest(item));
        }
        for r in &self.reports {
            h.write(r.stage.as_bytes());
            h.write_u8(0xFF);
            h.write_u64(r.items_in as u64);
            h.write_u64(r.items_out as u64);
            h.write_u64(r.quarantined as u64);
            h.write_u64(r.retries);
            h.write_u64(r.iterations);
            h.write_u64(r.faults_injected);
            h.write_u64(r.timeouts);
            h.write_u64(r.degraded as u64);
            h.write_u64(u64::try_from(r.backoff_time.as_nanos()).unwrap_or(u64::MAX));
            h.write_u64(u64::try_from(r.latency_time.as_nanos()).unwrap_or(u64::MAX));
            for (key, v) in &r.counters {
                h.write(key.as_bytes());
                h.write_u8(0xFF);
                h.write_u64(*v);
            }
        }
        h.write_u64(self.breaker_events.len() as u64);
        for e in &self.breaker_events {
            h.write(e.stage.as_bytes());
            h.write_u8(0xFF);
            h.write_u64(e.epoch as u64);
            h.write_u8(state_code(e.from));
            h.write_u8(state_code(e.to));
        }
        h.finish()
    }
}

fn state_code(s: crate::breaker::BreakerState) -> u8 {
    match s {
        crate::breaker::BreakerState::Closed => 0,
        crate::breaker::BreakerState::Open => 1,
        crate::breaker::BreakerState::HalfOpen => 2,
    }
}

/// Digest of one item's terminal deterministic state; recorded in journal
/// records and re-verified on replay so a journal that no longer matches
/// its run is rejected instead of silently diverging.
pub(crate) fn item_digest(item: &StageItem) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(item.index as u64);
    h.write_u64(item.pair.id);
    h.write_u8(match item.disposition() {
        Disposition::Retained => 0,
        Disposition::Dropped => 1,
        Disposition::Quarantined => 2,
    });
    h.write(item.pair.instruction.as_bytes());
    h.write_u8(0xFE);
    h.write(item.pair.response.as_bytes());
    h.write_u8(0xFE);
    h.write_u64(item.tags.len() as u64);
    for tag in &item.tags {
        h.write(tag.as_bytes());
        h.write_u8(0xFE);
    }
    match &item.failure {
        None => h.write_u8(0),
        Some(f) => {
            h.write_u8(1);
            h.write(f.stage.as_bytes());
            h.write_u8(0xFE);
            h.write_u32(f.attempts);
            h.write(f.error.as_bytes());
            h.write_u8(0xFE);
            h.write_u8(match f.kind {
                FailureKind::RetriesExhausted => 0,
                FailureKind::Fatal => 1,
            });
        }
    }
    h.finish()
}

/// Shared handle the sink appends committed-item records through. IO
/// errors are captured (first one wins) rather than panicking a worker;
/// the run finishes and the error surfaces from `run_journaled`.
pub(crate) struct JournalSession<'j> {
    inner: Mutex<SessionInner<'j>>,
}

struct SessionInner<'j> {
    journal: &'j mut Journal,
    error: Option<std::io::Error>,
}

impl<'j> JournalSession<'j> {
    fn new(journal: &'j mut Journal) -> Self {
        JournalSession {
            inner: Mutex::new(SessionInner {
                journal,
                error: None,
            }),
        }
    }

    /// Appends one committed item. After the first IO error the session
    /// goes quiet: the run still completes, the journal just stops growing.
    pub(crate) fn append(&self, trace: &ItemTrace) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if inner.error.is_some() {
            return;
        }
        if let Err(e) = inner.journal.append(trace) {
            inner.error = Some(e);
        }
    }

    /// Flushes and fsyncs everything appended so far — the epoch-frame
    /// commit the sink issues at logical-epoch boundaries. IO errors are
    /// captured like append errors.
    pub(crate) fn sync(&self) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if inner.error.is_some() {
            return;
        }
        if let Err(e) = inner.journal.sync() {
            inner.error = Some(e);
        }
    }

    fn finish(self) -> (&'j mut Journal, Option<std::io::Error>) {
        let inner = self
            .inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        (inner.journal, inner.error)
    }
}

impl Executor {
    /// An executor with the given config.
    pub fn new(config: ExecutorConfig) -> Self {
        Executor { config }
    }

    /// This executor's config.
    pub fn config(&self) -> &ExecutorConfig {
        &self.config
    }

    /// Runs `stages` over `pairs` — a thin wrapper feeding a bounded
    /// batch source into [`run_stream`](Self::run_stream).
    ///
    /// Items are collected in input order regardless of the schedule or
    /// thread count. Stage failures never panic the run: transient
    /// failures retry under the config's [`RetryPolicy`], and items that
    /// exhaust retries or fail permanently land in the quarantine channel
    /// with a [`crate::fault::FailureRecord`]. With the default inert
    /// [`FaultPlan`], no breaker, and stages that only return
    /// `Ok`/`Drop`, behaviour is identical to the pre-fault executor.
    pub fn run(&self, stages: &[Box<dyn Stage + '_>], pairs: Vec<InstructionPair>) -> ChainOutput {
        self.run_stream(stages, StreamSource::batch(pairs))
    }

    /// Runs `stages` over a streaming source.
    ///
    /// Items flow through the stage chain pipeline-parallel: the chain is
    /// partitioned into contiguous stage groups, each group gets one or
    /// more worker lanes (lanes sum to the configured thread count), and
    /// chunks of items move from group to group over bounded, sequenced
    /// queues with backpressure — stage *k+1* processes item *i* while
    /// stage *k* processes item *i+1*, with no batch barriers. Breaker
    /// transitions, journal frames, and report merging key off
    /// deterministic logical epochs (fixed index windows), so the output
    /// is digest-identical at any thread count, queue capacity, or
    /// schedule — see [`crate::stream`] for the full model.
    ///
    /// A [`Feed::Sustained`] source models continuous arrivals with
    /// admission control: arrivals that find the admission backlog full
    /// are shed up front (counted in [`ChainOutput::shed`], tagged
    /// `shed:admission`). Shedding depends only on the feed parameters,
    /// never on threads or queues.
    pub fn run_stream(&self, stages: &[Box<dyn Stage + '_>], source: StreamSource) -> ChainOutput {
        let StreamSource { pairs, feed } = source;
        let slots: Vec<Slot> = pairs
            .into_iter()
            .enumerate()
            .map(|(i, p)| Slot::live(StageItem::new(i, p), false))
            .collect();
        self.stream_core(stages, feed, slots, 0, None)
    }

    /// Runs `stages` over a dataset's pairs (cloned; the input is kept).
    pub fn run_dataset(&self, stages: &[Box<dyn Stage + '_>], dataset: &Dataset) -> ChainOutput {
        self.run(stages, dataset.pairs.clone())
    }

    /// Runs `stages` over `pairs`, journaling every committed item to
    /// `journal` so a killed process can [`resume_from`](Self::resume_from)
    /// where it left off.
    ///
    /// On a fresh journal this writes the header (format version, input
    /// length, and a fingerprint of everything that determines outcomes)
    /// and then behaves exactly like [`run`](Self::run), appending one
    /// checksummed record per finished item as workers commit them. On a
    /// journal recovered by [`Journal::open`], the committed records are
    /// *replayed* — their items are rebuilt and digest-checked, their
    /// report and breaker contributions re-applied — and only the
    /// remaining frontier executes. Replay composes with fresh execution
    /// bit-for-bit: items, deterministic report fields, quarantine, and
    /// breaker evolution are identical to an uninterrupted run at any
    /// thread count and under either schedule, with any [`FaultPlan`].
    ///
    /// Fails with [`JournalError::Incompatible`] when the journal belongs
    /// to a different run (seed, stages, policies, or input changed), and
    /// with [`JournalError::Io`] when journal writes fail (the run itself
    /// still completes before the error is surfaced).
    pub fn run_journaled(
        &self,
        stages: &[Box<dyn Stage + '_>],
        pairs: Vec<InstructionPair>,
        journal: &mut Journal,
    ) -> Result<ChainOutput, JournalError> {
        self.run_stream_journaled(stages, StreamSource::batch(pairs), journal)
    }

    /// Journaled variant of [`run_stream`](Self::run_stream): the
    /// streaming counterpart of [`run_journaled`](Self::run_journaled),
    /// with the source's [`Feed`] folded into the run fingerprint (a
    /// journal written under one arrival model must not resume under
    /// another — shed decisions are part of run outcomes).
    pub fn run_stream_journaled(
        &self,
        stages: &[Box<dyn Stage + '_>],
        source: StreamSource,
        journal: &mut Journal,
    ) -> Result<ChainOutput, JournalError> {
        let StreamSource { pairs, feed } = source;
        let fingerprint = self.fingerprint(stages, &pairs, &feed);
        let input_len = pairs.len() as u64;
        match journal.header() {
            None => journal.write_header(HeaderRecord {
                version: JOURNAL_VERSION,
                input_len,
                fingerprint,
            })?,
            Some(h) => {
                if h.version != JOURNAL_VERSION {
                    return Err(JournalError::Incompatible(format!(
                        "journal format v{} but this build writes v{JOURNAL_VERSION}",
                        h.version
                    )));
                }
                if h.input_len != input_len {
                    return Err(JournalError::Incompatible(format!(
                        "journal covers a {}-item input, this run has {input_len}",
                        h.input_len
                    )));
                }
                if h.fingerprint != fingerprint {
                    return Err(JournalError::Incompatible(
                        "run fingerprint mismatch: seed, stages, policies, or input differ \
                         from the run that wrote this journal"
                            .to_string(),
                    ));
                }
            }
        }

        let mut committed = journal.take_committed();
        let mut replayed = 0usize;
        let mut slots = Vec::with_capacity(pairs.len());
        for (i, pair) in pairs.into_iter().enumerate() {
            match committed.remove(&(i as u64)) {
                Some(trace) => {
                    if trace.pair_id != pair.id {
                        return Err(JournalError::Incompatible(format!(
                            "item {i}: journal records pair id {}, input has {}",
                            trace.pair_id, pair.id
                        )));
                    }
                    let (item, stage_traces) = apply_trace(i, pair, trace)?;
                    for e in &stage_traces {
                        if (e.stage as usize) >= stages.len() {
                            return Err(JournalError::Incompatible(format!(
                                "item {i}: journal references stage {} but the chain has {}",
                                e.stage,
                                stages.len()
                            )));
                        }
                    }
                    replayed += 1;
                    slots.push(Slot::replayed(item, stage_traces));
                }
                None => slots.push(Slot::live(StageItem::new(i, pair), true)),
            }
        }
        if let Some((&index, _)) = committed.iter().next() {
            return Err(JournalError::Incompatible(format!(
                "journal records item {index}, beyond the {input_len}-item input"
            )));
        }

        let session = JournalSession::new(journal);
        let out = self.stream_core(stages, feed, slots, replayed, Some(&session));
        let (journal, io_error) = session.finish();
        journal.sync()?;
        if let Some(e) = io_error {
            return Err(e.into());
        }
        Ok(out)
    }

    /// Rebuilds a full [`ChainOutput`] purely from collected item traces,
    /// executing nothing: every input index must carry either a committed
    /// trace (replayed through the normal journal-replay machinery, digest
    /// verified) or a supervisor-imposed failure in `imposed` (the item is
    /// quarantined with that record and zero per-stage deltas — it never
    /// committed any stage anywhere). By the crash-resume invariant, a
    /// trace set covering the whole input reproduces the originating run's
    /// digest exactly; the supervised multi-process driver
    /// ([`crate::supervise`]) uses this to reconstruct each worker shard's
    /// output on the parent side of the process boundary.
    pub(crate) fn replay_collected(
        &self,
        stages: &[Box<dyn Stage + '_>],
        pairs: Vec<InstructionPair>,
        mut traces: std::collections::BTreeMap<u64, ItemTrace>,
        imposed: &std::collections::BTreeMap<u64, crate::fault::FailureRecord>,
    ) -> Result<ChainOutput, JournalError> {
        let mut replayed = 0usize;
        let mut slots = Vec::with_capacity(pairs.len());
        for (i, pair) in pairs.into_iter().enumerate() {
            match traces.remove(&(i as u64)) {
                Some(trace) => {
                    if trace.pair_id != pair.id {
                        return Err(JournalError::Incompatible(format!(
                            "item {i}: trace records pair id {}, input has {}",
                            trace.pair_id, pair.id
                        )));
                    }
                    let (item, stage_traces) = apply_trace(i, pair, trace)?;
                    for e in &stage_traces {
                        if (e.stage as usize) >= stages.len() {
                            return Err(JournalError::Incompatible(format!(
                                "item {i}: trace references stage {} but the chain has {}",
                                e.stage,
                                stages.len()
                            )));
                        }
                    }
                    replayed += 1;
                    slots.push(Slot::replayed(item, stage_traces));
                }
                None => match imposed.get(&(i as u64)) {
                    Some(failure) => {
                        let mut item = StageItem::new(i, pair);
                        item.retained = false;
                        item.failure = Some(failure.clone());
                        slots.push(Slot::replayed(item, Vec::new()));
                    }
                    None => {
                        return Err(JournalError::Incompatible(format!(
                            "item {i}: no trace collected and no imposed failure — \
                             replay-only reconstruction cannot execute it"
                        )));
                    }
                },
            }
        }
        if let Some((&index, _)) = traces.iter().next() {
            return Err(JournalError::Incompatible(format!(
                "trace set records item {index}, beyond the input"
            )));
        }
        Ok(self.stream_core(stages, Feed::Batch, slots, replayed, None))
    }

    /// Resumes a run from a recovered journal: replays its committed
    /// records and executes only the remaining frontier. An alias for
    /// [`run_journaled`](Self::run_journaled) — the same call both starts
    /// and resumes a journaled run, so a crash-restart loop needs no
    /// "first time?" branch.
    pub fn resume_from(
        &self,
        stages: &[Box<dyn Stage + '_>],
        pairs: Vec<InstructionPair>,
        journal: &mut Journal,
    ) -> Result<ChainOutput, JournalError> {
        self.run_journaled(stages, pairs, journal)
    }

    /// Hash of everything that determines run outcomes: the config's
    /// outcome-bearing knobs (see [`ExecutorConfig::fingerprint_into`]),
    /// stage names, deadlines, and iteration budgets, the feed (arrival
    /// model), and the full input content. Thread count, queue capacity,
    /// and schedule are deliberately excluded — they never affect
    /// results, and a journal written by a 16-thread dynamic run must
    /// resume on a 1-thread static one.
    fn fingerprint(
        &self,
        stages: &[Box<dyn Stage + '_>],
        pairs: &[InstructionPair],
        feed: &Feed,
    ) -> u64 {
        let mut h = FxHasher::default();
        self.config.fingerprint_into(&mut h);
        h.write_u64(stages.len() as u64);
        for stage in stages {
            h.write(stage.name().as_bytes());
            h.write_u8(0xFF);
            match stage.deadline() {
                None => h.write_u8(0),
                Some(budget) => {
                    h.write_u8(1);
                    h.write_u128(budget.as_nanos());
                }
            }
            // The iteration budget bounds how many committed passes a
            // looping stage may take, which changes outcomes — a journal
            // written under one budget must not resume under another.
            h.write_u32(stage.iteration_budget().max(1));
        }
        feed.fingerprint_into(&mut h);
        h.write_u64(pairs.len() as u64);
        for p in pairs {
            h.write_u64(p.id);
            h.write(p.instruction.as_bytes());
            h.write_u8(0xFE);
            h.write(p.response.as_bytes());
            h.write_u8(0xFE);
            h.write_u16(p.category.0);
        }
        h.finish()
    }

    /// The shared core: builds the per-stage tables (salts, deadlines,
    /// modeled service times), derives the logical-epoch window (the
    /// breaker's window when one is configured, the config's `epoch_len`
    /// otherwise), and hands the slot sequence — live and replayed alike,
    /// in index order — to the streaming engine.
    fn stream_core(
        &self,
        stages: &[Box<dyn Stage + '_>],
        feed: Feed,
        slots: Vec<Slot>,
        replayed: usize,
        session: Option<&JournalSession<'_>>,
    ) -> ChainOutput {
        let salts: Vec<u64> = stages
            .iter()
            .enumerate()
            .map(|(k, s)| stage_salt(s.name(), k))
            .collect();
        let deadlines: Vec<Option<Duration>> = stages.iter().map(|s| s.deadline()).collect();
        let service: Vec<u64> = stages
            .iter()
            .map(|s| u64::try_from(s.service_time().as_nanos()).unwrap_or(u64::MAX))
            .collect();
        let budgets: Vec<u32> = stages.iter().map(|s| s.iteration_budget().max(1)).collect();
        let window = self
            .config
            .breaker
            .as_ref()
            .map_or(self.config.epoch_len, |p| p.window)
            .max(1);
        assert!(
            self.config.revision_cache.is_none() || self.config.breaker.is_none(),
            "a revision cache cannot be combined with a circuit breaker: degraded \
             passthrough keys on item index, not content, so duplicate items may \
             legitimately diverge and hit replay would break digest identity"
        );
        let env = StreamEnv {
            stages,
            salts: &salts,
            deadlines: &deadlines,
            service: &service,
            budgets: &budgets,
            seed: self.config.seed,
            plan: &self.config.fault_plan,
            retry: &self.config.retry,
            breaker: self.config.breaker.as_ref(),
            window,
            session,
            content_keyed: self.config.is_content_keyed(),
            cache: self.config.revision_cache.as_ref(),
        };
        let run = run_pipeline(
            &env,
            self.config.threads,
            self.config.schedule,
            self.config.queue_capacity,
            &feed,
            slots,
        );
        ChainOutput {
            items: run.items,
            reports: run.reports,
            breaker_events: run.breaker_events,
            replayed,
            cache_hits: run.cache_hits,
            cache_misses: run.cache_misses,
            shed: run.shed,
            sim_elapsed: run.sim_elapsed,
            revision_cache: run.revision,
        }
    }
}

/// Rebuilds an item's terminal state from its journal record, verifying
/// the content digest so a stale or hand-edited record cannot smuggle in a
/// divergent item.
fn apply_trace(
    index: usize,
    pair: InstructionPair,
    trace: ItemTrace,
) -> Result<(StageItem, Vec<StageTrace>), JournalError> {
    let mut item = StageItem::new(index, pair);
    if let Some(instruction) = trace.instruction {
        item.pair.instruction = instruction;
    }
    if let Some(response) = trace.response {
        item.pair.response = response;
    }
    item.tags = trace.tags;
    match trace.disposition {
        0 => {}
        1 => item.retained = false,
        2 => {
            let Some(failure) = trace.failure else {
                return Err(JournalError::Incompatible(format!(
                    "item {index}: quarantined record carries no failure"
                )));
            };
            item.retained = false;
            item.failure = Some(failure);
        }
        d => {
            return Err(JournalError::Incompatible(format!(
                "item {index}: unknown disposition {d}"
            )));
        }
    }
    if item_digest(&item) != trace.digest {
        return Err(JournalError::Incompatible(format!(
            "item {index}: replayed state does not match its recorded digest"
        )));
    }
    Ok((item, trace.stages))
}

/// Re-keys a collected trace onto a new input index: verifies the trace
/// against `pair` under the index it was recorded at, then recomputes the
/// content digest (which covers the index) for `new_index`. The supervised
/// driver's failover and bisection runs execute items at subset-local
/// indices; their traces must be translated back to shard-local ones
/// before [`Executor::replay_collected`] will accept them. Everything
/// position-dependent about an item lives in its index alone — stage
/// outcomes key on pair id and content — so the translation is exact.
pub(crate) fn rekey_trace(
    pair: InstructionPair,
    trace: ItemTrace,
    new_index: u64,
) -> Result<ItemTrace, JournalError> {
    if trace.pair_id != pair.id {
        return Err(JournalError::Incompatible(format!(
            "re-keyed trace records pair id {}, input has {}",
            trace.pair_id, pair.id
        )));
    }
    let old_index = trace.index as usize;
    let shadow = trace.clone();
    let (mut item, stages) = apply_trace(old_index, pair, shadow)?;
    item.index = new_index as usize;
    Ok(ItemTrace {
        index: new_index,
        digest: item_digest(&item),
        stages,
        ..trace
    })
}

/// Mixes a stage's name and chain position into an RNG salt, so distinct
/// stages (even two instances of the same type) draw distinct streams.
fn stage_salt(name: &str, position: usize) -> u64 {
    let mut h = FxHasher::default();
    h.write(name.as_bytes());
    h.finish()
        .wrapping_add((position as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Seed for one (stage, item), given the hoisted per-stage base
/// `chain_seed ^ stage_salt`: independent of worker assignment.
pub(crate) fn item_seed(seed_base: u64, id: u64) -> u64 {
    seed_base ^ id.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// The chunk width the dynamic scheduler hands out, adapted to both the
/// lane count and the bounded-queue capacity.
///
/// Small enough that a straggler only ever holds a sliver of the batch
/// (at least `CHUNKS_PER_LANE` chunks per lane), large enough to amortise
/// the queue handoff and keep token-cache locality — and, new in this
/// revision, sized *up* when the queues are roomy: each inter-group queue
/// must hold at least two chunks for pipelining to overlap at all, so the
/// ceiling tracks `queue_capacity / (2 × lanes)` instead of a fixed 64.
/// On a single core the handoff cost (lock + condvar wake per chunk)
/// dominates the wall-clock overhead of the streaming core, so bigger
/// chunks under bigger queues directly shave the PR 6 single-core
/// medians. Purely a wall-clock knob: like the queue capacity itself,
/// the chunk size never changes results.
///
/// Public so benches can record the width a configuration actually ran
/// with next to its timings.
pub fn adaptive_chunk_size(n: usize, lanes: usize, queue_capacity: usize) -> usize {
    const CHUNKS_PER_LANE: usize = 8;
    let lanes = lanes.max(1);
    // Keep >= 2 chunks per bounded queue window so handoffs can overlap;
    // never drop the ceiling below the old fixed cap's neighbourhood, and
    // never balloon past 256 items per claim.
    let queue_bound = (queue_capacity.max(1) / (2 * lanes)).max(1);
    let upper = queue_bound.clamp(16, 256);
    n.div_ceil(lanes * CHUNKS_PER_LANE).clamp(1, upper)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::BreakerState;
    use crate::stage::{StageCtx, StageOutcome};
    use coachlm_data::Category;
    use rand::Rng;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn pairs(n: usize) -> Vec<InstructionPair> {
        (0..n as u64)
            .map(|id| {
                InstructionPair::new(
                    id,
                    format!("Question {id}?"),
                    format!("Answer {id}."),
                    Category(0),
                )
            })
            .collect()
    }

    static UNIQUE: AtomicU64 = AtomicU64::new(0);

    fn temp_journal(tag: &str) -> PathBuf {
        let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "coachlm-executor-unit-{}-{tag}-{n}.wal",
            std::process::id()
        ))
    }

    /// Appends a seeded random suffix and counts even ids.
    struct Scribble;

    impl Stage for Scribble {
        fn name(&self) -> &str {
            "scribble"
        }
        fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) -> StageOutcome {
            let roll: u64 = ctx.rng.gen_range(0..1000);
            item.pair.response.push_str(&format!(" [{roll}]"));
            if item.pair.id.is_multiple_of(2) {
                ctx.bump("even");
            }
            ctx.cache.word_count(&item.pair.response);
            StageOutcome::Ok
        }
    }

    /// Discards ids divisible by 5.
    struct DropFifths;

    impl Stage for DropFifths {
        fn name(&self) -> &str {
            "drop-fifths"
        }
        fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) -> StageOutcome {
            if item.pair.id.is_multiple_of(5) {
                item.discard("fifth");
                ctx.bump("dropped");
            }
            StageOutcome::Ok
        }
    }

    /// Fails organically: ids divisible by `fatal_every` are fatal, ids
    /// divisible by `retry_every` return a transient error every attempt
    /// (a deterministic stage retries into the same failure).
    struct Flaky {
        retry_every: u64,
        fatal_every: u64,
    }

    impl Stage for Flaky {
        fn name(&self) -> &str {
            "flaky"
        }
        fn process(&self, item: &mut StageItem, _ctx: &mut StageCtx<'_>) -> StageOutcome {
            if item.pair.id.is_multiple_of(self.fatal_every) {
                StageOutcome::fatal("organic: unparseable")
            } else if item.pair.id.is_multiple_of(self.retry_every) {
                StageOutcome::retryable("organic: flaky")
            } else {
                StageOutcome::Ok
            }
        }
    }

    /// Wraps any stage with a simulated-time deadline budget.
    struct Budgeted<S>(S, Duration);

    impl<S: Stage> Stage for Budgeted<S> {
        fn name(&self) -> &str {
            self.0.name()
        }
        fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) -> StageOutcome {
            self.0.process(item, ctx)
        }
        fn deadline(&self) -> Option<Duration> {
            Some(self.1)
        }
    }

    /// A bounded revise-until-pass loop: appends one seeded token per
    /// committed pass and asks for another pass until the response
    /// carries `(id % 5) + 1` of them.
    struct Polish {
        budget: u32,
    }

    impl Stage for Polish {
        fn name(&self) -> &str {
            "polish"
        }
        fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) -> StageOutcome {
            let roll: u64 = ctx.rng.gen_range(0..1000);
            item.pair.response.push_str(&format!(" <{roll}>"));
            ctx.bump("passes");
            let want = (item.pair.id % 5) as usize + 1;
            if item.pair.response.matches('<').count() < want {
                StageOutcome::Again
            } else {
                StageOutcome::Ok
            }
        }
        fn iteration_budget(&self) -> u32 {
            self.budget
        }
    }

    fn chain() -> Vec<Box<dyn Stage>> {
        vec![Box::new(Scribble), Box::new(DropFifths)]
    }

    #[test]
    fn looping_stage_is_bounded_and_counts_iterations() {
        let stages: Vec<Box<dyn Stage>> = vec![Box::new(Polish { budget: 3 })];
        let out = Executor::new(ExecutorConfig::new(9).threads(4)).run(&stages, pairs(40));
        let report = out.report("polish").unwrap();
        let mut expected = 0u64;
        for item in &out.items {
            let want = (item.pair.id % 5) as usize + 1;
            let took = want.min(3);
            assert_eq!(
                item.pair.response.matches('<').count(),
                took,
                "id {}",
                item.pair.id
            );
            expected += took as u64;
        }
        assert_eq!(report.iterations, expected);
        assert_eq!(report.counter("passes"), expected);
        // Multi-pass work is visible, not silently single-pass.
        assert!(report.iterations > report.items_in as u64);
    }

    #[test]
    fn plain_stages_report_one_iteration_per_item() {
        let out = Executor::new(ExecutorConfig::new(3).threads(2)).run(&chain(), pairs(30));
        let r = out.report("scribble").unwrap();
        assert_eq!(r.iterations, r.items_in as u64);
    }

    #[test]
    fn looping_digest_is_thread_count_invariant_with_faults() {
        let config = |threads| {
            ExecutorConfig::new(77)
                .threads(threads)
                .fault_plan(
                    FaultPlan::new(5)
                        .transient(0.2)
                        .latency(0.3, Duration::from_secs(8)),
                )
                .retry_policy(RetryPolicy::new(3, Duration::from_millis(10)))
        };
        let stages: Vec<Box<dyn Stage>> = vec![Box::new(Budgeted(
            Polish { budget: 4 },
            Duration::from_secs(5),
        ))];
        let base = Executor::new(config(1)).run(&stages, pairs(60));
        for threads in [2, 8] {
            let out = Executor::new(config(threads)).run(&stages, pairs(60));
            assert_eq!(out.digest(), base.digest());
        }
    }

    #[test]
    fn iteration_budget_is_part_of_the_journal_fingerprint() {
        let path = temp_journal("iter-budget");
        let mut journal = Journal::create(&path).unwrap();
        let a: Vec<Box<dyn Stage>> = vec![Box::new(Polish { budget: 3 })];
        Executor::new(ExecutorConfig::new(1))
            .run_journaled(&a, pairs(10), &mut journal)
            .unwrap();
        drop(journal);
        let mut journal = Journal::open(&path).unwrap();
        let b: Vec<Box<dyn Stage>> = vec![Box::new(Polish { budget: 5 })];
        let err = Executor::new(ExecutorConfig::new(1)).run_journaled(&b, pairs(10), &mut journal);
        assert!(
            err.is_err(),
            "a resume under a different iteration budget must be refused"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn output_is_thread_count_invariant() {
        let base = Executor::new(ExecutorConfig::new(11).threads(1)).run(&chain(), pairs(101));
        for threads in [2, 3, 8] {
            let out =
                Executor::new(ExecutorConfig::new(11).threads(threads)).run(&chain(), pairs(101));
            assert_eq!(out.items.len(), base.items.len());
            for (a, b) in out.items.iter().zip(&base.items) {
                assert_eq!(a.pair, b.pair);
                assert_eq!(a.retained, b.retained);
                assert_eq!(a.tags, b.tags);
            }
            for (ra, rb) in out.reports.iter().zip(&base.reports) {
                assert_eq!(ra.stage, rb.stage);
                assert_eq!(ra.items_in, rb.items_in);
                assert_eq!(ra.items_out, rb.items_out);
                assert_eq!(ra.counters, rb.counters);
            }
            assert_eq!(out.digest(), base.digest());
        }
    }

    #[test]
    fn dropped_items_skip_later_stages_and_counts_add_up() {
        let stages: Vec<Box<dyn Stage>> = vec![Box::new(DropFifths), Box::new(Scribble)];
        let out = Executor::new(ExecutorConfig::new(5).threads(4)).run(&stages, pairs(50));
        let filter = out.report("drop-fifths").unwrap();
        assert_eq!(filter.items_in, 50);
        assert_eq!(filter.items_out, 40);
        assert_eq!(filter.items_dropped(), 10);
        assert_eq!(filter.counter("dropped"), 10);
        let scribble = out.report("scribble").unwrap();
        assert_eq!(scribble.items_in, 40);
        // Dropped items keep their original text.
        assert!(out
            .items
            .iter()
            .filter(|i| !i.retained)
            .all(|i| !i.response_changed() && i.has_tag("fifth")));
        assert_eq!(out.dataset("kept").len(), 40);
    }

    #[test]
    fn schedules_agree_item_for_item() {
        let base = Executor::new(ExecutorConfig::new(23).threads(1)).run(&chain(), pairs(157));
        for threads in [2, 5, 8] {
            for schedule in [Schedule::Static, Schedule::Dynamic] {
                let out =
                    Executor::new(ExecutorConfig::new(23).threads(threads).schedule(schedule))
                        .run(&chain(), pairs(157));
                for (a, b) in out.items.iter().zip(&base.items) {
                    assert_eq!(a.pair, b.pair, "{schedule:?} x{threads}");
                    assert_eq!(a.retained, b.retained);
                    assert_eq!(a.tags, b.tags);
                }
                for (ra, rb) in out.reports.iter().zip(&base.reports) {
                    assert_eq!(ra.counters, rb.counters, "{schedule:?} x{threads}");
                }
                assert_eq!(out.digest(), base.digest(), "{schedule:?} x{threads}");
            }
        }
    }

    #[test]
    fn adaptive_chunk_size_bounds() {
        assert_eq!(adaptive_chunk_size(0, 4, 64), 1);
        assert_eq!(adaptive_chunk_size(7, 16, 64), 1);
        // Load-balance target: ~8 chunks per lane when the queue allows.
        assert_eq!(adaptive_chunk_size(2_000, 8, 1024), 32);
        // Tight queues clamp the width so each queue still holds >= 2
        // chunks (but never below the 16-item amortisation floor).
        assert_eq!(adaptive_chunk_size(2_000, 8, 64), 16);
        assert_eq!(adaptive_chunk_size(1_000_000, 4, 64), 16);
        // Roomy queues let huge batches take bigger claims, up to 256.
        assert_eq!(adaptive_chunk_size(1_000_000, 4, 2048), 256);
        assert_eq!(adaptive_chunk_size(1_000_000, 4, 100_000), 256);
    }

    #[test]
    fn seed_changes_results_and_same_seed_repeats() {
        let a = Executor::new(ExecutorConfig::new(1).threads(2)).run(&chain(), pairs(40));
        let b = Executor::new(ExecutorConfig::new(1).threads(2)).run(&chain(), pairs(40));
        let c = Executor::new(ExecutorConfig::new(2).threads(2)).run(&chain(), pairs(40));
        let text = |o: &ChainOutput| {
            o.items
                .iter()
                .map(|i| i.pair.response.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(text(&a), text(&b));
        assert_eq!(a.digest(), b.digest());
        assert_ne!(text(&a), text(&c));
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn empty_input_yields_empty_reports() {
        let out = Executor::new(ExecutorConfig::default()).run(&chain(), Vec::new());
        assert!(out.items.is_empty());
        assert_eq!(out.reports.len(), 2);
        assert!(out.reports.iter().all(|r| r.items_in == 0));
        assert_eq!(out.total_time(), Duration::ZERO);
        assert_eq!(out.replayed, 0);
        assert!(out.breaker_events.is_empty());
    }

    #[test]
    fn organic_failures_quarantine_without_panicking() {
        let stages: Vec<Box<dyn Stage>> = vec![
            Box::new(Flaky {
                retry_every: 7,
                fatal_every: 5,
            }),
            Box::new(Scribble),
        ];
        let out = Executor::new(ExecutorConfig::new(1).threads(4)).run(&stages, pairs(70));
        // id 0 is divisible by both; fatal wins (checked first). 5s are
        // fatal, remaining 7s exhaust retries; everything else passes.
        for item in &out.items {
            let id = item.pair.id;
            if id.is_multiple_of(5) {
                let f = item.failure.as_ref().expect("fatal ids quarantine");
                assert_eq!(f.kind, FailureKind::Fatal);
                assert_eq!(f.attempts, 1);
                assert_eq!(f.error, "organic: unparseable");
            } else if id.is_multiple_of(7) {
                let f = item.failure.as_ref().expect("flaky ids exhaust retries");
                assert_eq!(f.kind, FailureKind::RetriesExhausted);
                assert_eq!(f.attempts, RetryPolicy::default().max_attempts);
            } else {
                assert!(item.retained, "id {id} should pass");
            }
        }
        let report = out.report("flaky").unwrap();
        assert_eq!(report.quarantined, out.quarantined().count());
        assert_eq!(report.quarantined, 14 + 8); // 14 fives, 8 non-five sevens
                                                // Every exhausted item burned max_attempts - 1 retries.
        assert_eq!(
            report.retries,
            8 * u64::from(RetryPolicy::default().max_attempts - 1)
        );
        assert!(report.backoff_time > Duration::ZERO);
        // Quarantined items never reached the second stage.
        assert_eq!(out.report("scribble").unwrap().items_in, 70 - 22);
        // The quarantine channel carries structured records with indices.
        let q = out.quarantine("t-quarantine");
        assert_eq!(q.len(), 22);
        assert!(q.items.iter().all(|i| i.failure.stage == "flaky"));
        assert!(q.items.iter().all(|i| i.pair.id == i.index as u64));
    }

    #[test]
    fn drop_outcome_tags_and_discards() {
        struct DropAll;
        impl Stage for DropAll {
            fn name(&self) -> &str {
                "drop-all"
            }
            fn process(&self, _item: &mut StageItem, _ctx: &mut StageCtx<'_>) -> StageOutcome {
                StageOutcome::Drop
            }
        }
        let stages: Vec<Box<dyn Stage>> = vec![Box::new(DropAll)];
        let out = Executor::new(ExecutorConfig::new(0).threads(2)).run(&stages, pairs(10));
        assert_eq!(out.dropped().count(), 10);
        assert_eq!(out.quarantined().count(), 0);
        assert!(out.items.iter().all(|i| i.has_tag("drop:drop-all")));
        assert_eq!(out.report("drop-all").unwrap().items_dropped(), 10);
    }

    #[test]
    fn injected_faults_partition_and_replicate_across_threads() {
        let plan = FaultPlan::new(99).transient(0.2).permanent(0.05);
        let run_with = |threads: usize, schedule: Schedule| {
            Executor::new(
                ExecutorConfig::new(3)
                    .threads(threads)
                    .schedule(schedule)
                    .fault_plan(plan.clone()),
            )
            .run(&chain(), pairs(200))
        };
        let base = run_with(1, Schedule::Static);
        let (r, d, q) = (
            base.retained().count(),
            base.dropped().count(),
            base.quarantined().count(),
        );
        assert_eq!(r + d + q, 200);
        assert!(q > 0, "5% permanent over 200 items should quarantine some");
        assert!(base.total_retries() > 0);
        for threads in [2, 8] {
            for schedule in [Schedule::Static, Schedule::Dynamic] {
                let out = run_with(threads, schedule);
                for (a, b) in out.items.iter().zip(&base.items) {
                    assert_eq!(a.pair, b.pair, "{schedule:?} x{threads}");
                    assert_eq!(a.disposition(), b.disposition());
                    assert_eq!(a.failure, b.failure);
                }
                for (ra, rb) in out.reports.iter().zip(&base.reports) {
                    assert_eq!(ra.retries, rb.retries);
                    assert_eq!(ra.quarantined, rb.quarantined);
                    assert_eq!(ra.faults_injected, rb.faults_injected);
                    assert_eq!(ra.backoff_time, rb.backoff_time);
                    assert_eq!(ra.latency_time, rb.latency_time);
                }
                assert_eq!(out.digest(), base.digest());
            }
        }
    }

    #[test]
    fn transient_survivors_match_the_unfaulted_run() {
        let clean = Executor::new(ExecutorConfig::new(7).threads(3)).run(&chain(), pairs(150));
        let faulted = Executor::new(
            ExecutorConfig::new(7)
                .threads(3)
                .fault_plan(FaultPlan::new(4).transient(0.25))
                .retry_policy(RetryPolicy::new(4, Duration::from_millis(5))),
        )
        .run(&chain(), pairs(150));
        // Stage RNG is per (stage, item), not per attempt: any item that
        // survives its transient faults produces exactly the text the
        // unfaulted run produced.
        let mut survivors = 0;
        for (f, c) in faulted.items.iter().zip(&clean.items) {
            if f.failure.is_none() {
                assert_eq!(f.pair, c.pair);
                assert_eq!(f.retained, c.retained);
                survivors += 1;
            }
        }
        assert!(survivors > 100, "survivors {survivors}");
    }

    #[test]
    fn latency_spikes_inflate_time_deterministically() {
        let spike = Duration::from_millis(3);
        let out = Executor::new(
            ExecutorConfig::new(1)
                .threads(2)
                .fault_plan(FaultPlan::new(8).latency(1.0, spike)),
        )
        .run(&chain(), pairs(20));
        // Every (stage, item) attempt rolled a spike; nothing failed.
        assert_eq!(out.quarantined().count(), 0);
        let scribble = out.report("scribble").unwrap();
        assert_eq!(scribble.faults_injected, 20);
        // The spike lands in the latency channel, exactly — never in
        // cpu_time (that's measured body time only) or backoff.
        assert_eq!(scribble.latency_time, spike * 20);
        assert_eq!(scribble.backoff_time, Duration::ZERO);
        assert_eq!(scribble.timeouts, 0);
    }

    #[test]
    fn retry_accounting_keeps_channels_disjoint() {
        // Every attempt faults transiently: the body never runs, so the
        // measured channel stays zero while backoff accumulates exactly.
        let stages: Vec<Box<dyn Stage>> = vec![Box::new(Scribble)];
        let retry = RetryPolicy::new(3, Duration::from_millis(10));
        let out = Executor::new(
            ExecutorConfig::new(2)
                .threads(2)
                .fault_plan(FaultPlan::new(5).transient(1.0))
                .retry_policy(retry),
        )
        .run(&stages, pairs(8));
        assert_eq!(out.quarantined().count(), 8);
        let r = out.report("scribble").unwrap();
        assert_eq!(r.cpu_time, Duration::ZERO);
        assert_eq!(r.latency_time, Duration::ZERO);
        // Each item: retries at backoff 10ms + 20ms; the final failed
        // attempt charges nothing (there is no retry after it).
        assert_eq!(r.backoff_time, Duration::from_millis(30) * 8);
        assert_eq!(r.retries, 16);
        assert_eq!(r.total_time(), r.backoff_time);
    }

    #[test]
    fn deadline_timeouts_feed_retry_and_quarantine() {
        let budget = Duration::from_millis(10);
        let spike = Duration::from_millis(50);
        let stages: Vec<Box<dyn Stage>> = vec![Box::new(Budgeted(Scribble, budget))];
        let out = Executor::new(
            ExecutorConfig::new(3)
                .threads(2)
                .fault_plan(FaultPlan::new(6).latency(1.0, spike)),
        )
        .run(&stages, pairs(12));
        let max = RetryPolicy::default().max_attempts;
        // Every attempt spikes past the budget: the body never runs, the
        // item times out until retries run dry.
        assert_eq!(out.quarantined().count(), 12);
        for item in &out.items {
            let f = item.failure.as_ref().unwrap();
            assert_eq!(f.kind, FailureKind::RetriesExhausted);
            assert_eq!(f.attempts, max);
            assert!(f.error.contains("timeout"), "{}", f.error);
            // The body never ran, so the text is untouched.
            assert!(!item.response_changed());
        }
        let r = out.report("scribble").unwrap();
        assert_eq!(r.timeouts, 12 * u64::from(max));
        assert_eq!(r.faults_injected, 12 * u64::from(max));
        // Each timed-out attempt charges the budget, not the full spike.
        assert_eq!(r.latency_time, budget * 12 * max);
        assert_eq!(r.cpu_time, Duration::ZERO);
    }

    #[test]
    fn spikes_below_the_budget_run_to_completion() {
        let spike = Duration::from_millis(3);
        let budgeted: Vec<Box<dyn Stage>> = vec![
            Box::new(Budgeted(Scribble, Duration::from_secs(1))),
            Box::new(DropFifths),
        ];
        let plan = FaultPlan::new(8).latency(1.0, spike);
        let with_budget = Executor::new(ExecutorConfig::new(1).threads(2).fault_plan(plan.clone()))
            .run(&budgeted, pairs(20));
        let without = Executor::new(ExecutorConfig::new(1).threads(2).fault_plan(plan))
            .run(&chain(), pairs(20));
        // A generous budget changes nothing: same outputs, same charges.
        assert_eq!(with_budget.digest(), without.digest());
        let r = with_budget.report("scribble").unwrap();
        assert_eq!(r.timeouts, 0);
        assert_eq!(r.latency_time, spike * 20);
    }

    #[test]
    fn journaled_run_matches_plain_run() {
        let path = temp_journal("fresh");
        let config = || {
            ExecutorConfig::new(17)
                .threads(4)
                .fault_plan(FaultPlan::new(29).transient(0.2).permanent(0.05))
        };
        let plain = Executor::new(config()).run(&chain(), pairs(80));
        let mut journal = Journal::create(&path).unwrap();
        let journaled = Executor::new(config())
            .run_journaled(&chain(), pairs(80), &mut journal)
            .unwrap();
        assert_eq!(journaled.replayed, 0);
        assert_eq!(journaled.digest(), plain.digest());
        assert_eq!(journal.committed(), 80);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_after_a_torn_tail_reproduces_the_uninterrupted_run() {
        let path = temp_journal("resume");
        let config = |threads: usize, schedule: Schedule| {
            ExecutorConfig::new(17)
                .threads(threads)
                .schedule(schedule)
                .fault_plan(FaultPlan::new(29).transient(0.2).permanent(0.05))
        };
        let golden = Executor::new(config(1, Schedule::Static)).run(&chain(), pairs(60));

        let mut journal = Journal::create(&path).unwrap();
        Executor::new(config(4, Schedule::Dynamic))
            .run_journaled(&chain(), pairs(60), &mut journal)
            .unwrap();
        let spans = journal.record_spans().to_vec();
        drop(journal);

        // Kill mid-run: cut inside record 31 (journal order is commit
        // order, not index order — replay handles any committed subset).
        let cut = spans[31].0 + (spans[31].1 - spans[31].0) / 2;
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..cut as usize]).unwrap();

        let mut recovered = Journal::open(&path).unwrap();
        let committed = recovered.committed();
        assert_eq!(committed, 30);
        let resumed = Executor::new(config(3, Schedule::Static))
            .resume_from(&chain(), pairs(60), &mut recovered)
            .unwrap();
        assert_eq!(resumed.replayed, committed);
        assert_eq!(resumed.digest(), golden.digest());
        // Item-level spot check: every field the digest covers.
        for (a, b) in resumed.items.iter().zip(&golden.items) {
            assert_eq!(a.pair, b.pair);
            assert_eq!(a.tags, b.tags);
            assert_eq!(a.failure, b.failure);
        }
        // After the resumed run the journal holds the full input again.
        assert_eq!(recovered.committed() + resumed.replayed, 60);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_under_a_different_run_is_rejected() {
        let path = temp_journal("mismatch");
        let mut journal = Journal::create(&path).unwrap();
        Executor::new(ExecutorConfig::new(1))
            .run_journaled(&chain(), pairs(10), &mut journal)
            .unwrap();
        drop(journal);

        let mut recovered = Journal::open(&path).unwrap();
        // Different seed → different fingerprint → refuse to resume.
        let err = Executor::new(ExecutorConfig::new(2))
            .run_journaled(&chain(), pairs(10), &mut recovered)
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, JournalError::Incompatible(_)), "{err}");

        let mut recovered = Journal::open(&path).unwrap();
        // Different input length is rejected before fingerprinting aligns.
        let err = Executor::new(ExecutorConfig::new(1))
            .run_journaled(&chain(), pairs(11), &mut recovered)
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, JournalError::Incompatible(_)), "{err}");
        std::fs::remove_file(&path).ok();
    }

    /// Fatal for every id below `until`, Ok past it — a stage that storms
    /// early and then recovers, for exercising the breaker cycle.
    struct FailBelow {
        until: u64,
    }

    impl Stage for FailBelow {
        fn name(&self) -> &str {
            "fail-below"
        }
        fn process(&self, item: &mut StageItem, _ctx: &mut StageCtx<'_>) -> StageOutcome {
            if item.pair.id < self.until {
                StageOutcome::fatal("organic: storm")
            } else {
                StageOutcome::Ok
            }
        }
    }

    #[test]
    fn breaker_trips_degrades_probes_and_recloses() {
        // ids == indices in pairs(): the storm covers exactly epoch 0.
        let policy = BreakerPolicy::new()
            .window(10)
            .trip_ratio(0.5)
            .min_failures(3)
            .cooldown_epochs(1)
            .probes(2);
        let stages: Vec<Box<dyn Stage>> = vec![Box::new(FailBelow { until: 10 })];
        let run = |threads: usize, schedule: Schedule| {
            Executor::new(
                ExecutorConfig::new(0)
                    .threads(threads)
                    .schedule(schedule)
                    .breaker(policy.clone()),
            )
            .run(&stages, pairs(40))
        };
        let out = run(1, Schedule::Static);
        // Epoch 0: 10 failures → trips. Epoch 1: all degraded, cooldown
        // expires → half-open. Epoch 2: probes 20, 21 succeed → recloses.
        // Epoch 3: fully closed again.
        let transitions: Vec<(usize, BreakerState, BreakerState)> = out
            .breaker_events
            .iter()
            .map(|e| (e.epoch, e.from, e.to))
            .collect();
        assert_eq!(
            transitions,
            vec![
                (0, BreakerState::Closed, BreakerState::Open),
                (1, BreakerState::Open, BreakerState::HalfOpen),
                (2, BreakerState::HalfOpen, BreakerState::Closed),
            ]
        );
        let r = out.report("fail-below").unwrap();
        assert_eq!(r.quarantined, 10);
        // Epoch 1 degrades all 10; epoch 2 degrades the 8 non-probes.
        assert_eq!(r.degraded, 18);
        assert_eq!(out.total_degraded(), 18);
        assert_eq!(r.items_out, 30);
        // Degraded items pass through unrevised, tagged.
        let degraded: Vec<_> = out
            .items
            .iter()
            .filter(|i| i.has_tag("degraded:fail-below"))
            .collect();
        assert_eq!(degraded.len(), 18);
        assert!(degraded.iter().all(|i| i.retained && !i.response_changed()));
        // The whole evolution replays at any thread count and schedule.
        for threads in [2, 8] {
            for schedule in [Schedule::Static, Schedule::Dynamic] {
                let other = run(threads, schedule);
                assert_eq!(other.digest(), out.digest(), "{schedule:?} x{threads}");
                assert_eq!(other.breaker_events, out.breaker_events);
            }
        }
    }

    #[test]
    fn breaker_that_keeps_failing_reopens_after_probes() {
        struct AlwaysFatal;
        impl Stage for AlwaysFatal {
            fn name(&self) -> &str {
                "always-fatal"
            }
            fn process(&self, _item: &mut StageItem, _ctx: &mut StageCtx<'_>) -> StageOutcome {
                StageOutcome::fatal("organic: dead")
            }
        }
        let policy = BreakerPolicy::new()
            .window(10)
            .trip_ratio(0.5)
            .min_failures(3)
            .cooldown_epochs(1)
            .probes(2);
        let stages: Vec<Box<dyn Stage>> = vec![Box::new(AlwaysFatal)];
        let out = Executor::new(ExecutorConfig::new(0).threads(4).breaker(policy))
            .run(&stages, pairs(40));
        // Trip, probe, re-trip: epochs 0 C→O, 1 O→HO, 2 HO→O, 3 O→HO.
        let transitions: Vec<(usize, BreakerState, BreakerState)> = out
            .breaker_events
            .iter()
            .map(|e| (e.epoch, e.from, e.to))
            .collect();
        assert_eq!(
            transitions,
            vec![
                (0, BreakerState::Closed, BreakerState::Open),
                (1, BreakerState::Open, BreakerState::HalfOpen),
                (2, BreakerState::HalfOpen, BreakerState::Open),
                (3, BreakerState::Open, BreakerState::HalfOpen),
            ]
        );
        let r = out.report("always-fatal").unwrap();
        // Executed: epoch 0 (10) + epoch 2 probes (2) = 12 quarantined.
        assert_eq!(r.quarantined, 12);
        assert_eq!(r.degraded, 40 - 12);
    }

    #[test]
    fn crash_resume_preserves_breaker_evolution_and_faults() {
        let path = temp_journal("chaos");
        let policy = BreakerPolicy::new()
            .window(16)
            .trip_ratio(0.3)
            .min_failures(4)
            .cooldown_epochs(1)
            .probes(4);
        let config = |threads: usize, schedule: Schedule| {
            ExecutorConfig::new(53)
                .threads(threads)
                .schedule(schedule)
                .fault_plan(
                    FaultPlan::new(11)
                        .transient(0.35)
                        .permanent(0.1)
                        .latency(0.2, Duration::from_millis(40)),
                )
                .breaker(policy.clone())
        };
        let stages = || -> Vec<Box<dyn Stage>> {
            vec![
                Box::new(Budgeted(Scribble, Duration::from_millis(10))),
                Box::new(DropFifths),
            ]
        };
        let golden = Executor::new(config(1, Schedule::Static)).run(&stages(), pairs(100));
        assert!(!golden.breaker_events.is_empty(), "storm should trip");
        assert!(golden.report("scribble").unwrap().timeouts > 0);

        let mut journal = Journal::create(&path).unwrap();
        Executor::new(config(4, Schedule::Dynamic))
            .run_journaled(&stages(), pairs(100), &mut journal)
            .unwrap();
        let spans = journal.record_spans().to_vec();
        drop(journal);
        let full = std::fs::read(&path).unwrap();

        // Kill at three depths, resume at a different thread count and
        // schedule each time: always bit-identical to the golden run.
        for (frac_num, threads, schedule) in [
            (1, 2, Schedule::Static),
            (2, 8, Schedule::Dynamic),
            (3, 1, Schedule::Static),
        ] {
            let cut = spans[spans.len() * frac_num / 4].0 + 3;
            std::fs::write(&path, &full[..cut as usize]).unwrap();
            let mut recovered = Journal::open(&path).unwrap();
            let resumed = Executor::new(config(threads, schedule))
                .resume_from(&stages(), pairs(100), &mut recovered)
                .unwrap();
            assert!(resumed.replayed > 0, "cut {frac_num}/4 should replay");
            assert_eq!(
                resumed.digest(),
                golden.digest(),
                "cut {frac_num}/4, {schedule:?} x{threads}"
            );
            assert_eq!(resumed.breaker_events, golden.breaker_events);
            let gq = golden.quarantine("q");
            let rq = resumed.quarantine("q");
            assert_eq!(gq.items, rq.items);
        }
        std::fs::remove_file(&path).ok();
    }
}
