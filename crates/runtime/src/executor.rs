//! The deterministic parallel batch executor.

use crate::fault::{
    FailureKind, FailureRecord, Fault, FaultPlan, Quarantine, QuarantinedPair, RetryPolicy,
};
use crate::report::StageReport;
use crate::simtime::Stopwatch;
use crate::stage::{Stage, StageCtx, StageItem, StageOutcome};
use coachlm_data::{Dataset, InstructionPair};
use coachlm_text::fxhash::FxHasher;
use coachlm_text::token::TokenCache;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::hash::Hasher;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How workers claim items.
///
/// Either way, each (stage, item) RNG is seeded independently of worker
/// assignment, so the schedule affects wall-clock time only — never the
/// output (the determinism proptests pin this across both schedules).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// One contiguous chunk per worker, sized `n / threads`. Simple, but a
    /// length-skewed batch serializes behind whichever worker drew the
    /// expensive region.
    Static,
    /// Workers repeatedly claim the next fixed-size chunk off an atomic
    /// counter until the batch is drained. Stragglers only ever hold one
    /// small chunk, so skewed batches stay balanced. The default.
    #[default]
    Dynamic,
}

/// How a chain run is parallelised, seeded, and hardened.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    threads: usize,
    seed: u64,
    schedule: Schedule,
    fault_plan: FaultPlan,
    retry: RetryPolicy,
}

impl ExecutorConfig {
    /// A config with the given chain seed and the default thread count:
    /// `std::thread::available_parallelism()` (1 if unavailable). The
    /// thread count never changes results, only wall-clock time, so the
    /// default is right unless an experiment pins threads for comparison.
    /// No faults are injected unless a [`FaultPlan`] is set.
    pub fn new(seed: u64) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        ExecutorConfig {
            threads,
            seed,
            schedule: Schedule::default(),
            fault_plan: FaultPlan::none(),
            retry: RetryPolicy::default(),
        }
    }

    /// Overrides the worker count (floored at 1).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Overrides the scheduling policy (defaults to [`Schedule::Dynamic`]).
    pub fn schedule(mut self, s: Schedule) -> Self {
        self.schedule = s;
        self
    }

    /// Sets the fault plan to inject (defaults to [`FaultPlan::none`]).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Sets the retry policy (defaults to [`RetryPolicy::default`]).
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// The configured worker count.
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// The configured scheduling policy.
    pub fn scheduling(&self) -> Schedule {
        self.schedule
    }

    /// The configured fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// The configured retry policy.
    pub fn retries(&self) -> &RetryPolicy {
        &self.retry
    }

    /// The chain seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig::new(0)
    }
}

/// Runs stage chains over datasets in parallel, deterministically.
pub struct Executor {
    config: ExecutorConfig,
}

/// Everything a chain run produced.
pub struct ChainOutput {
    /// All items, in input order, including discarded ones (their tags say
    /// why they were dropped).
    pub items: Vec<StageItem>,
    /// One report per stage, in chain order.
    pub reports: Vec<StageReport>,
    /// Token-cache hits summed across workers (informational: depends on
    /// chunking, so it is *not* covered by the determinism contract).
    pub cache_hits: u64,
    /// Token-cache misses summed across workers (informational, as above).
    pub cache_misses: u64,
}

impl ChainOutput {
    /// The retained items, in input order.
    pub fn retained(&self) -> impl Iterator<Item = &StageItem> {
        self.items.iter().filter(|i| i.retained)
    }

    /// Items a stage deliberately discarded, in input order.
    pub fn dropped(&self) -> impl Iterator<Item = &StageItem> {
        self.items
            .iter()
            .filter(|i| !i.retained && i.failure.is_none())
    }

    /// Items quarantined by a failing stage, in input order.
    pub fn quarantined(&self) -> impl Iterator<Item = &StageItem> {
        self.items.iter().filter(|i| i.failure.is_some())
    }

    /// Collects the retained pairs into a dataset.
    pub fn dataset(&self, name: impl Into<String>) -> Dataset {
        Dataset {
            name: name.into(),
            pairs: self.retained().map(|i| i.pair.clone()).collect(),
        }
    }

    /// Collects the quarantined items — each pair in the state it entered
    /// the failing stage, with its [`FailureRecord`] — for remediation.
    pub fn quarantine(&self, name: impl Into<String>) -> Quarantine {
        Quarantine {
            name: name.into(),
            items: self
                .items
                .iter()
                .filter_map(|i| {
                    i.failure.as_ref().map(|failure| QuarantinedPair {
                        pair: i.pair.clone(),
                        failure: failure.clone(),
                    })
                })
                .collect(),
        }
    }

    /// The report for the named stage, if it ran.
    pub fn report(&self, stage: &str) -> Option<&StageReport> {
        self.reports.iter().find(|r| r.stage == stage)
    }

    /// Total attributed stage time across the whole chain (measured plus
    /// simulated backoff/latency).
    pub fn total_cpu_time(&self) -> Duration {
        self.reports.iter().map(|r| r.cpu_time).sum()
    }

    /// Retry attempts summed across all stages (deterministic).
    pub fn total_retries(&self) -> u64 {
        self.reports.iter().map(|r| r.retries).sum()
    }

    /// Quarantined items summed across all stages (deterministic; equals
    /// `self.quarantined().count()`).
    pub fn total_quarantined(&self) -> usize {
        self.reports.iter().map(|r| r.quarantined).sum()
    }
}

/// Per-stage accumulation local to one worker.
#[derive(Default)]
struct StageStats {
    items_in: usize,
    items_out: usize,
    quarantined: usize,
    retries: u64,
    faults: u64,
    counters: BTreeMap<String, u64>,
    /// Measured time inside `process`.
    time: Duration,
    /// Simulated retry backoff (deterministic).
    backoff: Duration,
    /// Simulated injected latency (deterministic under a fixed plan).
    latency: Duration,
}

/// Everything one worker accumulated across the chunks it processed.
struct WorkerStats {
    per_stage: Vec<StageStats>,
    cache_hits: u64,
    cache_misses: u64,
}

impl Executor {
    /// An executor with the given config.
    pub fn new(config: ExecutorConfig) -> Self {
        Executor { config }
    }

    /// This executor's config.
    pub fn config(&self) -> &ExecutorConfig {
        &self.config
    }

    /// Runs `stages` over `pairs`.
    ///
    /// Each item flows through the whole chain before the next item starts
    /// (good token-cache locality); items are processed in place, so output
    /// order is input order regardless of the schedule. Under
    /// [`Schedule::Dynamic`] workers claim fixed-size chunks off an atomic
    /// counter; under [`Schedule::Static`] each worker gets one contiguous
    /// `n / threads` chunk. Results are identical either way.
    ///
    /// Stage failures never panic the run: transient failures retry under
    /// the config's [`RetryPolicy`], and items that exhaust retries or fail
    /// permanently land in the quarantine channel with a
    /// [`FailureRecord`]. With the default inert [`FaultPlan`] and stages
    /// that only return [`StageOutcome::Ok`]/`Drop`, behaviour is identical
    /// to the pre-fault executor.
    pub fn run(&self, stages: &[Box<dyn Stage + '_>], pairs: Vec<InstructionPair>) -> ChainOutput {
        let salts: Vec<u64> = stages
            .iter()
            .enumerate()
            .map(|(k, s)| stage_salt(s.name(), k))
            .collect();
        let mut items: Vec<StageItem> = pairs
            .into_iter()
            .enumerate()
            .map(|(i, p)| StageItem::new(i, p))
            .collect();

        let n = items.len();
        let threads = self.config.threads.min(n.max(1));
        let env = ChainEnv {
            stages,
            salts: &salts,
            seed: self.config.seed,
            plan: &self.config.fault_plan,
            retry: &self.config.retry,
        };

        let stats: Vec<WorkerStats> = if threads <= 1 {
            vec![run_worker_static(&env, &mut items)]
        } else {
            match self.config.schedule {
                Schedule::Static => {
                    let chunk_size = n.div_ceil(threads);
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = items
                            .chunks_mut(chunk_size)
                            .map(|chunk| scope.spawn(|| run_worker_static(&env, chunk)))
                            .collect();
                        handles.into_iter().map(join_worker).collect()
                    })
                }
                Schedule::Dynamic => {
                    let chunk_size = dynamic_chunk_size(n, threads);
                    // Each chunk slot is claimed exactly once via the atomic
                    // counter; the mutex only transfers the `&mut` slice to
                    // the claiming worker (uncontended by construction).
                    let queue: Vec<Mutex<Option<&mut [StageItem]>>> = items
                        .chunks_mut(chunk_size)
                        .map(|c| Mutex::new(Some(c)))
                        .collect();
                    let next = AtomicUsize::new(0);
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = (0..threads)
                            .map(|_| {
                                scope.spawn(|| {
                                    let mut cache = TokenCache::new();
                                    let mut per_stage: Vec<StageStats> =
                                        stages.iter().map(|_| StageStats::default()).collect();
                                    loop {
                                        let i = next.fetch_add(1, Ordering::Relaxed);
                                        let Some(slot) = queue.get(i) else { break };
                                        // A poisoned lock only means another
                                        // worker panicked mid-claim; the
                                        // Option inside is still coherent.
                                        let claimed = slot
                                            .lock()
                                            .unwrap_or_else(|poisoned| poisoned.into_inner())
                                            .take();
                                        // The atomic counter hands each slot
                                        // index out once, so `None` cannot
                                        // occur; skipping is still the safe
                                        // response.
                                        let Some(chunk) = claimed else { continue };
                                        process_items(&env, chunk, &mut cache, &mut per_stage);
                                    }
                                    finish_worker(cache, per_stage)
                                })
                            })
                            .collect();
                        handles.into_iter().map(join_worker).collect()
                    })
                }
            }
        };

        let mut reports: Vec<StageReport> = stages
            .iter()
            .map(|s| StageReport {
                stage: s.name().to_string(),
                ..StageReport::default()
            })
            .collect();
        let (mut cache_hits, mut cache_misses) = (0u64, 0u64);
        for chunk in stats {
            cache_hits += chunk.cache_hits;
            cache_misses += chunk.cache_misses;
            for (report, stage_stats) in reports.iter_mut().zip(chunk.per_stage) {
                report.items_in += stage_stats.items_in;
                report.items_out += stage_stats.items_out;
                report.quarantined += stage_stats.quarantined;
                report.retries += stage_stats.retries;
                report.faults_injected += stage_stats.faults;
                report.cpu_time += stage_stats.time + stage_stats.backoff + stage_stats.latency;
                report.backoff_time += stage_stats.backoff;
                for (key, v) in stage_stats.counters {
                    *report.counters.entry(key).or_insert(0) += v;
                }
            }
        }

        ChainOutput {
            items,
            reports,
            cache_hits,
            cache_misses,
        }
    }

    /// Runs `stages` over a dataset's pairs (cloned; the input is kept).
    pub fn run_dataset(&self, stages: &[Box<dyn Stage + '_>], dataset: &Dataset) -> ChainOutput {
        self.run(stages, dataset.pairs.clone())
    }
}

/// Mixes a stage's name and chain position into an RNG salt, so distinct
/// stages (even two instances of the same type) draw distinct streams.
fn stage_salt(name: &str, position: usize) -> u64 {
    let mut h = FxHasher::default();
    h.write(name.as_bytes());
    h.finish()
        .wrapping_add((position as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Seed for one (stage, item): independent of worker assignment.
fn item_seed(chain_seed: u64, salt: u64, id: u64) -> u64 {
    chain_seed ^ salt ^ id.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// The fixed chunk width the dynamic scheduler hands out: small enough that
/// a straggler only ever holds a sliver of the batch, large enough to
/// amortise the claim and keep token-cache locality.
fn dynamic_chunk_size(n: usize, threads: usize) -> usize {
    const CHUNKS_PER_WORKER: usize = 8;
    n.div_ceil(threads * CHUNKS_PER_WORKER).clamp(1, 64)
}

/// Everything a worker needs to run the chain over a slice, bundled so the
/// schedule bodies stay readable.
struct ChainEnv<'a, 'b> {
    stages: &'a [Box<dyn Stage + 'b>],
    salts: &'a [u64],
    seed: u64,
    plan: &'a FaultPlan,
    retry: &'a RetryPolicy,
}

/// Runs the chain over one slice of items, accumulating into the worker's
/// stats. The per-(stage, item) seeding and the per-(stage, item, attempt)
/// fault rolls make the result independent of which worker runs which
/// slice.
fn process_items(
    env: &ChainEnv<'_, '_>,
    chunk: &mut [StageItem],
    cache: &mut TokenCache,
    per_stage: &mut [StageStats],
) {
    let inert = env.plan.is_inert();
    for item in chunk.iter_mut() {
        for (k, stage) in env.stages.iter().enumerate() {
            if !item.retained {
                break;
            }
            let stats = &mut per_stage[k];
            stats.items_in += 1;
            // Attempt loop. The stage RNG is seeded per (stage, item) only —
            // NOT per attempt — so a deterministic stage recomputes the same
            // result on every attempt and a retried item that eventually
            // succeeds is byte-identical to its never-faulted self. Fault
            // rolls, by contrast, are per (stage, item, attempt): a
            // transient fault on attempt 0 does not doom attempt 1.
            let rng_seed = item_seed(env.seed, env.salts[k], item.pair.id);
            let mut attempt: u32 = 0;
            loop {
                let fault = if inert {
                    None
                } else {
                    env.plan.roll(env.salts[k], item.pair.id, attempt)
                };
                let outcome = match fault {
                    Some(Fault::Permanent) => {
                        stats.faults += 1;
                        StageOutcome::fatal("injected: permanent")
                    }
                    Some(Fault::Transient) => {
                        stats.faults += 1;
                        StageOutcome::retryable("injected: transient")
                    }
                    other => {
                        if let Some(Fault::Latency(spike)) = other {
                            stats.faults += 1;
                            stats.latency += spike;
                        }
                        let mut ctx = StageCtx {
                            rng: StdRng::seed_from_u64(rng_seed),
                            cache,
                            counters: &mut stats.counters,
                        };
                        let watch = Stopwatch::start();
                        let o = stage.process(item, &mut ctx);
                        stats.time += watch.elapsed();
                        o
                    }
                };
                match outcome {
                    StageOutcome::Ok => {
                        if item.retained {
                            stats.items_out += 1;
                        }
                        break;
                    }
                    StageOutcome::Drop => {
                        item.discard(format!("drop:{}", stage.name()));
                        break;
                    }
                    StageOutcome::Retryable(error) => {
                        attempt += 1;
                        if attempt >= env.retry.max_attempts {
                            item.quarantine(FailureRecord {
                                stage: stage.name().to_string(),
                                attempts: attempt,
                                error,
                                kind: FailureKind::RetriesExhausted,
                            });
                            stats.quarantined += 1;
                            break;
                        }
                        stats.retries += 1;
                        stats.backoff += env.retry.backoff_before(attempt);
                    }
                    StageOutcome::Fatal(error) => {
                        item.quarantine(FailureRecord {
                            stage: stage.name().to_string(),
                            attempts: attempt + 1,
                            error,
                            kind: FailureKind::Fatal,
                        });
                        stats.quarantined += 1;
                        break;
                    }
                }
            }
        }
    }
}

/// Static/sequential worker body: one chunk, one fresh cache.
fn run_worker_static(env: &ChainEnv<'_, '_>, chunk: &mut [StageItem]) -> WorkerStats {
    let mut cache = TokenCache::new();
    let mut per_stage: Vec<StageStats> = env.stages.iter().map(|_| StageStats::default()).collect();
    process_items(env, chunk, &mut cache, &mut per_stage);
    finish_worker(cache, per_stage)
}

/// Joins a worker thread, re-raising its panic payload (if any) on the
/// caller's thread instead of wrapping it in a second panic message.
fn join_worker(handle: std::thread::ScopedJoinHandle<'_, WorkerStats>) -> WorkerStats {
    handle
        .join()
        .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
}

fn finish_worker(cache: TokenCache, per_stage: Vec<StageStats>) -> WorkerStats {
    let (cache_hits, cache_misses) = cache.stats();
    WorkerStats {
        per_stage,
        cache_hits,
        cache_misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coachlm_data::Category;
    use rand::Rng;

    fn pairs(n: usize) -> Vec<InstructionPair> {
        (0..n as u64)
            .map(|id| {
                InstructionPair::new(
                    id,
                    format!("Question {id}?"),
                    format!("Answer {id}."),
                    Category(0),
                )
            })
            .collect()
    }

    /// Appends a seeded random suffix and counts even ids.
    struct Scribble;

    impl Stage for Scribble {
        fn name(&self) -> &str {
            "scribble"
        }
        fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) -> StageOutcome {
            let roll: u64 = ctx.rng.gen_range(0..1000);
            item.pair.response.push_str(&format!(" [{roll}]"));
            if item.pair.id.is_multiple_of(2) {
                ctx.bump("even");
            }
            ctx.cache.word_count(&item.pair.response);
            StageOutcome::Ok
        }
    }

    /// Discards ids divisible by 5.
    struct DropFifths;

    impl Stage for DropFifths {
        fn name(&self) -> &str {
            "drop-fifths"
        }
        fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) -> StageOutcome {
            if item.pair.id.is_multiple_of(5) {
                item.discard("fifth");
                ctx.bump("dropped");
            }
            StageOutcome::Ok
        }
    }

    /// Fails organically: ids divisible by `fatal_every` are fatal, ids
    /// divisible by `retry_every` return a transient error every attempt
    /// (a deterministic stage retries into the same failure).
    struct Flaky {
        retry_every: u64,
        fatal_every: u64,
    }

    impl Stage for Flaky {
        fn name(&self) -> &str {
            "flaky"
        }
        fn process(&self, item: &mut StageItem, _ctx: &mut StageCtx<'_>) -> StageOutcome {
            if item.pair.id.is_multiple_of(self.fatal_every) {
                StageOutcome::fatal("organic: unparseable")
            } else if item.pair.id.is_multiple_of(self.retry_every) {
                StageOutcome::retryable("organic: flaky")
            } else {
                StageOutcome::Ok
            }
        }
    }

    fn chain() -> Vec<Box<dyn Stage>> {
        vec![Box::new(Scribble), Box::new(DropFifths)]
    }

    #[test]
    fn output_is_thread_count_invariant() {
        let base = Executor::new(ExecutorConfig::new(11).threads(1)).run(&chain(), pairs(101));
        for threads in [2, 3, 8] {
            let out =
                Executor::new(ExecutorConfig::new(11).threads(threads)).run(&chain(), pairs(101));
            assert_eq!(out.items.len(), base.items.len());
            for (a, b) in out.items.iter().zip(&base.items) {
                assert_eq!(a.pair, b.pair);
                assert_eq!(a.retained, b.retained);
                assert_eq!(a.tags, b.tags);
            }
            for (ra, rb) in out.reports.iter().zip(&base.reports) {
                assert_eq!(ra.stage, rb.stage);
                assert_eq!(ra.items_in, rb.items_in);
                assert_eq!(ra.items_out, rb.items_out);
                assert_eq!(ra.counters, rb.counters);
            }
        }
    }

    #[test]
    fn dropped_items_skip_later_stages_and_counts_add_up() {
        let stages: Vec<Box<dyn Stage>> = vec![Box::new(DropFifths), Box::new(Scribble)];
        let out = Executor::new(ExecutorConfig::new(5).threads(4)).run(&stages, pairs(50));
        let filter = out.report("drop-fifths").unwrap();
        assert_eq!(filter.items_in, 50);
        assert_eq!(filter.items_out, 40);
        assert_eq!(filter.items_dropped(), 10);
        assert_eq!(filter.counter("dropped"), 10);
        let scribble = out.report("scribble").unwrap();
        assert_eq!(scribble.items_in, 40);
        // Dropped items keep their original text.
        assert!(out
            .items
            .iter()
            .filter(|i| !i.retained)
            .all(|i| !i.response_changed() && i.has_tag("fifth")));
        assert_eq!(out.dataset("kept").len(), 40);
    }

    #[test]
    fn schedules_agree_item_for_item() {
        let base = Executor::new(ExecutorConfig::new(23).threads(1)).run(&chain(), pairs(157));
        for threads in [2, 5, 8] {
            for schedule in [Schedule::Static, Schedule::Dynamic] {
                let out =
                    Executor::new(ExecutorConfig::new(23).threads(threads).schedule(schedule))
                        .run(&chain(), pairs(157));
                for (a, b) in out.items.iter().zip(&base.items) {
                    assert_eq!(a.pair, b.pair, "{schedule:?} x{threads}");
                    assert_eq!(a.retained, b.retained);
                    assert_eq!(a.tags, b.tags);
                }
                for (ra, rb) in out.reports.iter().zip(&base.reports) {
                    assert_eq!(ra.counters, rb.counters, "{schedule:?} x{threads}");
                }
            }
        }
    }

    #[test]
    fn dynamic_chunk_size_bounds() {
        assert_eq!(dynamic_chunk_size(0, 4), 1);
        assert_eq!(dynamic_chunk_size(7, 16), 1);
        assert_eq!(dynamic_chunk_size(2_000, 8), 32);
        // Huge batches cap at 64 so stragglers stay bounded.
        assert_eq!(dynamic_chunk_size(1_000_000, 4), 64);
    }

    #[test]
    fn seed_changes_results_and_same_seed_repeats() {
        let a = Executor::new(ExecutorConfig::new(1).threads(2)).run(&chain(), pairs(40));
        let b = Executor::new(ExecutorConfig::new(1).threads(2)).run(&chain(), pairs(40));
        let c = Executor::new(ExecutorConfig::new(2).threads(2)).run(&chain(), pairs(40));
        let text = |o: &ChainOutput| {
            o.items
                .iter()
                .map(|i| i.pair.response.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(text(&a), text(&b));
        assert_ne!(text(&a), text(&c));
    }

    #[test]
    fn empty_input_yields_empty_reports() {
        let out = Executor::new(ExecutorConfig::default()).run(&chain(), Vec::new());
        assert!(out.items.is_empty());
        assert_eq!(out.reports.len(), 2);
        assert!(out.reports.iter().all(|r| r.items_in == 0));
        assert_eq!(out.total_cpu_time(), Duration::ZERO);
    }

    #[test]
    fn organic_failures_quarantine_without_panicking() {
        let stages: Vec<Box<dyn Stage>> = vec![
            Box::new(Flaky {
                retry_every: 7,
                fatal_every: 5,
            }),
            Box::new(Scribble),
        ];
        let out = Executor::new(ExecutorConfig::new(1).threads(4)).run(&stages, pairs(70));
        // id 0 is divisible by both; fatal wins (checked first). 5s are
        // fatal, remaining 7s exhaust retries; everything else passes.
        for item in &out.items {
            let id = item.pair.id;
            if id.is_multiple_of(5) {
                let f = item.failure.as_ref().expect("fatal ids quarantine");
                assert_eq!(f.kind, FailureKind::Fatal);
                assert_eq!(f.attempts, 1);
                assert_eq!(f.error, "organic: unparseable");
            } else if id.is_multiple_of(7) {
                let f = item.failure.as_ref().expect("flaky ids exhaust retries");
                assert_eq!(f.kind, FailureKind::RetriesExhausted);
                assert_eq!(f.attempts, RetryPolicy::default().max_attempts);
            } else {
                assert!(item.retained, "id {id} should pass");
            }
        }
        let report = out.report("flaky").unwrap();
        assert_eq!(report.quarantined, out.quarantined().count());
        assert_eq!(report.quarantined, 14 + 8); // 14 fives, 8 non-five sevens
                                                // Every exhausted item burned max_attempts - 1 retries.
        assert_eq!(
            report.retries,
            8 * u64::from(RetryPolicy::default().max_attempts - 1)
        );
        assert!(report.backoff_time > Duration::ZERO);
        // Quarantined items never reached the second stage.
        assert_eq!(out.report("scribble").unwrap().items_in, 70 - 22);
        // The quarantine channel carries structured records.
        let q = out.quarantine("t-quarantine");
        assert_eq!(q.len(), 22);
        assert!(q.items.iter().all(|i| i.failure.stage == "flaky"));
    }

    #[test]
    fn drop_outcome_tags_and_discards() {
        struct DropAll;
        impl Stage for DropAll {
            fn name(&self) -> &str {
                "drop-all"
            }
            fn process(&self, _item: &mut StageItem, _ctx: &mut StageCtx<'_>) -> StageOutcome {
                StageOutcome::Drop
            }
        }
        let stages: Vec<Box<dyn Stage>> = vec![Box::new(DropAll)];
        let out = Executor::new(ExecutorConfig::new(0).threads(2)).run(&stages, pairs(10));
        assert_eq!(out.dropped().count(), 10);
        assert_eq!(out.quarantined().count(), 0);
        assert!(out.items.iter().all(|i| i.has_tag("drop:drop-all")));
        assert_eq!(out.report("drop-all").unwrap().items_dropped(), 10);
    }

    #[test]
    fn injected_faults_partition_and_replicate_across_threads() {
        let plan = FaultPlan::new(99).transient(0.2).permanent(0.05);
        let run_with = |threads: usize, schedule: Schedule| {
            Executor::new(
                ExecutorConfig::new(3)
                    .threads(threads)
                    .schedule(schedule)
                    .fault_plan(plan.clone()),
            )
            .run(&chain(), pairs(200))
        };
        let base = run_with(1, Schedule::Static);
        let (r, d, q) = (
            base.retained().count(),
            base.dropped().count(),
            base.quarantined().count(),
        );
        assert_eq!(r + d + q, 200);
        assert!(q > 0, "5% permanent over 200 items should quarantine some");
        assert!(base.total_retries() > 0);
        for threads in [2, 8] {
            for schedule in [Schedule::Static, Schedule::Dynamic] {
                let out = run_with(threads, schedule);
                for (a, b) in out.items.iter().zip(&base.items) {
                    assert_eq!(a.pair, b.pair, "{schedule:?} x{threads}");
                    assert_eq!(a.disposition(), b.disposition());
                    assert_eq!(a.failure, b.failure);
                }
                for (ra, rb) in out.reports.iter().zip(&base.reports) {
                    assert_eq!(ra.retries, rb.retries);
                    assert_eq!(ra.quarantined, rb.quarantined);
                    assert_eq!(ra.faults_injected, rb.faults_injected);
                    assert_eq!(ra.backoff_time, rb.backoff_time);
                }
            }
        }
    }

    #[test]
    fn transient_survivors_match_the_unfaulted_run() {
        let clean = Executor::new(ExecutorConfig::new(7).threads(3)).run(&chain(), pairs(150));
        let faulted = Executor::new(
            ExecutorConfig::new(7)
                .threads(3)
                .fault_plan(FaultPlan::new(4).transient(0.25))
                .retry_policy(RetryPolicy::new(4, Duration::from_millis(5))),
        )
        .run(&chain(), pairs(150));
        // Stage RNG is per (stage, item), not per attempt: any item that
        // survives its transient faults produces exactly the text the
        // unfaulted run produced.
        let mut survivors = 0;
        for (f, c) in faulted.items.iter().zip(&clean.items) {
            if f.failure.is_none() {
                assert_eq!(f.pair, c.pair);
                assert_eq!(f.retained, c.retained);
                survivors += 1;
            }
        }
        assert!(survivors > 100, "survivors {survivors}");
    }

    #[test]
    fn latency_spikes_inflate_time_deterministically() {
        let spike = Duration::from_millis(3);
        let out = Executor::new(
            ExecutorConfig::new(1)
                .threads(2)
                .fault_plan(FaultPlan::new(8).latency(1.0, spike)),
        )
        .run(&chain(), pairs(20));
        // Every (stage, item) attempt rolled a spike; nothing failed.
        assert_eq!(out.quarantined().count(), 0);
        let scribble = out.report("scribble").unwrap();
        assert_eq!(scribble.faults_injected, 20);
        assert!(scribble.cpu_time >= spike * 20);
        assert_eq!(scribble.backoff_time, Duration::ZERO);
    }
}
