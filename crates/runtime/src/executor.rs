//! The deterministic parallel batch executor.

use crate::report::StageReport;
use crate::stage::{Stage, StageCtx, StageItem};
use coachlm_data::{Dataset, InstructionPair};
use coachlm_text::fxhash::FxHasher;
use coachlm_text::token::TokenCache;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::hash::Hasher;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How workers claim items.
///
/// Either way, each (stage, item) RNG is seeded independently of worker
/// assignment, so the schedule affects wall-clock time only — never the
/// output (the determinism proptests pin this across both schedules).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// One contiguous chunk per worker, sized `n / threads`. Simple, but a
    /// length-skewed batch serializes behind whichever worker drew the
    /// expensive region.
    Static,
    /// Workers repeatedly claim the next fixed-size chunk off an atomic
    /// counter until the batch is drained. Stragglers only ever hold one
    /// small chunk, so skewed batches stay balanced. The default.
    #[default]
    Dynamic,
}

/// How a chain run is parallelised and seeded.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    threads: usize,
    seed: u64,
    schedule: Schedule,
}

impl ExecutorConfig {
    /// A config with the given chain seed and the default thread count:
    /// `std::thread::available_parallelism()` (1 if unavailable). The
    /// thread count never changes results, only wall-clock time, so the
    /// default is right unless an experiment pins threads for comparison.
    pub fn new(seed: u64) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        ExecutorConfig {
            threads,
            seed,
            schedule: Schedule::default(),
        }
    }

    /// Overrides the worker count (floored at 1).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Overrides the scheduling policy (defaults to [`Schedule::Dynamic`]).
    pub fn schedule(mut self, s: Schedule) -> Self {
        self.schedule = s;
        self
    }

    /// The configured worker count.
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// The configured scheduling policy.
    pub fn scheduling(&self) -> Schedule {
        self.schedule
    }

    /// The chain seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig::new(0)
    }
}

/// Runs stage chains over datasets in parallel, deterministically.
pub struct Executor {
    config: ExecutorConfig,
}

/// Everything a chain run produced.
pub struct ChainOutput {
    /// All items, in input order, including discarded ones (their tags say
    /// why they were dropped).
    pub items: Vec<StageItem>,
    /// One report per stage, in chain order.
    pub reports: Vec<StageReport>,
    /// Token-cache hits summed across workers (informational: depends on
    /// chunking, so it is *not* covered by the determinism contract).
    pub cache_hits: u64,
    /// Token-cache misses summed across workers (informational, as above).
    pub cache_misses: u64,
}

impl ChainOutput {
    /// The retained items, in input order.
    pub fn retained(&self) -> impl Iterator<Item = &StageItem> {
        self.items.iter().filter(|i| i.retained)
    }

    /// Collects the retained pairs into a dataset.
    pub fn dataset(&self, name: impl Into<String>) -> Dataset {
        Dataset {
            name: name.into(),
            pairs: self.retained().map(|i| i.pair.clone()).collect(),
        }
    }

    /// The report for the named stage, if it ran.
    pub fn report(&self, stage: &str) -> Option<&StageReport> {
        self.reports.iter().find(|r| r.stage == stage)
    }

    /// Total measured stage time across the whole chain.
    pub fn total_cpu_time(&self) -> Duration {
        self.reports.iter().map(|r| r.cpu_time).sum()
    }
}

/// Per-stage accumulation local to one worker.
#[derive(Default)]
struct StageStats {
    items_in: usize,
    items_out: usize,
    counters: BTreeMap<String, u64>,
    time: Duration,
}

/// Everything one worker accumulated across the chunks it processed.
struct WorkerStats {
    per_stage: Vec<StageStats>,
    cache_hits: u64,
    cache_misses: u64,
}

impl Executor {
    /// An executor with the given config.
    pub fn new(config: ExecutorConfig) -> Self {
        Executor { config }
    }

    /// This executor's config.
    pub fn config(&self) -> &ExecutorConfig {
        &self.config
    }

    /// Runs `stages` over `pairs`.
    ///
    /// Each item flows through the whole chain before the next item starts
    /// (good token-cache locality); items are processed in place, so output
    /// order is input order regardless of the schedule. Under
    /// [`Schedule::Dynamic`] workers claim fixed-size chunks off an atomic
    /// counter; under [`Schedule::Static`] each worker gets one contiguous
    /// `n / threads` chunk. Results are identical either way.
    pub fn run(&self, stages: &[Box<dyn Stage + '_>], pairs: Vec<InstructionPair>) -> ChainOutput {
        let salts: Vec<u64> = stages
            .iter()
            .enumerate()
            .map(|(k, s)| stage_salt(s.name(), k))
            .collect();
        let mut items: Vec<StageItem> = pairs
            .into_iter()
            .enumerate()
            .map(|(i, p)| StageItem::new(i, p))
            .collect();

        let n = items.len();
        let threads = self.config.threads.min(n.max(1));
        let seed = self.config.seed;

        let stats: Vec<WorkerStats> = if threads <= 1 {
            vec![run_worker_static(stages, &salts, seed, &mut items)]
        } else {
            match self.config.schedule {
                Schedule::Static => {
                    let chunk_size = n.div_ceil(threads);
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = items
                            .chunks_mut(chunk_size)
                            .map(|chunk| {
                                scope.spawn(|| run_worker_static(stages, &salts, seed, chunk))
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("executor worker panicked"))
                            .collect()
                    })
                }
                Schedule::Dynamic => {
                    let chunk_size = dynamic_chunk_size(n, threads);
                    // Each chunk slot is claimed exactly once via the atomic
                    // counter; the mutex only transfers the `&mut` slice to
                    // the claiming worker (uncontended by construction).
                    let queue: Vec<Mutex<Option<&mut [StageItem]>>> = items
                        .chunks_mut(chunk_size)
                        .map(|c| Mutex::new(Some(c)))
                        .collect();
                    let next = AtomicUsize::new(0);
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = (0..threads)
                            .map(|_| {
                                scope.spawn(|| {
                                    let mut cache = TokenCache::new();
                                    let mut per_stage: Vec<StageStats> =
                                        stages.iter().map(|_| StageStats::default()).collect();
                                    loop {
                                        let i = next.fetch_add(1, Ordering::Relaxed);
                                        let Some(slot) = queue.get(i) else { break };
                                        let chunk = slot
                                            .lock()
                                            .expect("chunk mutex poisoned")
                                            .take()
                                            .expect("chunk claimed exactly once");
                                        process_items(
                                            stages,
                                            &salts,
                                            seed,
                                            chunk,
                                            &mut cache,
                                            &mut per_stage,
                                        );
                                    }
                                    finish_worker(cache, per_stage)
                                })
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("executor worker panicked"))
                            .collect()
                    })
                }
            }
        };

        let mut reports: Vec<StageReport> = stages
            .iter()
            .map(|s| StageReport {
                stage: s.name().to_string(),
                ..StageReport::default()
            })
            .collect();
        let (mut cache_hits, mut cache_misses) = (0u64, 0u64);
        for chunk in stats {
            cache_hits += chunk.cache_hits;
            cache_misses += chunk.cache_misses;
            for (report, stage_stats) in reports.iter_mut().zip(chunk.per_stage) {
                report.items_in += stage_stats.items_in;
                report.items_out += stage_stats.items_out;
                report.cpu_time += stage_stats.time;
                for (key, v) in stage_stats.counters {
                    *report.counters.entry(key).or_insert(0) += v;
                }
            }
        }

        ChainOutput {
            items,
            reports,
            cache_hits,
            cache_misses,
        }
    }

    /// Runs `stages` over a dataset's pairs (cloned; the input is kept).
    pub fn run_dataset(&self, stages: &[Box<dyn Stage + '_>], dataset: &Dataset) -> ChainOutput {
        self.run(stages, dataset.pairs.clone())
    }
}

/// Mixes a stage's name and chain position into an RNG salt, so distinct
/// stages (even two instances of the same type) draw distinct streams.
fn stage_salt(name: &str, position: usize) -> u64 {
    let mut h = FxHasher::default();
    h.write(name.as_bytes());
    h.finish()
        .wrapping_add((position as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Seed for one (stage, item): independent of worker assignment.
fn item_seed(chain_seed: u64, salt: u64, id: u64) -> u64 {
    chain_seed ^ salt ^ id.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// The fixed chunk width the dynamic scheduler hands out: small enough that
/// a straggler only ever holds a sliver of the batch, large enough to
/// amortise the claim and keep token-cache locality.
fn dynamic_chunk_size(n: usize, threads: usize) -> usize {
    const CHUNKS_PER_WORKER: usize = 8;
    n.div_ceil(threads * CHUNKS_PER_WORKER).clamp(1, 64)
}

/// Runs the chain over one slice of items, accumulating into the worker's
/// stats. The per-(stage, item) seeding makes the result independent of
/// which worker runs which slice.
fn process_items(
    stages: &[Box<dyn Stage + '_>],
    salts: &[u64],
    chain_seed: u64,
    chunk: &mut [StageItem],
    cache: &mut TokenCache,
    per_stage: &mut [StageStats],
) {
    for item in chunk.iter_mut() {
        for (k, stage) in stages.iter().enumerate() {
            if !item.retained {
                break;
            }
            let stats = &mut per_stage[k];
            stats.items_in += 1;
            let mut ctx = StageCtx {
                rng: StdRng::seed_from_u64(item_seed(chain_seed, salts[k], item.pair.id)),
                cache,
                counters: &mut stats.counters,
            };
            let start = Instant::now();
            stage.process(item, &mut ctx);
            stats.time += start.elapsed();
            if item.retained {
                stats.items_out += 1;
            }
        }
    }
}

/// Static/sequential worker body: one chunk, one fresh cache.
fn run_worker_static(
    stages: &[Box<dyn Stage + '_>],
    salts: &[u64],
    chain_seed: u64,
    chunk: &mut [StageItem],
) -> WorkerStats {
    let mut cache = TokenCache::new();
    let mut per_stage: Vec<StageStats> = stages.iter().map(|_| StageStats::default()).collect();
    process_items(stages, salts, chain_seed, chunk, &mut cache, &mut per_stage);
    finish_worker(cache, per_stage)
}

fn finish_worker(cache: TokenCache, per_stage: Vec<StageStats>) -> WorkerStats {
    let (cache_hits, cache_misses) = cache.stats();
    WorkerStats {
        per_stage,
        cache_hits,
        cache_misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coachlm_data::Category;
    use rand::Rng;

    fn pairs(n: usize) -> Vec<InstructionPair> {
        (0..n as u64)
            .map(|id| {
                InstructionPair::new(
                    id,
                    format!("Question {id}?"),
                    format!("Answer {id}."),
                    Category(0),
                )
            })
            .collect()
    }

    /// Appends a seeded random suffix and counts even ids.
    struct Scribble;

    impl Stage for Scribble {
        fn name(&self) -> &str {
            "scribble"
        }
        fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) {
            let roll: u64 = ctx.rng.gen_range(0..1000);
            item.pair.response.push_str(&format!(" [{roll}]"));
            if item.pair.id.is_multiple_of(2) {
                ctx.bump("even");
            }
            ctx.cache.word_count(&item.pair.response);
        }
    }

    /// Discards ids divisible by 5.
    struct DropFifths;

    impl Stage for DropFifths {
        fn name(&self) -> &str {
            "drop-fifths"
        }
        fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) {
            if item.pair.id.is_multiple_of(5) {
                item.discard("fifth");
                ctx.bump("dropped");
            }
        }
    }

    fn chain() -> Vec<Box<dyn Stage>> {
        vec![Box::new(Scribble), Box::new(DropFifths)]
    }

    #[test]
    fn output_is_thread_count_invariant() {
        let base = Executor::new(ExecutorConfig::new(11).threads(1)).run(&chain(), pairs(101));
        for threads in [2, 3, 8] {
            let out =
                Executor::new(ExecutorConfig::new(11).threads(threads)).run(&chain(), pairs(101));
            assert_eq!(out.items.len(), base.items.len());
            for (a, b) in out.items.iter().zip(&base.items) {
                assert_eq!(a.pair, b.pair);
                assert_eq!(a.retained, b.retained);
                assert_eq!(a.tags, b.tags);
            }
            for (ra, rb) in out.reports.iter().zip(&base.reports) {
                assert_eq!(ra.stage, rb.stage);
                assert_eq!(ra.items_in, rb.items_in);
                assert_eq!(ra.items_out, rb.items_out);
                assert_eq!(ra.counters, rb.counters);
            }
        }
    }

    #[test]
    fn dropped_items_skip_later_stages_and_counts_add_up() {
        let stages: Vec<Box<dyn Stage>> = vec![Box::new(DropFifths), Box::new(Scribble)];
        let out = Executor::new(ExecutorConfig::new(5).threads(4)).run(&stages, pairs(50));
        let filter = out.report("drop-fifths").unwrap();
        assert_eq!(filter.items_in, 50);
        assert_eq!(filter.items_out, 40);
        assert_eq!(filter.items_dropped(), 10);
        assert_eq!(filter.counter("dropped"), 10);
        let scribble = out.report("scribble").unwrap();
        assert_eq!(scribble.items_in, 40);
        // Dropped items keep their original text.
        assert!(out
            .items
            .iter()
            .filter(|i| !i.retained)
            .all(|i| !i.response_changed() && i.has_tag("fifth")));
        assert_eq!(out.dataset("kept").len(), 40);
    }

    #[test]
    fn schedules_agree_item_for_item() {
        let base = Executor::new(ExecutorConfig::new(23).threads(1)).run(&chain(), pairs(157));
        for threads in [2, 5, 8] {
            for schedule in [Schedule::Static, Schedule::Dynamic] {
                let out =
                    Executor::new(ExecutorConfig::new(23).threads(threads).schedule(schedule))
                        .run(&chain(), pairs(157));
                for (a, b) in out.items.iter().zip(&base.items) {
                    assert_eq!(a.pair, b.pair, "{schedule:?} x{threads}");
                    assert_eq!(a.retained, b.retained);
                    assert_eq!(a.tags, b.tags);
                }
                for (ra, rb) in out.reports.iter().zip(&base.reports) {
                    assert_eq!(ra.counters, rb.counters, "{schedule:?} x{threads}");
                }
            }
        }
    }

    #[test]
    fn dynamic_chunk_size_bounds() {
        assert_eq!(dynamic_chunk_size(0, 4), 1);
        assert_eq!(dynamic_chunk_size(7, 16), 1);
        assert_eq!(dynamic_chunk_size(2_000, 8), 32);
        // Huge batches cap at 64 so stragglers stay bounded.
        assert_eq!(dynamic_chunk_size(1_000_000, 4), 64);
    }

    #[test]
    fn seed_changes_results_and_same_seed_repeats() {
        let a = Executor::new(ExecutorConfig::new(1).threads(2)).run(&chain(), pairs(40));
        let b = Executor::new(ExecutorConfig::new(1).threads(2)).run(&chain(), pairs(40));
        let c = Executor::new(ExecutorConfig::new(2).threads(2)).run(&chain(), pairs(40));
        let text = |o: &ChainOutput| {
            o.items
                .iter()
                .map(|i| i.pair.response.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(text(&a), text(&b));
        assert_ne!(text(&a), text(&c));
    }

    #[test]
    fn empty_input_yields_empty_reports() {
        let out = Executor::new(ExecutorConfig::default()).run(&chain(), Vec::new());
        assert!(out.items.is_empty());
        assert_eq!(out.reports.len(), 2);
        assert!(out.reports.iter().all(|r| r.items_in == 0));
        assert_eq!(out.total_cpu_time(), Duration::ZERO);
    }
}
