//! The [`Stage`] trait and the per-item state it operates on.

use crate::fault::FailureRecord;
use coachlm_data::InstructionPair;
use coachlm_text::token::TokenCache;
use rand::rngs::StdRng;
use std::any::Any;
use std::collections::BTreeMap;

/// What one attempt at processing one item produced.
///
/// Rollback contract: a stage returning [`Retryable`](Self::Retryable) or
/// [`Fatal`](Self::Fatal) must leave the item exactly as it found it
/// (compute first, commit mutations only on the success path). The executor
/// relies on this instead of snapshotting the pair before every attempt,
/// which keeps the zero-fault hot path free of per-item clones.
#[must_use]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageOutcome {
    /// The item was processed (it may still have been discarded via
    /// [`StageItem::discard`] — that is retention, not failure).
    Ok,
    /// The iteration committed its work to the item, and the stage wants
    /// another pass (a bounded revise-until-pass loop). The executor runs
    /// the stage body again with a fresh per-iteration RNG stream, charging
    /// [`service_time`](Stage::service_time) per body run; once
    /// [`iteration_budget`](Stage::iteration_budget) passes have committed,
    /// `Again` is accepted as [`Ok`](Self::Ok) — the loop is always
    /// bounded. Unlike the failure variants, `Again` *commits* its
    /// mutations: each pass is a durable partial revision, not a rollback.
    Again,
    /// The item flows no further; equivalent to `item.discard` with a
    /// `drop:<stage>` tag, for stages that prefer signalling over mutating.
    Drop,
    /// The attempt failed transiently; the executor retries under its
    /// [`RetryPolicy`](crate::RetryPolicy) and quarantines the item once
    /// attempts run out.
    Retryable(String),
    /// The item cannot be processed by this stage; it is quarantined
    /// immediately with the given error.
    Fatal(String),
}

impl StageOutcome {
    /// A transient failure with the given error message.
    pub fn retryable(error: impl Into<String>) -> Self {
        StageOutcome::Retryable(error.into())
    }

    /// A permanent failure with the given error message.
    pub fn fatal(error: impl Into<String>) -> Self {
        StageOutcome::Fatal(error.into())
    }
}

/// Where an item ended up after a chain run — exactly one of these holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Still flowing (or flowed out the end of the chain).
    Retained,
    /// A stage discarded it deliberately (filtering, not failure).
    Dropped,
    /// A stage failed on it until retries ran out, or failed permanently.
    Quarantined,
}

/// One step of a dataset-processing chain.
///
/// A stage sees each pair once, in isolation, and may rewrite it, discard
/// it, tag it, or attach a payload. Stages hold no per-item mutable state
/// (`&self`, `Sync`): all per-item randomness comes from the context's RNG,
/// which the executor seeds per (stage, item) so results are independent of
/// thread count and processing order.
pub trait Stage: Sync {
    /// Stage name, used in reports and to salt the per-item RNG.
    fn name(&self) -> &str;

    /// Processes one item. See [`StageOutcome`] for the rollback contract
    /// on the failure variants.
    fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) -> StageOutcome;

    /// The stage's *simulated-time* budget per attempt, or `None` for no
    /// deadline (the default).
    ///
    /// Deadlines are enforced against simulated time only (see
    /// [`simtime`](crate::simtime)): when an injected latency spike
    /// exceeds the budget, the attempt is cut short as a `Retryable`
    /// timeout — the executor charges the budget (not the full spike) to
    /// [`latency_time`](crate::StageReport::latency_time) and feeds the
    /// item to the normal retry/quarantine machinery. Measured wall time
    /// is never compared against the budget, so a slow host cannot change
    /// results; a latency-fault storm degrades deterministically instead
    /// of hanging the chain.
    fn deadline(&self) -> Option<std::time::Duration> {
        None
    }

    /// Modeled per-item service time, used *only* by the virtual-time
    /// model in [`crate::stream`]: lane allocation weights stages by this,
    /// and [`ChainOutput::sim_elapsed`](crate::ChainOutput::sim_elapsed)
    /// charges it per stage-body run. Never compared against measured
    /// wall time and never part of the output digest, so a wrong estimate
    /// skews the modeled throughput but can't change results. Defaults to
    /// 1ms — a cheap-ish local transform.
    fn service_time(&self) -> std::time::Duration {
        std::time::Duration::from_millis(1)
    }

    /// Hard cap on committed iteration passes per item for a looping stage
    /// (one returning [`StageOutcome::Again`]). Defaults to 1: a plain
    /// stage's first committed pass is its last, and `Again` from it is
    /// accepted immediately. Each pass gets its own RNG stream and fault
    /// rolls, charges [`service_time`](Self::service_time), and observes
    /// the per-attempt [`deadline`](Self::deadline); the budget is part of
    /// the journal fingerprint, so a resume under a different budget is
    /// refused rather than silently diverging.
    fn iteration_budget(&self) -> u32 {
        1
    }
}

/// A pair flowing through a stage chain, with its bookkeeping.
pub struct StageItem {
    /// Position in the input dataset (output order preserves it).
    pub index: usize,
    /// The pair as it entered the chain, untouched.
    pub original: InstructionPair,
    /// The pair in its current, possibly rewritten, state.
    pub pair: InstructionPair,
    /// `false` once a stage discards the item (or the executor quarantines
    /// it); later stages skip it.
    pub retained: bool,
    /// Labels stages attach (e.g. a filter's exclusion reason).
    pub tags: Vec<String>,
    /// Set by the executor when the item is quarantined; `None` for
    /// retained and deliberately dropped items.
    pub failure: Option<FailureRecord>,
    payload: Option<Box<dyn Any + Send>>,
}

impl StageItem {
    /// Wraps a pair for processing.
    pub fn new(index: usize, pair: InstructionPair) -> Self {
        StageItem {
            index,
            original: pair.clone(),
            pair,
            retained: true,
            tags: Vec::new(),
            failure: None,
            payload: None,
        }
    }

    /// Drops the item from the chain, recording why.
    pub fn discard(&mut self, tag: impl Into<String>) {
        self.retained = false;
        self.tags.push(tag.into());
    }

    /// Quarantines the item: it stops flowing and carries a structured
    /// failure record. Called by the executor; stages signal failure by
    /// returning [`StageOutcome::Retryable`] / [`StageOutcome::Fatal`].
    pub(crate) fn quarantine(&mut self, record: FailureRecord) {
        self.retained = false;
        self.tags.push(format!("quarantined:{}", record.stage));
        self.failure = Some(record);
    }

    /// `true` when the item was quarantined by a failing stage.
    pub fn is_quarantined(&self) -> bool {
        self.failure.is_some()
    }

    /// The item's terminal state. Exactly one disposition holds per item,
    /// which is what makes retained/dropped/quarantined an exact partition
    /// of the input.
    pub fn disposition(&self) -> Disposition {
        if self.failure.is_some() {
            Disposition::Quarantined
        } else if self.retained {
            Disposition::Retained
        } else {
            Disposition::Dropped
        }
    }

    /// Attaches a label without changing retention.
    pub fn tag(&mut self, tag: impl Into<String>) {
        self.tags.push(tag.into());
    }

    /// `true` if any attached tag equals `tag`.
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.iter().any(|t| t == tag)
    }

    /// Stores a typed payload (e.g. a revision record), replacing any
    /// previous one.
    pub fn set_payload<T: Any + Send>(&mut self, value: T) {
        self.payload = Some(Box::new(value));
    }

    /// Borrows the payload if one of type `T` is attached.
    pub fn payload_ref<T: Any>(&self) -> Option<&T> {
        self.payload.as_deref().and_then(|p| p.downcast_ref())
    }

    /// Removes and returns the payload if it has type `T`.
    pub fn take_payload<T: Any>(&mut self) -> Option<T> {
        let boxed = self.payload.take()?;
        match boxed.downcast::<T>() {
            Ok(v) => Some(*v),
            Err(other) => {
                self.payload = Some(other);
                None
            }
        }
    }

    /// `true` when some stage rewrote the instruction.
    pub fn instruction_changed(&self) -> bool {
        self.pair.instruction != self.original.instruction
    }

    /// `true` when some stage rewrote the response.
    pub fn response_changed(&self) -> bool {
        self.pair.response != self.original.response
    }
}

/// Per-(stage, item) context handed to [`Stage::process`].
pub struct StageCtx<'a> {
    /// RNG seeded for exactly this (stage, item) — identical draws no
    /// matter which worker thread runs the item.
    pub rng: StdRng,
    /// Worker-local tokenisation memo: a pair that several stages measure
    /// is tokenised once per worker, not once per stage.
    pub cache: &'a mut TokenCache,
    pub(crate) counters: &'a mut BTreeMap<String, u64>,
}

impl StageCtx<'_> {
    /// Increments the stage counter `key` by one.
    pub fn bump(&mut self, key: &str) {
        self.add(key, 1);
    }

    /// Adds `n` to the stage counter `key`.
    pub fn add(&mut self, key: &str, n: u64) {
        *self.counters.entry(key.to_string()).or_insert(0) += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coachlm_data::Category;

    fn pair(id: u64) -> InstructionPair {
        InstructionPair::new(id, "Say hi.", "Hi there.", Category(0))
    }

    #[test]
    fn payload_round_trips_and_preserves_on_type_mismatch() {
        let mut item = StageItem::new(0, pair(7));
        item.set_payload(42u64);
        assert_eq!(item.payload_ref::<u64>(), Some(&42));
        assert_eq!(item.take_payload::<String>(), None);
        assert_eq!(item.take_payload::<u64>(), Some(42));
        assert_eq!(item.take_payload::<u64>(), None);
    }

    #[test]
    fn discard_records_reason() {
        let mut item = StageItem::new(3, pair(9));
        assert!(item.retained);
        assert_eq!(item.disposition(), Disposition::Retained);
        item.discard("filter:safety");
        assert!(!item.retained);
        assert!(item.has_tag("filter:safety"));
        assert_eq!(item.disposition(), Disposition::Dropped);
    }

    #[test]
    fn quarantine_is_a_distinct_disposition() {
        use crate::fault::{FailureKind, FailureRecord};
        let mut item = StageItem::new(0, pair(2));
        item.quarantine(FailureRecord {
            stage: "coach-revise".into(),
            attempts: 3,
            error: "injected: transient".into(),
            kind: FailureKind::RetriesExhausted,
        });
        assert!(!item.retained);
        assert!(item.is_quarantined());
        assert_eq!(item.disposition(), Disposition::Quarantined);
        assert!(item.has_tag("quarantined:coach-revise"));
        assert_eq!(item.failure.as_ref().unwrap().attempts, 3);
    }

    #[test]
    fn change_tracking_compares_against_original() {
        let mut item = StageItem::new(0, pair(1));
        assert!(!item.response_changed());
        item.pair.response = "Hello!".into();
        assert!(item.response_changed());
        assert!(!item.instruction_changed());
    }
}
