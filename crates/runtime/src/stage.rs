//! The [`Stage`] trait and the per-item state it operates on.

use coachlm_data::InstructionPair;
use coachlm_text::token::TokenCache;
use rand::rngs::StdRng;
use std::any::Any;
use std::collections::BTreeMap;

/// One step of a dataset-processing chain.
///
/// A stage sees each pair once, in isolation, and may rewrite it, discard
/// it, tag it, or attach a payload. Stages hold no per-item mutable state
/// (`&self`, `Sync`): all per-item randomness comes from the context's RNG,
/// which the executor seeds per (stage, item) so results are independent of
/// thread count and processing order.
pub trait Stage: Sync {
    /// Stage name, used in reports and to salt the per-item RNG.
    fn name(&self) -> &str;

    /// Processes one item.
    fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>);
}

/// A pair flowing through a stage chain, with its bookkeeping.
pub struct StageItem {
    /// Position in the input dataset (output order preserves it).
    pub index: usize,
    /// The pair as it entered the chain, untouched.
    pub original: InstructionPair,
    /// The pair in its current, possibly rewritten, state.
    pub pair: InstructionPair,
    /// `false` once a stage discards the item; later stages skip it.
    pub retained: bool,
    /// Labels stages attach (e.g. a filter's exclusion reason).
    pub tags: Vec<String>,
    payload: Option<Box<dyn Any + Send>>,
}

impl StageItem {
    /// Wraps a pair for processing.
    pub fn new(index: usize, pair: InstructionPair) -> Self {
        StageItem {
            index,
            original: pair.clone(),
            pair,
            retained: true,
            tags: Vec::new(),
            payload: None,
        }
    }

    /// Drops the item from the chain, recording why.
    pub fn discard(&mut self, tag: impl Into<String>) {
        self.retained = false;
        self.tags.push(tag.into());
    }

    /// Attaches a label without changing retention.
    pub fn tag(&mut self, tag: impl Into<String>) {
        self.tags.push(tag.into());
    }

    /// `true` if any attached tag equals `tag`.
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.iter().any(|t| t == tag)
    }

    /// Stores a typed payload (e.g. a revision record), replacing any
    /// previous one.
    pub fn set_payload<T: Any + Send>(&mut self, value: T) {
        self.payload = Some(Box::new(value));
    }

    /// Borrows the payload if one of type `T` is attached.
    pub fn payload_ref<T: Any>(&self) -> Option<&T> {
        self.payload.as_deref().and_then(|p| p.downcast_ref())
    }

    /// Removes and returns the payload if it has type `T`.
    pub fn take_payload<T: Any>(&mut self) -> Option<T> {
        let boxed = self.payload.take()?;
        match boxed.downcast::<T>() {
            Ok(v) => Some(*v),
            Err(other) => {
                self.payload = Some(other);
                None
            }
        }
    }

    /// `true` when some stage rewrote the instruction.
    pub fn instruction_changed(&self) -> bool {
        self.pair.instruction != self.original.instruction
    }

    /// `true` when some stage rewrote the response.
    pub fn response_changed(&self) -> bool {
        self.pair.response != self.original.response
    }
}

/// Per-(stage, item) context handed to [`Stage::process`].
pub struct StageCtx<'a> {
    /// RNG seeded for exactly this (stage, item) — identical draws no
    /// matter which worker thread runs the item.
    pub rng: StdRng,
    /// Worker-local tokenisation memo: a pair that several stages measure
    /// is tokenised once per worker, not once per stage.
    pub cache: &'a mut TokenCache,
    pub(crate) counters: &'a mut BTreeMap<String, u64>,
}

impl StageCtx<'_> {
    /// Increments the stage counter `key` by one.
    pub fn bump(&mut self, key: &str) {
        self.add(key, 1);
    }

    /// Adds `n` to the stage counter `key`.
    pub fn add(&mut self, key: &str, n: u64) {
        *self.counters.entry(key.to_string()).or_insert(0) += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coachlm_data::Category;

    fn pair(id: u64) -> InstructionPair {
        InstructionPair::new(id, "Say hi.", "Hi there.", Category(0))
    }

    #[test]
    fn payload_round_trips_and_preserves_on_type_mismatch() {
        let mut item = StageItem::new(0, pair(7));
        item.set_payload(42u64);
        assert_eq!(item.payload_ref::<u64>(), Some(&42));
        assert_eq!(item.take_payload::<String>(), None);
        assert_eq!(item.take_payload::<u64>(), Some(42));
        assert_eq!(item.take_payload::<u64>(), None);
    }

    #[test]
    fn discard_records_reason() {
        let mut item = StageItem::new(3, pair(9));
        assert!(item.retained);
        item.discard("filter:safety");
        assert!(!item.retained);
        assert!(item.has_tag("filter:safety"));
    }

    #[test]
    fn change_tracking_compares_against_original() {
        let mut item = StageItem::new(0, pair(1));
        assert!(!item.response_changed());
        item.pair.response = "Hello!".into();
        assert!(item.response_changed());
        assert!(!item.instruction_changed());
    }
}
