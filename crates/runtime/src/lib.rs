//! # coachlm-runtime
//!
//! The shared dataset-processing runtime: a [`Stage`] trait over
//! instruction pairs and a deterministic pipeline-parallel streaming
//! [`Executor`] that runs a stage chain over a dataset or a continuous
//! stream of arrivals.
//!
//! Every processing path in the workspace — cleaning, CoachLM revision,
//! expert filtering and annotation, baseline construction, ChatGPT-judge
//! rating — is expressed as a chain of stages and executed here, instead
//! of each module hand-rolling its own thread pool and RNG plumbing.
//!
//! The core ([`stream`], PR 6) is a streaming pipeline: the chain is
//! partitioned into contiguous stage groups, each group gets one or more
//! worker lanes, and chunks of items flow group-to-group over bounded
//! sequenced queues with backpressure — no batch barriers. The classic
//! batch entry points ([`Executor::run`], [`Executor::run_journaled`])
//! are thin wrappers feeding a bounded [`StreamSource::batch`] source;
//! [`Executor::run_stream`] additionally accepts a [`Feed::Sustained`]
//! arrival model with deterministic admission-control shedding.
//!
//! Determinism contract: for a fixed stage chain, input, feed, and seed,
//! the output items and every [`StageReport`]'s item counts and counters
//! are identical for **any** thread count and queue capacity. This holds
//! because
//!
//! * each (stage, item) gets its own RNG seeded from
//!   `chain seed × stage salt × pair id` — no sequential stream is shared
//!   across items, so neither chunk boundaries nor the claim order of the
//!   dynamic scheduler can shift draws;
//! * items flow through every queue in input order and are processed in
//!   place, so output order is input order by construction;
//! * counters merge by summation, which is commutative, and per-lane
//!   token caches merge order-independently;
//! * epoch-keyed state (circuit breakers, journal commit frames) follows
//!   **logical epochs** — fixed windows of input *indices* — rather than
//!   wall-clock batches, so it evolves identically at any parallelism.
//!
//! Because of this, the scheduling policy ([`Schedule`]) is purely a
//! wall-clock knob: the default [`Schedule::Dynamic`] hands small chunks
//! through the queues (lanes within a group stay balanced, groups overlap
//! within an epoch), while [`Schedule::Static`] moves one epoch per
//! handoff. Both produce identical output.
//!
//! Only the wall-clock field ([`StageReport::cpu_time`], which is measured
//! stage-body time and nothing else) and the token-cache hit/miss tallies
//! (caches are per-worker) vary across runs; the simulated channels
//! ([`StageReport::backoff_time`], [`StageReport::latency_time`]) are
//! deterministic and disjoint from it, with
//! [`StageReport::total_time`] as their sum.
//!
//! ## Fault tolerance
//!
//! Stage failures are first-class rather than panics: [`Stage::process`]
//! returns a [`StageOutcome`] (`Ok`/`Drop`/`Retryable`/`Fatal`), the
//! executor retries transient failures under a [`RetryPolicy`] with
//! deterministic simulated exponential backoff, and items that exhaust
//! retries or fail permanently land in a [`Quarantine`] channel with a
//! structured [`FailureRecord`] instead of crashing the run or silently
//! vanishing. A seeded [`FaultPlan`] can inject transient errors, permanent
//! errors, and latency spikes into any stage, decided purely per
//! `(stage, item, attempt)` — so chaos runs obey the same determinism
//! contract as clean runs: every item's terminal
//! [`Disposition`] (retained / dropped / quarantined) is identical at any
//! thread count and under either schedule, and the three sets always
//! partition the input exactly (`tests/fault_injection.rs` property-tests
//! this).
//!
//! ## Durability & overload protection
//!
//! Three further layers make long production sweeps survivable:
//!
//! * **Crash recovery** — [`Executor::run_journaled`] appends one
//!   checksummed record per committed item to a [`Journal`];
//!   [`Executor::resume_from`] replays the recovered records without
//!   re-executing them and re-enters the batch at the exact frontier,
//!   reproducing every deterministic output field bit-for-bit versus an
//!   uninterrupted run. Torn tail records are detected and dropped on
//!   [`Journal::open`].
//! * **Deadlines** — a stage may declare a simulated-time budget via
//!   [`Stage::deadline`]; injected latency beyond it becomes a
//!   `Retryable` timeout feeding the retry/quarantine machinery, so a
//!   latency storm degrades instead of hanging.
//! * **Circuit breaking** — with a [`BreakerPolicy`] configured, each
//!   stage gets a deterministic breaker over its quarantine/timeout
//!   outcomes, keyed to logical epochs; a tripped stage passes items
//!   through unrevised (the paper's §III-B1 leakage fallback), counted in
//!   [`StageReport::degraded`] and surfaced as [`BreakerEvent`]s, with a
//!   deterministic half-open probe schedule for recovery.
//! * **Admission control** — a [`Feed::Sustained`] source sheds arrivals
//!   that find the admission backlog full, deterministically (a pure
//!   function of the feed parameters), surfaced in
//!   [`ChainOutput::shed`].
//!
//! ## Duplicate-heavy traffic
//!
//! Two layers (PR 7) make internet-scale, duplicate-heavy deployments
//! affordable without touching the determinism contract:
//!
//! * **Revision caching** — with a [`CachePolicy`] configured
//!   ([`ExecutorConfig::revision_cache`]), a content-addressed [`cache`]
//!   memoizes each item's full chain result; duplicates skip the whole
//!   stage topology and replay the memoized journal-visible effects at
//!   the sink, digest-identical to the uncached content-keyed run. An
//!   optional bounded-edit-distance near-match tier trades exactness for
//!   hit rate (hits tagged `cache:near`). Tallies surface in
//!   [`ChainOutput::revision_cache`].
//! * **Sharding** — [`shard::run_sharded`] partitions the input by
//!   content hash across N worker shards (each with its own journal and
//!   cache via [`shard::run_sharded_journaled`]) and deterministically
//!   merges their outputs, reports, and quarantines back into one
//!   [`ChainOutput`]-shaped result, order-independently.
//!
//! ## Process isolation
//!
//! [`supervise::run_sharded_process`] (PR 10) runs the same hash-
//! partitioned shards as crash-contained **worker processes**: each
//! shard's work is shipped to a re-invocation of the current binary over
//! checksummed pipes, supervised through deterministic restart (resuming
//! from the worker's own journal), failover of exhausted shards, and
//! poison-item bisection into [`Quarantine`]. Merged output is digest-
//! identical to [`shard::run_sharded_journaled`] under any kill schedule.

#![deny(unused_must_use)]
#![warn(missing_docs)]

mod breaker;
pub mod cache;
mod executor;
mod fault;
mod journal;
mod report;
pub mod shard;
pub mod simtime;
mod stage;
pub mod stream;
pub mod supervise;

pub use breaker::{BreakerEvent, BreakerPolicy, BreakerState};
pub use cache::{CachePolicy, CacheStats};
pub use executor::{adaptive_chunk_size, ChainOutput, Executor, ExecutorConfig, Schedule};
pub use fault::{
    FailureKind, FailureRecord, Fault, FaultPlan, Quarantine, QuarantinedPair, RetryPolicy,
};
pub use journal::{Journal, JournalError};
pub use report::StageReport;
pub use shard::{ShardConfigError, ShardError, ShardStats, ShardedOutput};
pub use stage::{Disposition, Stage, StageCtx, StageItem, StageOutcome};
pub use stream::{Feed, StreamSource};
pub use supervise::{
    run_sharded_process, worker_boot, ChaosPlan, JobFactory, KillMode, ParentKill,
    ShardSupervision, SuperviseError, SuperviseOptions, SupervisedJob, SupervisedOutput,
    WorkerKill,
};
