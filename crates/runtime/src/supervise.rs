//! Process-isolated shard supervision: crash-contained worker processes
//! with deterministic restart, failover, and poison-item bisection.
//!
//! [`crate::shard`] runs its shards as threads in one address space, so a
//! single abort, OOM kill, or panic-past-the-guard in any shard takes the
//! whole run down. This module is the same sharded driver with a process
//! boundary around each shard: [`run_sharded_process`] re-invokes the
//! current binary in a hidden worker mode (one child process per shard),
//! feeds each worker its content-hash partition over stdin, and collects
//! results over stdout — and because every worker journals to its own
//! write-ahead log, a crashed worker is simply restarted and resumes at
//! its exact frontier. The merged output is digest-identical to the
//! in-process [`shard::run_sharded_journaled`] path at any shard count,
//! kill point, and restart count.
//!
//! ## Wire protocol
//!
//! Both pipe directions reuse the journal's checksummed length-prefixed
//! frame format (`len:u32le crc:u64le payload`, fxhash64 checksum — see
//! [`crate::Journal`]'s module docs). Parent → worker:
//!
//! ```text
//! JOB   (0x10)  proto version, chain name, opaque job params, shard
//!               coordinates, attempt number, journal path, fsync policy,
//!               chaos kill spec, pair count
//! PAIR  (0x11)  one input pair (id, category, instruction, response)
//! END   (0x12)  end of input
//! ```
//!
//! Worker → parent:
//!
//! ```text
//! 1     journal header — worker-local bookkeeping, ignored
//! 2     one committed item trace — the journal record itself, teed onto
//!       the pipe at append time (ahead of fsync batching)
//! EPOCH (0x16)  watchdog heartbeat: epoch index + item frames so far
//! DONE  (0x18)  run digest, replayed count, item total, cache tallies,
//!               modeled makespan (nanos)
//! ```
//!
//! The parent parses the stream incrementally ([`crate::journal`]'s
//! tri-state frame scanner): a torn tail at pipe EOF is truncated exactly
//! like a torn journal tail, and a CRC-rejected or malformed frame is
//! treated as a worker crash — the child is killed and the attempt
//! restarted. Worker death is detected by exit status, closed pipe, or
//! the epoch watchdog: every `epoch_length` item frames the worker emits
//! an `EPOCH` frame carrying its logical epoch index and cumulative item
//! frame count, and the parent cross-checks both against its own frame
//! count. Epochs are windows of *frame counts*, never wall clocks, so
//! supervision stays deterministic and replayable (a worker that silently
//! hangs without closing its pipe is the one failure mode this cannot
//! see; in deployment an external process-level timeout covers it).
//!
//! ## Restart, failover, bisection
//!
//! Each shard gets a bounded restart budget. A restart re-spawns the
//! worker against the same journal: recovered items are backfilled onto
//! the pipe (the parent upserts idempotently), the executor replays them
//! and re-enters the batch at the frontier, and by the crash-resume
//! invariant the completed stream converges to the uninterrupted run.
//! Restarts are charged a deterministic exponential backoff in simulated
//! steps ([`ShardSupervision::backoff_steps`]) — never a wall-clock sleep.
//!
//! When a shard exhausts its budget, its unfinished items are reassigned
//! to a fresh worker slot (failover, attributed to the first surviving
//! shard). If the reassigned subset *also* keeps killing workers, a
//! poison item is assumed and the subset is bisected: each half runs
//! under a budget of one restart, halves that crash are split again, and
//! a crashing singleton is quarantined with a structured
//! [`FailureRecord`] instead of crash-looping. Retained / dropped /
//! quarantined remains an exact partition of the input.
//!
//! ## Determinism argument
//!
//! Per-item outcomes are pure functions of `(chain, pair, seed)` —
//! position- and partition-independent — so traces collected from any
//! mix of attempts, failover subsets, and bisection fragments compose:
//! the parent re-keys subset-local traces to shard-local indices
//! (re-verifying digests), rebuilds each shard's output with
//! [`Executor::replay_collected`], cross-checks the digest each cleanly
//! finished worker reported, and merges through the same
//! [`shard::merge_outputs`] the in-process driver uses. Identical
//! partitioning + identical per-item outcomes + identical merge =
//! identical digest, at any kill schedule.

use crate::cache::CacheStats;
use crate::executor::{rekey_trace, ChainOutput, Executor};
use crate::fault::{FailureKind, FailureRecord, Quarantine};
use crate::journal::{
    decode_item, encode_item, frame_bytes, scan_frame, Dec, Enc, FrameScan, ItemTrace, Journal,
    JournalError,
};
use crate::shard::{
    merge_outputs, partition_source, validate_sharding, Partitioned, ShardConfigError, ShardStats,
};
use crate::stage::Stage;
use crate::stream::StreamSource;
use crate::ExecutorConfig;
use coachlm_data::{Category, InstructionPair};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};

/// Environment variable whose presence switches the current binary into
/// worker mode (see [`worker_boot`]).
pub const ENV_WORKER: &str = "COACHLM_SUPERVISE_WORKER";

/// Wire protocol version, checked by the worker before trusting the job.
const PROTO_VERSION: u32 = 1;

/// Worker exit code for protocol/journal errors (as opposed to crashes).
const EXIT_PROTOCOL: i32 = 86;

/// Parent → worker: job descriptor.
const KIND_JOB: u8 = 0x10;
/// Parent → worker: one input pair.
const KIND_PAIR: u8 = 0x11;
/// Parent → worker: end of input.
const KIND_END: u8 = 0x12;
/// Worker → parent: watchdog heartbeat (epoch index, item frames so far).
const KIND_EPOCH: u8 = 0x16;
/// Worker → parent: completion record.
const KIND_DONE: u8 = 0x18;
/// Worker → parent: the journal's own header record kind.
const KIND_JOURNAL_HEADER: u8 = 1;
/// Worker → parent: the journal's own item record kind.
const KIND_JOURNAL_ITEM: u8 = 2;

/// A job the supervised driver can ship across a process boundary: enough
/// owned state to build the executor config and the stage chain on either
/// side. Reconstructed in the worker from `(chain, params)` by the same
/// [`JobFactory`] the parent used, so parent and worker run identical
/// semantics by construction.
pub trait SupervisedJob {
    /// The executor configuration the job runs under.
    fn config(&self) -> &ExecutorConfig;
    /// Builds the stage chain (may borrow from the job's owned state).
    fn stages<'a>(&'a self) -> Vec<Box<dyn Stage + 'a>>;
}

/// Rebuilds a [`SupervisedJob`] from a chain name and opaque parameter
/// bytes; returns `None` for unknown chains. A plain function pointer so
/// the worker can hold it before any job state exists.
pub type JobFactory = fn(&str, &[u8]) -> Option<Box<dyn SupervisedJob>>;

/// How a chaos-injected worker-side kill fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillMode {
    /// Abort cleanly between frames — the pipe ends at a frame boundary.
    Boundary,
    /// Write half of the next frame, then abort — a torn pipe tail.
    MidFrame,
    /// Emit the next frame with a corrupted checksum, then keep running
    /// to completion: proves the parent rejects CRC-invalid frames as a
    /// crash even when the process exits successfully.
    CorruptFrame,
}

/// A worker-side kill: the worker aborts itself (or corrupts its stream)
/// after emitting `after_frames` item frames, on the matching attempt.
#[derive(Debug, Clone, Copy)]
pub struct WorkerKill {
    /// Shard the kill targets.
    pub shard: usize,
    /// Attempt number the kill fires on (0 = first run).
    pub attempt: u32,
    /// Item frames the worker emits before dying.
    pub after_frames: u64,
    /// How the death manifests on the wire.
    pub mode: KillMode,
}

/// A parent-side kill: the supervisor SIGKILLs the worker after receiving
/// `after_frames` item frames — death by external force rather than by
/// the worker's own hand.
#[derive(Debug, Clone, Copy)]
pub struct ParentKill {
    /// Shard the kill targets.
    pub shard: usize,
    /// Attempt number the kill fires on (0 = first run).
    pub attempt: u32,
    /// Item frames received before the kill signal is sent.
    pub after_frames: u64,
}

/// The chaos harness's kill orchestration: which workers die, when, and
/// how. Empty by default (production runs).
#[derive(Debug, Clone, Default)]
pub struct ChaosPlan {
    /// Worker-side kills, matched by `(shard, attempt)`.
    pub worker_kills: Vec<WorkerKill>,
    /// Parent-side SIGKILLs, matched by `(shard, attempt)`.
    pub parent_kills: Vec<ParentKill>,
}

impl ChaosPlan {
    /// The worker-side kill for this shard + attempt, if any.
    fn worker_kill(&self, shard: usize, attempt: u32) -> Option<(u64, KillMode)> {
        self.worker_kills
            .iter()
            .find(|k| k.shard == shard && k.attempt == attempt)
            .map(|k| (k.after_frames, k.mode))
    }

    /// The parent-side kill for this shard + attempt, if any.
    fn parent_kill(&self, shard: usize, attempt: u32) -> Option<u64> {
        self.parent_kills
            .iter()
            .find(|k| k.shard == shard && k.attempt == attempt)
            .map(|k| k.after_frames)
    }
}

/// Supervision policy for one [`run_sharded_process`] call.
#[derive(Debug, Clone)]
pub struct SuperviseOptions {
    /// Restarts granted to each shard before its unfinished partition
    /// fails over (failover itself gets the same budget; bisection runs
    /// get one restart per fragment).
    pub max_restarts: u32,
    /// Worker journal fsync batching ([`Journal::sync_every`]): a kill
    /// loses at most this many committed-but-unsynced item frames, which
    /// the restarted worker re-executes (never loses).
    pub sync_every: usize,
    /// The chaos harness's kill schedule; empty in production.
    pub chaos: ChaosPlan,
    /// Extra environment variables set on worker processes only — the
    /// chaos harness uses this to arm failure modes in workers without
    /// changing parent-side behaviour.
    pub worker_env: Vec<(String, String)>,
}

impl Default for SuperviseOptions {
    fn default() -> Self {
        SuperviseOptions {
            max_restarts: 3,
            sync_every: 32,
            chaos: ChaosPlan::default(),
            worker_env: Vec::new(),
        }
    }
}

/// Per-shard supervision counters, surfaced next to [`ShardStats`].
#[derive(Debug, Clone, serde::Serialize)]
pub struct ShardSupervision {
    /// The shard index.
    pub shard: usize,
    /// Worker restarts across the shard's own attempts plus any failover
    /// and bisection runs resolving its partition.
    pub restarts: u32,
    /// Deterministic simulated backoff charged for those restarts
    /// (exponential in the attempt number; no wall-clock sleeps).
    pub backoff_steps: u64,
    /// Item frames received per attempt, in attempt order — the recovery
    /// timeline (a kill shows up as a short attempt followed by a longer
    /// one).
    pub frames_by_attempt: Vec<u64>,
    /// Partitions this shard absorbed from dead shards (failover credit
    /// is attributed to the first shard that finished cleanly).
    pub failed_over_in: u32,
    /// Whether this shard exhausted its restart budget and its partition
    /// had to be resolved by failover/bisection.
    pub abandoned: bool,
    /// Items from this shard's partition quarantined by poison bisection.
    pub poisoned: u32,
}

impl ShardSupervision {
    fn new(shard: usize) -> Self {
        ShardSupervision {
            shard,
            restarts: 0,
            backoff_steps: 0,
            frames_by_attempt: Vec::new(),
            failed_over_in: 0,
            abandoned: false,
            poisoned: 0,
        }
    }
}

/// A supervised multi-process run's merged result: shaped exactly like
/// [`crate::shard::ShardedOutput`], plus the supervision counters.
pub struct SupervisedOutput {
    /// The merged run, digest-identical to the in-process sharded run of
    /// the same chain/config/input (kill schedules included, as long as
    /// no poison item was quarantined by bisection).
    pub output: ChainOutput,
    /// Merged per-shard quarantines (bisected poison items included).
    pub quarantine: Quarantine,
    /// Per-shard accounting, in shard order.
    pub shards: Vec<ShardStats>,
    /// Per-shard supervision counters, in shard order.
    pub supervision: Vec<ShardSupervision>,
}

impl fmt::Debug for SupervisedOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SupervisedOutput")
            .field("items", &self.output.items.len())
            .field("digest", &self.output.digest())
            .field("shards", &self.shards)
            .field("supervision", &self.supervision)
            .finish_non_exhaustive()
    }
}

/// Why a supervised run failed outright (worker crashes are handled, not
/// errors; these are supervisor-level faults).
#[derive(Debug)]
pub enum SuperviseError {
    /// The config/feed composition cannot be sharded (see
    /// [`crate::shard::validate_sharding`]).
    Config(ShardConfigError),
    /// Collected traces could not be replayed into a shard output — the
    /// protocol delivered records inconsistent with the input.
    Journal(JournalError),
    /// Spawning or talking to worker processes failed at the OS level.
    Io(std::io::Error),
    /// The factory did not recognise the chain name.
    UnknownChain(String),
    /// A worker violated the wire protocol in a way restarting cannot
    /// repair (e.g. its reported digest contradicts the collected traces).
    Protocol(String),
}

impl fmt::Display for SuperviseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuperviseError::Config(e) => write!(f, "{e}"),
            SuperviseError::Journal(e) => write!(f, "supervised replay: {e}"),
            SuperviseError::Io(e) => write!(f, "supervised worker IO: {e}"),
            SuperviseError::UnknownChain(chain) => {
                write!(f, "job factory does not recognise chain `{chain}`")
            }
            SuperviseError::Protocol(why) => write!(f, "worker protocol violation: {why}"),
        }
    }
}

impl std::error::Error for SuperviseError {}

impl From<ShardConfigError> for SuperviseError {
    fn from(e: ShardConfigError) -> Self {
        SuperviseError::Config(e)
    }
}

impl From<JournalError> for SuperviseError {
    fn from(e: JournalError) -> Self {
        SuperviseError::Journal(e)
    }
}

impl From<std::io::Error> for SuperviseError {
    fn from(e: std::io::Error) -> Self {
        SuperviseError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Call this first in `main()` of any binary that drives
/// [`run_sharded_process`]: when the process was spawned as a supervised
/// worker (the [`ENV_WORKER`] variable is set), it runs the worker
/// protocol over stdin/stdout and exits; otherwise it returns immediately
/// and the binary proceeds as the parent.
pub fn worker_boot(factory: JobFactory) {
    if std::env::var_os(ENV_WORKER).is_none() {
        return;
    }
    let code = match worker_main(factory) {
        Ok(()) => 0,
        Err(_) => EXIT_PROTOCOL,
    };
    std::process::exit(code);
}

/// The worker's decoded job descriptor.
struct JobSpec {
    chain: String,
    params: Vec<u8>,
    journal_path: PathBuf,
    sync_every: usize,
    kill: Option<(u64, KillMode)>,
    pair_count: u64,
}

/// The worker's half of the wire: a chaos-aware frame writer shared by
/// the journal tee and the control-frame emitters.
struct WireOut {
    out: std::io::Stdout,
    item_frames: u64,
    epoch_every: u64,
    epochs: u64,
    kill: Option<(u64, KillMode)>,
}

impl WireOut {
    fn new(kill: Option<(u64, KillMode)>, epoch_every: u64) -> WireOut {
        WireOut {
            out: std::io::stdout(),
            item_frames: 0,
            epoch_every: epoch_every.max(1),
            epochs: 0,
            kill,
        }
    }

    /// A failed pipe write means the parent is gone; there is nothing a
    /// worker can do but die (the supervisor side treats it as a crash).
    fn write_all(&mut self, bytes: &[u8]) {
        if self.out.write_all(bytes).is_err() {
            std::process::abort();
        }
    }

    /// Emits one complete frame, applying the chaos kill spec at item
    /// frames and interleaving watchdog epoch frames.
    fn emit(&mut self, frame: &[u8], is_item: bool) {
        if is_item {
            if let Some((after, mode)) = self.kill {
                if self.item_frames >= after {
                    match mode {
                        KillMode::Boundary => {
                            let _ = self.out.flush();
                            std::process::abort();
                        }
                        KillMode::MidFrame => {
                            let cut = (frame.len() / 2).max(1).min(frame.len() - 1);
                            self.write_all(&frame[..cut]);
                            let _ = self.out.flush();
                            std::process::abort();
                        }
                        KillMode::CorruptFrame => {
                            // Flip a checksum byte and keep running: the
                            // parent must reject everything from here on
                            // even though this process will exit 0.
                            self.kill = None;
                            let mut bad = frame.to_vec();
                            if let Some(b) = bad.get_mut(4) {
                                *b ^= 0xFF;
                            }
                            self.write_all(&bad);
                            self.bump_item();
                            return;
                        }
                    }
                }
            }
        }
        self.write_all(frame);
        if is_item {
            self.bump_item();
        }
    }

    /// Counts an item frame and emits the watchdog heartbeat at logical
    /// epoch boundaries (frame-count windows — no wall clocks).
    fn bump_item(&mut self) {
        self.item_frames += 1;
        if self.item_frames.is_multiple_of(self.epoch_every) {
            self.epochs += 1;
            let mut enc = Enc::new();
            enc.u8(KIND_EPOCH);
            enc.u64(self.epochs);
            enc.u64(self.item_frames);
            let frame = frame_bytes(&enc.into_payload());
            self.write_all(&frame);
        }
    }

    fn flush(&mut self) {
        if self.out.flush().is_err() {
            std::process::abort();
        }
    }
}

/// Locks the shared wire; a poisoned lock means another thread died
/// mid-write, which in a worker is just another crash to be supervised.
fn lock_wire(wire: &Arc<Mutex<WireOut>>) -> std::sync::MutexGuard<'_, WireOut> {
    match wire.lock() {
        Ok(guard) => guard,
        Err(_) => std::process::abort(),
    }
}

fn protocol(why: impl Into<String>) -> SuperviseError {
    SuperviseError::Protocol(why.into())
}

/// Reads one complete frame from the already-fully-read stdin buffer.
fn take_frame<'a>(input: &'a [u8], pos: &mut usize) -> Result<&'a [u8], SuperviseError> {
    match scan_frame(input, *pos) {
        FrameScan::Frame { payload, end } => {
            *pos = end;
            Ok(payload)
        }
        FrameScan::NeedMore => Err(protocol("worker stdin ended mid-frame")),
        FrameScan::Corrupt => Err(protocol("worker stdin frame failed its checksum")),
    }
}

fn decode_job(payload: &[u8]) -> Result<JobSpec, SuperviseError> {
    let mut dec = Dec::new(payload);
    let spec = (|| {
        if dec.u8()? != KIND_JOB || dec.u32()? != PROTO_VERSION {
            return None;
        }
        let chain = dec.str()?;
        let params = dec.bytes()?;
        let _shard = dec.u32()?;
        let _shards_total = dec.u32()?;
        let _attempt = dec.u32()?;
        let journal_path = PathBuf::from(dec.str()?);
        let sync_every = dec.u32()? as usize;
        let kill = match dec.u8()? {
            0 => {
                let _ = dec.u64()?;
                None
            }
            1 => Some((dec.u64()?, KillMode::Boundary)),
            2 => Some((dec.u64()?, KillMode::MidFrame)),
            3 => Some((dec.u64()?, KillMode::CorruptFrame)),
            _ => return None,
        };
        let pair_count = dec.u64()?;
        dec.exhausted().then_some(JobSpec {
            chain,
            params,
            journal_path,
            sync_every,
            kill,
            pair_count,
        })
    })();
    spec.ok_or_else(|| protocol("malformed JOB frame"))
}

fn encode_pair(pair: &InstructionPair) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.u8(KIND_PAIR);
    enc.u64(pair.id);
    enc.u32(u32::from(pair.category.0));
    enc.str(&pair.instruction);
    enc.str(&pair.response);
    enc.into_payload()
}

fn decode_pair(dec: &mut Dec<'_>) -> Option<InstructionPair> {
    let id = dec.u64()?;
    let category = u16::try_from(dec.u32()?).ok()?;
    let instruction = dec.str()?;
    let response = dec.str()?;
    dec.exhausted().then_some(InstructionPair {
        id,
        instruction,
        response,
        category: Category(category),
    })
}

/// The worker protocol body: parse the job, resume the journal, tee every
/// committed record onto stdout, run the chain, report completion.
fn worker_main(factory: JobFactory) -> Result<(), SuperviseError> {
    let mut input = Vec::new();
    std::io::stdin().lock().read_to_end(&mut input)?;
    let mut pos = 0usize;
    let spec = decode_job(take_frame(&input, &mut pos)?)?;
    let mut pairs = Vec::with_capacity(usize::try_from(spec.pair_count).unwrap_or(0));
    loop {
        let payload = take_frame(&input, &mut pos)?;
        let mut dec = Dec::new(payload);
        match dec.u8() {
            Some(KIND_PAIR) => {
                let pair = decode_pair(&mut dec).ok_or_else(|| protocol("malformed PAIR frame"))?;
                pairs.push(pair);
            }
            Some(KIND_END) => break,
            _ => return Err(protocol("unexpected frame kind on worker stdin")),
        }
    }
    if pairs.len() as u64 != spec.pair_count {
        return Err(protocol("pair count mismatch on worker stdin"));
    }

    let job = factory(&spec.chain, &spec.params)
        .ok_or_else(|| SuperviseError::UnknownChain(spec.chain.clone()))?;
    let config = job.config().clone();
    let stages = job.stages();
    let mut journal = Journal::open(&spec.journal_path)?.sync_every(spec.sync_every);
    let wire = Arc::new(Mutex::new(WireOut::new(
        spec.kill,
        config.epoch_length().max(1) as u64,
    )));

    // Backfill: re-emit every journal-recovered record so the parent's
    // collection survives its own restarts without rereading our file.
    // Upserts on the parent side make this idempotent.
    {
        let mut w = lock_wire(&wire);
        for trace in journal.committed_traces().values() {
            let mut enc = Enc::new();
            enc.u8(KIND_JOURNAL_ITEM);
            encode_item(&mut enc, trace);
            let frame = frame_bytes(&enc.into_payload());
            w.emit(&frame, true);
        }
    }

    // Tee every subsequently appended journal frame (header + items) onto
    // the pipe at append time — logically committed beats durably synced,
    // so the parent's view runs ahead of the disk and a restart re-sends
    // anything the disk lost (determinism re-derives identical records).
    {
        let sink = Arc::clone(&wire);
        journal.set_tee(Box::new(move |frame: &[u8]| {
            let is_item = frame.get(12).copied() == Some(KIND_JOURNAL_ITEM);
            lock_wire(&sink).emit(frame, is_item);
        }));
    }

    let out = Executor::new(config).run_journaled(&stages, pairs, &mut journal)?;

    let mut enc = Enc::new();
    enc.u8(KIND_DONE);
    enc.u64(out.digest());
    enc.u64(out.replayed as u64);
    enc.u64(out.items.len() as u64);
    enc.u64(out.revision_cache.exact_hits);
    enc.u64(out.revision_cache.near_hits);
    enc.u64(out.revision_cache.misses);
    enc.u64(out.revision_cache.entries);
    enc.u64(u64::try_from(out.sim_elapsed.as_nanos()).unwrap_or(u64::MAX));
    let frame = frame_bytes(&enc.into_payload());
    let mut w = lock_wire(&wire);
    w.emit(&frame, false);
    w.flush();
    Ok(())
}

// ---------------------------------------------------------------------------
// Parent side
// ---------------------------------------------------------------------------

/// A worker's completion report.
#[derive(Debug, Clone, Copy)]
struct DoneFrame {
    digest: u64,
    replayed: u64,
    total: u64,
    cache: CacheStats,
    /// The worker's own modeled makespan, in nanoseconds. Replay in the
    /// parent is zero-charge, so this is the only surviving copy.
    sim_nanos: u64,
}

fn decode_done(dec: &mut Dec<'_>) -> Option<DoneFrame> {
    let digest = dec.u64()?;
    let replayed = dec.u64()?;
    let total = dec.u64()?;
    let cache = CacheStats {
        exact_hits: dec.u64()?,
        near_hits: dec.u64()?,
        misses: dec.u64()?,
        entries: dec.u64()?,
    };
    let sim_nanos = dec.u64()?;
    dec.exhausted().then_some(DoneFrame {
        digest,
        replayed,
        total,
        cache,
        sim_nanos,
    })
}

#[allow(clippy::too_many_arguments)]
fn encode_job(
    chain: &str,
    params: &[u8],
    shard: usize,
    shards_total: usize,
    attempt: u32,
    journal_path: &Path,
    sync_every: usize,
    kill: Option<(u64, KillMode)>,
    pair_count: u64,
) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.u8(KIND_JOB);
    enc.u32(PROTO_VERSION);
    enc.str(chain);
    enc.bytes(params);
    enc.u32(shard as u32);
    enc.u32(shards_total as u32);
    enc.u32(attempt);
    enc.str(&journal_path.to_string_lossy());
    enc.u32(sync_every as u32);
    match kill {
        None => {
            enc.u8(0);
            enc.u64(0);
        }
        Some((after, mode)) => {
            enc.u8(match mode {
                KillMode::Boundary => 1,
                KillMode::MidFrame => 2,
                KillMode::CorruptFrame => 3,
            });
            enc.u64(after);
        }
    }
    enc.u64(pair_count);
    enc.into_payload()
}

/// How one worker attempt ended, as seen from the supervisor.
enum AttemptEnd {
    /// DONE frame received, exit status clean, stream uncorrupted.
    Done(DoneFrame),
    /// Anything else: dead pipe, bad exit, torn/corrupt stream, watchdog
    /// mismatch, or a supervisor-inflicted kill.
    Crashed,
}

/// The supervisor's accumulated view of one shard (or subset run).
struct ShardState {
    /// Collected item traces, keyed by the run-local index.
    traces: BTreeMap<u64, ItemTrace>,
    /// Set when some attempt finished cleanly.
    done: Option<DoneFrame>,
    restarts: u32,
    backoff_steps: u64,
    frames_by_attempt: Vec<u64>,
}

/// Reaps a child after a failure path, ignoring errors (it may already be
/// dead, which is the point).
fn put_down(child: &mut Child) {
    let _ = child.kill();
    let _ = child.wait();
}

/// Spawns one worker attempt, streams it the partition, and parses its
/// result stream until EOF. Collected traces upsert into `traces` even on
/// a crashed attempt — everything before the corruption/kill point is
/// checksummed and trustworthy.
#[allow(clippy::too_many_arguments)]
fn run_attempt(
    chain: &str,
    params: &[u8],
    pairs: &[InstructionPair],
    shard: usize,
    shards_total: usize,
    attempt: u32,
    journal_path: &Path,
    sync_every: usize,
    worker_env: &[(String, String)],
    worker_kill: Option<(u64, KillMode)>,
    parent_kill: Option<u64>,
    traces: &mut BTreeMap<u64, ItemTrace>,
) -> Result<(AttemptEnd, u64), SuperviseError> {
    let exe = std::env::current_exe()?;
    let mut cmd = Command::new(exe);
    cmd.env(ENV_WORKER, "1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    for (k, v) in worker_env {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn()?;

    // Feed the whole partition, then close stdin — the worker reads its
    // input to EOF before emitting anything, so neither side can deadlock
    // on a full pipe. A write failure means the worker died mid-feed:
    // that is a crash to restart, not a supervisor error.
    {
        let Some(mut stdin) = child.stdin.take() else {
            put_down(&mut child);
            return Err(protocol("worker spawned without a stdin pipe"));
        };
        let job = encode_job(
            chain,
            params,
            shard,
            shards_total,
            attempt,
            journal_path,
            sync_every,
            worker_kill,
            pairs.len() as u64,
        );
        let fed = (|| -> std::io::Result<()> {
            stdin.write_all(&frame_bytes(&job))?;
            for pair in pairs {
                stdin.write_all(&frame_bytes(&encode_pair(pair)))?;
            }
            stdin.write_all(&frame_bytes(&[KIND_END]))?;
            stdin.flush()
        })();
        if fed.is_err() {
            put_down(&mut child);
            return Ok((AttemptEnd::Crashed, 0));
        }
    }

    let Some(mut stdout) = child.stdout.take() else {
        put_down(&mut child);
        return Err(protocol("worker spawned without a stdout pipe"));
    };

    let mut buf: Vec<u8> = Vec::new();
    let mut pos = 0usize;
    let mut item_frames = 0u64;
    let mut epochs = 0u64;
    let mut done: Option<DoneFrame> = None;
    let mut corrupt = false;
    let mut killed = false;
    let mut chunk = [0u8; 16 * 1024];
    'read: loop {
        let n = match stdout.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(_) => {
                corrupt = true;
                break;
            }
        };
        buf.extend_from_slice(&chunk[..n]);
        loop {
            match scan_frame(&buf, pos) {
                FrameScan::NeedMore => break,
                // CRC-rejected or malformed frame: treated as a crash.
                FrameScan::Corrupt => {
                    corrupt = true;
                    break 'read;
                }
                FrameScan::Frame { payload, end } => {
                    let mut dec = Dec::new(payload);
                    match dec.u8() {
                        Some(KIND_JOURNAL_HEADER) => {}
                        Some(KIND_JOURNAL_ITEM) => {
                            let Some(trace) = decode_item(&mut dec) else {
                                corrupt = true;
                                break 'read;
                            };
                            if !dec.exhausted() {
                                corrupt = true;
                                break 'read;
                            }
                            traces.insert(trace.index, trace);
                            item_frames += 1;
                            if let Some(after) = parent_kill {
                                if item_frames >= after && !killed {
                                    killed = true;
                                    let _ = child.kill();
                                }
                            }
                        }
                        // The frame-count watchdog: the worker's logical
                        // epoch must match the parent's own item count,
                        // or the stream is desynchronised — a crash.
                        Some(KIND_EPOCH) => {
                            let claim = (dec.u64(), dec.u64());
                            epochs += 1;
                            if claim != (Some(epochs), Some(item_frames)) || !dec.exhausted() {
                                corrupt = true;
                                break 'read;
                            }
                        }
                        Some(KIND_DONE) => match decode_done(&mut dec) {
                            Some(d) if d.total == pairs.len() as u64 => done = Some(d),
                            _ => {
                                corrupt = true;
                                break 'read;
                            }
                        },
                        _ => {
                            corrupt = true;
                            break 'read;
                        }
                    }
                    pos = end;
                }
            }
        }
    }
    // A torn tail past `pos` is truncated by construction: only complete,
    // checksum-valid frames were ever consumed.
    if corrupt {
        let _ = child.kill();
    }
    drop(stdout);
    let status = child.wait()?;
    let clean = done.is_some() && status.success() && !corrupt && !killed;
    match (clean, done) {
        (true, Some(d)) => Ok((AttemptEnd::Done(d), item_frames)),
        _ => Ok((AttemptEnd::Crashed, item_frames)),
    }
}

/// One shard's restart loop: bounded attempts against the same journal,
/// deterministic exponential backoff charged in simulated steps.
#[allow(clippy::too_many_arguments)]
fn run_with_restarts(
    chain: &str,
    params: &[u8],
    pairs: &[InstructionPair],
    shard: usize,
    shards_total: usize,
    journal_path: &Path,
    max_restarts: u32,
    sync_every: usize,
    worker_env: &[(String, String)],
    chaos: Option<&ChaosPlan>,
) -> Result<ShardState, SuperviseError> {
    let mut state = ShardState {
        traces: BTreeMap::new(),
        done: None,
        restarts: 0,
        backoff_steps: 0,
        frames_by_attempt: Vec::new(),
    };
    for attempt in 0..=max_restarts {
        if attempt > 0 {
            state.restarts += 1;
            state.backoff_steps += 1u64 << attempt.min(16);
        }
        let worker_kill = chaos.and_then(|c| c.worker_kill(shard, attempt));
        let parent_kill = chaos.and_then(|c| c.parent_kill(shard, attempt));
        let (end, frames) = run_attempt(
            chain,
            params,
            pairs,
            shard,
            shards_total,
            attempt,
            journal_path,
            sync_every,
            worker_env,
            worker_kill,
            parent_kill,
            &mut state.traces,
        )?;
        state.frames_by_attempt.push(frames);
        if let AttemptEnd::Done(d) = end {
            state.done = Some(d);
            break;
        }
    }
    Ok(state)
}

/// Traces and imposed failures keyed by subset-local index.
type SubsetResolution = (BTreeMap<u64, ItemTrace>, BTreeMap<u64, FailureRecord>);

/// Resolves a subset that outlived its owner shard's restart budget:
/// first a fresh failover run with a full budget, then — if workers keep
/// dying — recursive bisection of whatever remains untraced, down to the
/// poison singleton, which is quarantined with a structured failure.
/// Returns traces and imposed failures keyed by subset-local index;
/// effort counters accumulate into `effort`.
#[allow(clippy::too_many_arguments)]
fn resolve_subset(
    chain: &str,
    params: &[u8],
    subset: &[InstructionPair],
    dir: &Path,
    label: &str,
    seq: &mut u32,
    budget: u32,
    sync_every: usize,
    worker_env: &[(String, String)],
    effort: &mut ShardSupervision,
) -> Result<SubsetResolution, SuperviseError> {
    let run_id = *seq;
    *seq += 1;
    let journal_path = dir.join(format!("{label}-{run_id}.wal"));
    let state = run_with_restarts(
        chain,
        params,
        subset,
        usize::MAX,
        0,
        &journal_path,
        budget,
        sync_every,
        worker_env,
        None,
    )?;
    effort.restarts += state.restarts;
    effort.backoff_steps += state.backoff_steps;
    let mut traces = state.traces;
    let mut imposed = BTreeMap::new();
    let missing: Vec<u64> = (0..subset.len() as u64)
        .filter(|i| !traces.contains_key(i))
        .collect();
    // A clean DONE, or every item traced before the final crash: the
    // collected records cover the subset and replay reconstructs it.
    if state.done.is_some() || missing.is_empty() {
        return Ok((traces, imposed));
    }
    if subset.len() == 1 {
        imposed.insert(
            0,
            FailureRecord {
                stage: "supervise".to_string(),
                attempts: state.restarts + 1,
                error: format!(
                    "poison item: worker process died on all {} attempts; \
                     quarantined by bisection",
                    state.restarts + 1
                ),
                kind: FailureKind::Fatal,
            },
        );
        return Ok((traces, imposed));
    }
    // Bisect the untraced remainder; each half is strictly smaller than
    // the current subset, so the recursion bottoms out at singletons.
    let mid = missing.len().div_ceil(2);
    for half in [&missing[..mid], &missing[mid..]] {
        if half.is_empty() {
            continue;
        }
        let sub: Vec<InstructionPair> = half.iter().map(|&i| subset[i as usize].clone()).collect();
        let (half_traces, half_imposed) = resolve_subset(
            chain, params, &sub, dir, label, seq, 1, sync_every, worker_env, effort,
        )?;
        for (k, trace) in half_traces {
            let target = half[k as usize];
            let pair = subset[target as usize].clone();
            traces.insert(target, rekey_trace(pair, trace, target)?);
        }
        for (k, failure) in half_imposed {
            imposed.insert(half[k as usize], failure);
        }
    }
    Ok((traces, imposed))
}

/// Runs `chain` over the source hash-partitioned across `shards` crash-
/// contained **worker processes**, supervising each through restart,
/// failover, and poison bisection (see the module docs). `dir` holds one
/// write-ahead journal per worker; reusing a dir resumes a killed
/// supervised run of the same chain/params/input. The binary calling this
/// must have called [`worker_boot`] with the same `factory` at the top of
/// its `main`.
///
/// The merged output is digest-identical to
/// [`crate::shard::run_sharded_journaled`] with the same arguments, at
/// any shard count and under any kill schedule that leaves no poison
/// item (a bisected poison item is additionally quarantined, which is the
/// one deliberate divergence).
pub fn run_sharded_process(
    factory: JobFactory,
    chain: &str,
    params: &[u8],
    source: StreamSource,
    shards: usize,
    dir: &Path,
    opts: &SuperviseOptions,
) -> Result<SupervisedOutput, SuperviseError> {
    let job =
        factory(chain, params).ok_or_else(|| SuperviseError::UnknownChain(chain.to_string()))?;
    let config = job.config().clone();
    validate_sharding(&config, &source.feed)?;
    let shards = shards.max(1);
    let Partitioned {
        n,
        shed_items,
        partitions,
        global_idx,
    } = partition_source(source, shards);
    std::fs::create_dir_all(dir)?;

    // Phase 1: one supervisor thread per shard, each driving its own
    // worker-process restart loop concurrently.
    let results: Vec<Result<ShardState, SuperviseError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = partitions
            .iter()
            .enumerate()
            .map(|(s, part)| {
                let journal_path = dir.join(format!("worker-shard-{s}-of-{shards}.wal"));
                scope.spawn(move || {
                    run_with_restarts(
                        chain,
                        params,
                        part,
                        s,
                        shards,
                        &journal_path,
                        opts.max_restarts,
                        opts.sync_every,
                        &opts.worker_env,
                        Some(&opts.chaos),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });
    let mut states = Vec::with_capacity(shards);
    for result in results {
        states.push(result?);
    }

    // Phase 2: shards that exhausted their budget fail over — their
    // unfinished items run as a fresh job on a surviving worker slot,
    // bisecting down to poison items if workers keep dying.
    let mut supervision: Vec<ShardSupervision> = (0..shards).map(ShardSupervision::new).collect();
    for (s, state) in states.iter().enumerate() {
        supervision[s].restarts = state.restarts;
        supervision[s].backoff_steps = state.backoff_steps;
        supervision[s].frames_by_attempt = state.frames_by_attempt.clone();
    }
    let survivor = states.iter().position(|st| st.done.is_some());
    let mut imposed: Vec<BTreeMap<u64, FailureRecord>> = vec![BTreeMap::new(); shards];
    for s in 0..shards {
        if states[s].done.is_some() {
            continue;
        }
        supervision[s].abandoned = true;
        let part = &partitions[s];
        let missing: Vec<u64> = (0..part.len() as u64)
            .filter(|i| !states[s].traces.contains_key(i))
            .collect();
        if missing.is_empty() {
            // Every record arrived before the final crash; only the DONE
            // frame was lost, and replay covers the whole partition.
            continue;
        }
        let subset: Vec<InstructionPair> =
            missing.iter().map(|&i| part[i as usize].clone()).collect();
        let mut seq = 0u32;
        let label = format!("failover-shard-{s}");
        let mut effort = ShardSupervision::new(s);
        let (sub_traces, sub_imposed) = resolve_subset(
            chain,
            params,
            &subset,
            dir,
            &label,
            &mut seq,
            opts.max_restarts,
            opts.sync_every,
            &opts.worker_env,
            &mut effort,
        )?;
        supervision[s].restarts += effort.restarts;
        supervision[s].backoff_steps += effort.backoff_steps;
        supervision[s].poisoned += sub_imposed.len() as u32;
        if let Some(surv) = survivor {
            supervision[surv].failed_over_in += 1;
        }
        for (k, trace) in sub_traces {
            let target = missing[k as usize];
            let pair = part[target as usize].clone();
            states[s]
                .traces
                .insert(target, rekey_trace(pair, trace, target)?);
        }
        for (k, failure) in sub_imposed {
            imposed[s].insert(missing[k as usize], failure);
        }
    }

    // Phase 3: rebuild each shard's output from the collected traces
    // (plus imposed poison failures), cross-check cleanly finished
    // workers' digests, and merge through the shared deterministic merge.
    let stages = job.stages();
    let executor = Executor::new(config);
    let mut outputs = Vec::with_capacity(shards);
    for (s, state) in states.iter_mut().enumerate() {
        let mut out = executor.replay_collected(
            &stages,
            partitions[s].clone(),
            std::mem::take(&mut state.traces),
            &imposed[s],
        )?;
        if let Some(d) = &state.done {
            if d.digest != out.digest() {
                return Err(protocol(format!(
                    "shard {s}: worker-reported digest {:#x} contradicts the digest \
                     reconstructed from its own records ({:#x})",
                    d.digest,
                    out.digest()
                )));
            }
            // Mirror the worker-observed tallies so a clean supervised
            // run reports the same per-shard accounting as the
            // in-process driver (replayed = journal-replayed items, not
            // the parent-side reconstruction count).
            out.replayed = usize::try_from(d.replayed).unwrap_or(usize::MAX);
            out.revision_cache = d.cache;
            out.sim_elapsed = std::time::Duration::from_nanos(d.sim_nanos);
        }
        outputs.push(out);
    }
    let merged = merge_outputs(&stages, shed_items, &global_idx, n, outputs);
    Ok(SupervisedOutput {
        output: merged.output,
        quarantine: merged.quarantine,
        shards: merged.shards,
        supervision,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(id: u64) -> InstructionPair {
        InstructionPair {
            id,
            instruction: format!("ünïcode q{id}"),
            response: format!("a{id}"),
            category: Category((id % 5) as u16),
        }
    }

    #[test]
    fn job_and_pair_frames_round_trip() {
        let job = encode_job(
            "chaos/basic",
            &[1, 2, 3],
            2,
            4,
            7,
            Path::new("/tmp/x.wal"),
            16,
            Some((42, KillMode::MidFrame)),
            9,
        );
        let spec = decode_job(&job).expect("round trip");
        assert_eq!(spec.chain, "chaos/basic");
        assert_eq!(spec.params, vec![1, 2, 3]);
        assert_eq!(spec.journal_path, PathBuf::from("/tmp/x.wal"));
        assert_eq!(spec.sync_every, 16);
        assert_eq!(spec.kill, Some((42, KillMode::MidFrame)));
        assert_eq!(spec.pair_count, 9);

        let p = pair(3);
        let encoded = encode_pair(&p);
        let mut dec = Dec::new(&encoded);
        assert_eq!(dec.u8(), Some(KIND_PAIR));
        assert_eq!(decode_pair(&mut dec), Some(p));
    }

    #[test]
    fn malformed_job_frames_are_rejected() {
        assert!(decode_job(&[]).is_err());
        assert!(decode_job(&[KIND_PAIR]).is_err());
        let mut job = encode_job("c", &[], 0, 1, 0, Path::new("j.wal"), 1, None, 0);
        job.push(0xEE); // trailing garbage in a checksummed frame
        assert!(decode_job(&job).is_err());
    }

    #[test]
    fn chaos_plan_matches_on_shard_and_attempt() {
        let plan = ChaosPlan {
            worker_kills: vec![WorkerKill {
                shard: 1,
                attempt: 0,
                after_frames: 5,
                mode: KillMode::Boundary,
            }],
            parent_kills: vec![ParentKill {
                shard: 0,
                attempt: 2,
                after_frames: 9,
            }],
        };
        assert_eq!(plan.worker_kill(1, 0), Some((5, KillMode::Boundary)));
        assert_eq!(plan.worker_kill(1, 1), None);
        assert_eq!(plan.worker_kill(0, 0), None);
        assert_eq!(plan.parent_kill(0, 2), Some(9));
        assert_eq!(plan.parent_kill(0, 0), None);
    }

    #[test]
    fn take_frame_distinguishes_torn_from_corrupt() {
        let good = frame_bytes(&[KIND_END]);
        let mut pos = 0;
        assert_eq!(
            take_frame(&good, &mut pos).expect("whole frame"),
            &[KIND_END]
        );
        let mut torn = good.clone();
        torn.extend_from_slice(&frame_bytes(&[KIND_END])[..5]);
        let mut pos = good.len();
        assert!(take_frame(&torn, &mut pos).is_err());
        let mut corrupt = good;
        corrupt[4] ^= 0xFF;
        let mut pos = 0;
        assert!(take_frame(&corrupt, &mut pos).is_err());
    }
}
