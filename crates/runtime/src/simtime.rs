//! The runtime's time module — the single place in the workspace allowed
//! to touch wall-clock primitives.
//!
//! Lint rule D1 bans `Instant::now`/`SystemTime::now`/`thread::sleep`
//! everywhere except this file, so every time source a stage or report can
//! observe is funnelled through here. Two kinds of time exist in the
//! runtime:
//!
//! * **Measured time** — how long a stage body actually took. Informational
//!   only: it feeds [`crate::StageReport::cpu_time`] and throughput numbers,
//!   and is the one field the determinism contract explicitly excludes.
//!   [`Stopwatch`] is the only way to obtain it.
//! * **Simulated time** — backoff and injected latency. These are computed
//!   [`Duration`] values (never slept), so chaos runs replicate bit-for-bit
//!   and a retry storm costs no wall clock. They are accounted by the
//!   executor directly and never pass through this module.

use std::time::{Duration, Instant};

/// A monotonic stopwatch for measuring stage-body execution time.
///
/// This is deliberately the only wall-clock handle in the workspace: code
/// that holds a `Stopwatch` can measure a span but cannot branch on the
/// absolute time of day, which keeps outputs independent of when a run
/// happens.
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts measuring now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}
