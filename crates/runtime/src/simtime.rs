//! The runtime's time module — the single place in the workspace allowed
//! to touch wall-clock primitives.
//!
//! Lint rule D1 bans `Instant::now`/`SystemTime::now`/`thread::sleep`
//! everywhere except this file, so every time source a stage or report can
//! observe is funnelled through here. Two kinds of time exist in the
//! runtime:
//!
//! * **Measured time** — how long a stage body actually took. Informational
//!   only: it feeds [`crate::StageReport::cpu_time`] and throughput numbers,
//!   and is the one field the determinism contract explicitly excludes.
//!   [`Stopwatch`] is the only way to obtain it.
//! * **Simulated time** — backoff, injected latency, and per-stage
//!   deadline budgets ([`crate::Stage::deadline`]). These are computed
//!   [`Duration`] values (never slept), so chaos runs replicate bit-for-bit
//!   and a retry storm costs no wall clock. They are accounted by the
//!   executor directly and never pass through this module. Deadlines in
//!   particular compare *simulated* latency against the budget — never a
//!   [`Stopwatch`] reading — so whether an attempt times out is a pure
//!   function of the fault plan, not of host speed.
//!
//! The crash journal ([`crate::Journal`]) obtains no time at all: records
//! carry only deterministic outcomes, and lint rule D1 additionally bans
//! filesystem timestamp reads (`SystemTime`, `UNIX_EPOCH`, metadata
//! `modified()`/`created()`/`accessed()`) outside this module so journal
//! code cannot smuggle a wall-clock dependency in through its file IO.

use std::time::{Duration, Instant};

/// A monotonic stopwatch for measuring stage-body execution time.
///
/// This is deliberately the only wall-clock handle in the workspace: code
/// that holds a `Stopwatch` can measure a span but cannot branch on the
/// absolute time of day, which keeps outputs independent of when a run
/// happens.
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts measuring now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}
