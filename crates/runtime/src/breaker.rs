//! Deterministic per-stage circuit breaking with degraded passthrough.
//!
//! The §IV-A deployment cannot let one misbehaving stage stall the whole
//! data-management pipeline: when a stage starts quarantining or timing
//! out a large share of its items, the platform's fallback is the paper's
//! §III-B1 leakage behaviour — pairs pass through *unrevised* rather than
//! not at all. This module supplies the breaker state machine; the
//! executor drives it.
//!
//! Determinism is the hard requirement, and wall-clock-based breakers
//! (trip after N failures in the last T seconds) are inherently racy. The
//! executor therefore runs breaker-enabled chains *epoch-synchronously*:
//! the input index space is cut into fixed windows of
//! [`BreakerPolicy::window`] items, every stage's mode for an epoch is
//! decided before any item in it runs, and breaker state advances only at
//! epoch boundaries from the epoch's tallied outcomes. Because epochs are
//! defined by item *index* (not arrival time or worker), the whole
//! evolution — trip points, half-open probes, recoveries — is a pure
//! function of (chain, input, seed, policy) and replays identically at
//! any thread count, under either schedule, and across a crash/resume.

use serde::{Deserialize, Serialize};

/// When and how a stage's circuit breaker trips and recovers.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerPolicy {
    /// Epoch size in items: outcomes are tallied and state advances every
    /// `window` input indices (floored at 1).
    pub window: usize,
    /// Failure fraction of an epoch's *executed* items that trips a
    /// closed breaker (quarantines and exhausted timeouts count; items
    /// passed through degraded do not execute and count toward nothing).
    pub trip_ratio: f64,
    /// Minimum failures in the epoch before the ratio can trip, so a tiny
    /// tail epoch cannot trip on one unlucky item.
    pub min_failures: usize,
    /// Epochs an open breaker stays fully open before probing (floored
    /// at 1).
    pub cooldown_epochs: usize,
    /// Items probed per half-open epoch: the first `probes` indices of
    /// the epoch execute, the rest pass through degraded (floored at 1).
    pub probes: usize,
}

impl BreakerPolicy {
    /// The default policy: 128-item epochs, trip at ≥ 50 % failures (at
    /// least 8), one cooldown epoch, 8 probes per half-open epoch.
    pub fn new() -> Self {
        BreakerPolicy {
            window: 128,
            trip_ratio: 0.5,
            min_failures: 8,
            cooldown_epochs: 1,
            probes: 8,
        }
    }

    /// Overrides the epoch size.
    pub fn window(mut self, items: usize) -> Self {
        self.window = items.max(1);
        self
    }

    /// Overrides the tripping failure fraction.
    pub fn trip_ratio(mut self, ratio: f64) -> Self {
        self.trip_ratio = ratio;
        self
    }

    /// Overrides the minimum failures per epoch required to trip.
    pub fn min_failures(mut self, n: usize) -> Self {
        self.min_failures = n;
        self
    }

    /// Overrides the open-state cooldown, in epochs.
    pub fn cooldown_epochs(mut self, n: usize) -> Self {
        self.cooldown_epochs = n.max(1);
        self
    }

    /// Overrides the number of half-open probe items per epoch.
    pub fn probes(mut self, n: usize) -> Self {
        self.probes = n.max(1);
        self
    }

    /// Feeds the policy into a journal fingerprint: a resume under a
    /// different breaker policy would evolve differently, so it is
    /// rejected up front.
    pub(crate) fn fingerprint_into(&self, h: &mut impl std::hash::Hasher) {
        h.write_usize(self.window);
        h.write_u64(self.trip_ratio.to_bits());
        h.write_usize(self.min_failures);
        h.write_usize(self.cooldown_epochs);
        h.write_usize(self.probes);
    }
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy::new()
    }
}

/// The classic three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Normal operation: every item executes.
    Closed,
    /// Tripped: every item passes through degraded (unrevised) while the
    /// cooldown runs down.
    Open,
    /// Probing: the first [`BreakerPolicy::probes`] items of each epoch
    /// execute; their outcomes decide between reclosing and reopening.
    HalfOpen,
}

/// One recorded breaker transition, deterministic under the contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakerEvent {
    /// Name of the stage whose breaker moved.
    pub stage: String,
    /// Epoch index at whose boundary the transition happened (the epoch
    /// covers input indices `[epoch × window, (epoch + 1) × window)`).
    pub epoch: usize,
    /// State during that epoch.
    pub from: BreakerState,
    /// State entering the next epoch.
    pub to: BreakerState,
}

/// How one stage treats the items of one epoch. Decided before the epoch
/// runs, from breaker state alone, so the decision is identical no matter
/// which worker asks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StageMode {
    /// Execute every item.
    Execute,
    /// Pass every item through unprocessed.
    Degrade,
    /// Execute items with input index below `until`; degrade the rest.
    Probe {
        /// First degraded index (epoch start + probe count).
        until: usize,
    },
}

impl StageMode {
    /// Whether the item at `index` executes under this mode.
    pub(crate) fn executes(self, index: usize) -> bool {
        match self {
            StageMode::Execute => true,
            StageMode::Degrade => false,
            StageMode::Probe { until } => index < until,
        }
    }
}

/// One stage's breaker: policy plus mutable state, advanced once per
/// epoch by the executor.
#[derive(Debug, Clone)]
pub(crate) struct Breaker {
    policy: BreakerPolicy,
    state: BreakerState,
    cooldown_left: usize,
}

impl Breaker {
    /// A closed breaker under `policy`.
    pub(crate) fn new(policy: BreakerPolicy) -> Self {
        Breaker {
            policy,
            state: BreakerState::Closed,
            cooldown_left: 0,
        }
    }

    /// The mode for the epoch starting at input index `epoch_start`.
    pub(crate) fn mode(&self, epoch_start: usize) -> StageMode {
        match self.state {
            BreakerState::Closed => StageMode::Execute,
            BreakerState::Open => StageMode::Degrade,
            BreakerState::HalfOpen => StageMode::Probe {
                until: epoch_start.saturating_add(self.policy.probes),
            },
        }
    }

    /// Advances state from one epoch's tally: `executed` items actually
    /// ran the stage body, `failures` of them ended quarantined (retries
    /// exhausted — including timeout storms — or fatal). Returns the
    /// transition, if any.
    pub(crate) fn observe(
        &mut self,
        executed: usize,
        failures: usize,
    ) -> Option<(BreakerState, BreakerState)> {
        let from = self.state;
        let to = match self.state {
            BreakerState::Closed => {
                if failures >= self.policy.min_failures.max(1)
                    && executed > 0
                    && failures as f64 >= self.policy.trip_ratio * executed as f64
                {
                    self.cooldown_left = self.policy.cooldown_epochs.max(1);
                    BreakerState::Open
                } else {
                    BreakerState::Closed
                }
            }
            BreakerState::Open => {
                self.cooldown_left = self.cooldown_left.saturating_sub(1);
                if self.cooldown_left == 0 {
                    BreakerState::HalfOpen
                } else {
                    BreakerState::Open
                }
            }
            BreakerState::HalfOpen => {
                if executed == 0 {
                    // No probe reached the stage (everything filtered or
                    // quarantined earlier): no evidence, keep probing.
                    BreakerState::HalfOpen
                } else if failures == 0 {
                    BreakerState::Closed
                } else {
                    self.cooldown_left = self.policy.cooldown_epochs.max(1);
                    BreakerState::Open
                }
            }
        };
        self.state = to;
        (from != to).then_some((from, to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> BreakerPolicy {
        BreakerPolicy::new()
            .window(10)
            .trip_ratio(0.5)
            .min_failures(3)
            .cooldown_epochs(2)
            .probes(4)
    }

    #[test]
    fn full_cycle_closed_open_halfopen_closed() {
        let mut b = Breaker::new(policy());
        assert_eq!(b.state, BreakerState::Closed);
        // Healthy epoch: stays closed, no event.
        assert_eq!(b.observe(10, 0), None);
        // 6/10 failures ≥ ratio and ≥ min_failures: trips.
        assert_eq!(
            b.observe(10, 6),
            Some((BreakerState::Closed, BreakerState::Open))
        );
        // Two cooldown epochs: one silent, then half-open.
        assert_eq!(b.observe(0, 0), None);
        assert_eq!(b.state, BreakerState::Open);
        assert_eq!(
            b.observe(0, 0),
            Some((BreakerState::Open, BreakerState::HalfOpen))
        );
        // Clean probes reclose it.
        assert_eq!(
            b.observe(4, 0),
            Some((BreakerState::HalfOpen, BreakerState::Closed))
        );
    }

    #[test]
    fn failed_probes_reopen_with_a_fresh_cooldown() {
        let mut b = Breaker::new(policy());
        b.observe(10, 9);
        b.observe(0, 0);
        b.observe(0, 0);
        assert_eq!(b.state, BreakerState::HalfOpen);
        assert_eq!(
            b.observe(4, 1),
            Some((BreakerState::HalfOpen, BreakerState::Open))
        );
        // The reopen restarts the full cooldown.
        assert_eq!(b.observe(0, 0), None);
        assert_eq!(
            b.observe(0, 0),
            Some((BreakerState::Open, BreakerState::HalfOpen))
        );
    }

    #[test]
    fn halfopen_without_evidence_keeps_probing() {
        let mut b = Breaker::new(policy().cooldown_epochs(1));
        b.observe(10, 8);
        b.observe(0, 0);
        assert_eq!(b.state, BreakerState::HalfOpen);
        // Epochs where no probe reached the stage leave it half-open.
        assert_eq!(b.observe(0, 0), None);
        assert_eq!(b.observe(0, 0), None);
        assert_eq!(b.state, BreakerState::HalfOpen);
    }

    #[test]
    fn small_tail_epochs_cannot_trip_below_min_failures() {
        let mut b = Breaker::new(policy());
        // 2/2 = 100 % failed, but below min_failures: stays closed.
        assert_eq!(b.observe(2, 2), None);
        assert_eq!(b.state, BreakerState::Closed);
        // Ratio below threshold never trips either.
        assert_eq!(b.observe(10, 4), None);
        assert_eq!(b.state, BreakerState::Closed);
    }

    #[test]
    fn probe_schedule_is_a_pure_function_of_the_epoch() {
        let mut b = Breaker::new(policy());
        assert_eq!(b.mode(40), StageMode::Execute);
        b.observe(10, 8);
        assert_eq!(b.mode(50), StageMode::Degrade);
        b.observe(0, 0);
        b.observe(0, 0);
        // Half-open: exactly the first `probes` indices of the epoch run.
        assert_eq!(b.mode(70), StageMode::Probe { until: 74 });
        let m = b.mode(70);
        assert!(m.executes(70) && m.executes(73));
        assert!(!m.executes(74) && !m.executes(79));
        // Asking twice changes nothing: mode() is read-only.
        assert_eq!(b.mode(70), StageMode::Probe { until: 74 });
    }

    #[test]
    fn policy_floors_defend_degenerate_configs() {
        let p = BreakerPolicy::new().window(0).cooldown_epochs(0).probes(0);
        assert_eq!(p.window, 1);
        assert_eq!(p.cooldown_epochs, 1);
        assert_eq!(p.probes, 1);
    }
}
