//! The pipeline-parallel streaming core.
//!
//! Items flow through the stage chain over bounded, *sequenced* queues:
//! the chain is partitioned into contiguous **stage groups**, each group
//! gets one or more worker **lanes**, and chunks of items move from group
//! to group in strict input order — stage *k+1* processes item *i* while
//! stage *k* processes item *i+1*. There are no batch barriers; the only
//! synchronisation points are the bounded queues themselves
//! (backpressure) and the deterministic **logical epochs** described
//! below.
//!
//! ## Logical epochs
//!
//! A logical epoch is a fixed window of input *indices* (the breaker
//! policy's `window` when a breaker is configured, the config's
//! `epoch_len` otherwise). Every slot — executed, dropped, quarantined,
//! shed, or replayed from a journal — flows through every queue in index
//! order, so each stage group observes epoch boundaries locally and
//! sequentially: breaker tallies close and state transitions fire at
//! exactly the same indices as the epoch-synchronous batch executor did,
//! which is what keeps streaming runs digest-identical to the reference
//! order at any thread count, queue capacity, or schedule. The sink
//! commits journal frames in index order and fsyncs at epoch boundaries,
//! so `resume_from` re-enters at the exact frontier.
//!
//! ## Virtual time
//!
//! Wall-clock throughput depends on the host; the streaming report
//! instead carries a *modeled* elapsed time computed by the sink from
//! each stage's declared [`Stage::service_time`], the configured lane
//! allocation, and the deterministic backoff/latency channels. The
//! recurrence is the classic pipelined multi-server one: an item starts
//! on a group when both the item is ready (previous group done, or its
//! arrival time under a sustained feed) and one of the group's lanes is
//! free. The result is deterministic for a fixed config and is excluded
//! from the output digest (it legitimately varies with the thread
//! count, which the digest must not).
//!
//! ## Admission control
//!
//! A [`Feed::Sustained`] source models continuous arrivals at a fixed
//! rate against a declared drain rate: a fluid backlog accumulates at
//! the front of the pipe and items arriving while it exceeds the
//! configured capacity are **shed** — discarded up front with a
//! `shed:admission` tag, surfaced in [`ChainOutput::shed`]. Shedding is
//! a pure function of the feed parameters (never of thread count or
//! queue capacity), so sustained runs obey the same determinism
//! contract as batch runs, and shed decisions journal and replay like
//! any other disposition.

use crate::breaker::{Breaker, BreakerEvent, BreakerPolicy, StageMode};
use crate::cache::{content_key, plan_hits, CachePolicy, CacheStats, SlotHit};
use crate::executor::{adaptive_chunk_size, item_digest, item_seed, JournalSession, Schedule};
use crate::fault::{FailureKind, FailureRecord, Fault, FaultPlan, RetryPolicy};
use crate::journal::{ItemTrace, StageTrace};
use crate::report::StageReport;
use crate::simtime::Stopwatch;
use crate::stage::{Disposition, Stage, StageCtx, StageItem, StageOutcome};
use coachlm_data::InstructionPair;
use coachlm_text::fxhash::FxHashMap;
use coachlm_text::token::TokenCache;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::hash::Hasher;
use std::ops::Range;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// How items enter a streaming run.
#[derive(Debug, Clone)]
pub enum Feed {
    /// The whole input is available up front (the classic batch case).
    /// Never sheds.
    Batch,
    /// Items arrive continuously at a fixed rate against a declared
    /// drain capacity; arrivals that find the admission backlog full are
    /// shed. All three parameters are part of the run's fingerprint, and
    /// shedding depends on nothing else — not threads, not queues.
    Sustained {
        /// Mean arrivals per second (item `i` arrives at `i / rate`).
        rate_per_sec: f64,
        /// Declared steady-state drain rate of the pipeline, items/sec.
        /// Callers derive this from the chain's modeled service times
        /// (see [`ChainOutput::sim_elapsed`]) or measure it offline.
        drain_per_sec: f64,
        /// Admission backlog capacity, in items. Arrivals beyond it shed.
        backlog_capacity: usize,
    },
}

impl Feed {
    /// Folds the feed into a run fingerprint: shed decisions are part of
    /// run outcomes, so a journal written under one feed must not resume
    /// under another.
    pub(crate) fn fingerprint_into(&self, h: &mut impl Hasher) {
        match self {
            Feed::Batch => h.write_u8(0),
            Feed::Sustained {
                rate_per_sec,
                drain_per_sec,
                backlog_capacity,
            } => {
                h.write_u8(1);
                h.write_u64(rate_per_sec.to_bits());
                h.write_u64(drain_per_sec.to_bits());
                h.write_u64(*backlog_capacity as u64);
            }
        }
    }
}

/// A source for a streaming run: the pairs plus how they arrive.
#[derive(Debug, Clone)]
pub struct StreamSource {
    /// The input pairs, in index order.
    pub pairs: Vec<InstructionPair>,
    /// The arrival model.
    pub feed: Feed,
}

impl StreamSource {
    /// A batch source: everything available at time zero, nothing shed.
    pub fn batch(pairs: Vec<InstructionPair>) -> Self {
        StreamSource {
            pairs,
            feed: Feed::Batch,
        }
    }

    /// A sustained-traffic source (see [`Feed::Sustained`]).
    pub fn sustained(
        pairs: Vec<InstructionPair>,
        rate_per_sec: f64,
        drain_per_sec: f64,
        backlog_capacity: usize,
    ) -> Self {
        StreamSource {
            pairs,
            feed: Feed::Sustained {
                rate_per_sec,
                drain_per_sec,
                backlog_capacity,
            },
        }
    }
}

/// One item in flight, with everything the pipeline accumulates on it.
pub(crate) struct Slot {
    pub(crate) item: StageItem,
    /// Building journal record (live slots under a session only).
    pub(crate) trace: Option<ItemTrace>,
    /// `Some` for items replayed from a journal: the recorded per-stage
    /// deltas, consumed for report/breaker tallies instead of execution.
    pub(crate) replay: Option<Vec<StageTrace>>,
    /// Virtual arrival time, nanos (0 under a batch feed).
    arrival: u64,
    /// Modeled service charge per stage group, nanos, filled as the slot
    /// flows; the sink runs the virtual-time recurrence over these.
    charge: Vec<u64>,
    /// Shed at admission (already discarded, flows through untouched).
    pub(crate) shed: bool,
    /// Determinism key: the per-(stage, item) RNG seeds and fault rolls
    /// key on this. The pair id normally; the content fingerprint in
    /// content-keyed runs, so identical content behaves identically.
    pub(crate) key: u64,
    /// Set by the revision-cache pre-pass: skip execution and replay the
    /// representative's effects at the sink.
    pub(crate) hit: Option<SlotHit>,
}

/// The empty per-item journal record a live slot builds as it flows.
/// Also force-attached to cache representatives in un-journaled runs so
/// their per-stage deltas are captured for hit replay.
fn fresh_trace(item: &StageItem) -> ItemTrace {
    ItemTrace {
        index: item.index as u64,
        pair_id: item.pair.id,
        disposition: 0,
        instruction: None,
        response: None,
        tags: Vec::new(),
        failure: None,
        digest: 0,
        stages: Vec::new(),
    }
}

impl Slot {
    pub(crate) fn live(item: StageItem, journaling: bool) -> Self {
        let trace = journaling.then(|| fresh_trace(&item));
        Slot {
            item,
            trace,
            replay: None,
            arrival: 0,
            charge: Vec::new(),
            shed: false,
            key: 0,
            hit: None,
        }
    }

    pub(crate) fn replayed(item: StageItem, stages: Vec<StageTrace>) -> Self {
        Slot {
            item,
            trace: None,
            replay: Some(stages),
            arrival: 0,
            charge: Vec::new(),
            shed: false,
            key: 0,
            hit: None,
        }
    }
}

/// A run of consecutive slots moving through the pipe as one unit; the
/// claim/handoff granularity of the queues.
struct Chunk {
    seq: u64,
    slots: Vec<Slot>,
}

/// A bounded, sequenced chunk queue: pushes carry an explicit sequence
/// number and pops release chunks in strictly increasing sequence order,
/// so a multi-lane producer group can finish chunks out of order while
/// the consumer side still sees input order. Blocking on both sides
/// (bounded window) provides backpressure; `abort` unblocks everything
/// when a worker panics so the pipeline tears down instead of hanging.
struct OrderedQueue {
    state: Mutex<QueueState>,
    can_push: Condvar,
    can_pop: Condvar,
}

struct QueueState {
    /// Sequence number of the next chunk to pop.
    base: u64,
    /// Window of pending chunks: `window[i]` holds seq `base + i`.
    window: VecDeque<Option<Chunk>>,
    /// Max chunks admitted past `base` (the bounded capacity).
    cap: u64,
    /// Total chunks that will ever flow; pops past it return `None`.
    total: u64,
    aborted: bool,
}

impl OrderedQueue {
    fn new(cap: usize, total: u64) -> Self {
        OrderedQueue {
            state: Mutex::new(QueueState {
                base: 0,
                window: VecDeque::new(),
                cap: cap.max(1) as u64,
                total,
                aborted: false,
            }),
            can_push: Condvar::new(),
            can_pop: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Blocks until seq fits in the bounded window, then parks the chunk.
    /// Returns `false` (chunk dropped) after an abort.
    fn push(&self, chunk: Chunk) -> bool {
        let mut st = self.lock();
        while !st.aborted && chunk.seq >= st.base + st.cap {
            st = self
                .can_push
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        if st.aborted {
            return false;
        }
        let at = (chunk.seq - st.base) as usize;
        if st.window.len() <= at {
            st.window.resize_with(at + 1, || None);
        }
        st.window[at] = Some(chunk);
        self.can_pop.notify_all();
        true
    }

    /// Blocks until the next in-order chunk is available; `None` once the
    /// stream is exhausted or the pipeline aborted.
    fn pop(&self) -> Option<Chunk> {
        let mut st = self.lock();
        loop {
            if st.aborted {
                return None;
            }
            if st.base >= st.total {
                // Wake sibling lanes parked behind us so they observe
                // end-of-stream too.
                self.can_pop.notify_all();
                return None;
            }
            if let Some(front) = st.window.front_mut() {
                if let Some(chunk) = front.take() {
                    st.window.pop_front();
                    st.base += 1;
                    self.can_push.notify_all();
                    self.can_pop.notify_all();
                    return Some(chunk);
                }
            }
            st = self
                .can_pop
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    fn abort(&self) {
        self.lock().aborted = true;
        self.can_push.notify_all();
        self.can_pop.notify_all();
    }
}

/// Aborts every queue if the owning worker unwinds, so sibling workers
/// blocked on a queue wake up and the scope join can re-raise the panic
/// instead of deadlocking.
struct AbortOnPanic<'a>(&'a [OrderedQueue]);

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            for q in self.0 {
                q.abort();
            }
        }
    }
}

/// One contiguous run of stages sharing a lane pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct GroupPlan {
    pub(crate) stages: Range<usize>,
    pub(crate) lanes: usize,
}

/// The pipeline shape for a run: contiguous stage groups and their lane
/// counts. Worker lanes sum to the configured thread count; the same
/// shape drives both the real OS threads and the virtual-time model, so
/// the modeled speedup is the speedup of the topology actually built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Topology {
    pub(crate) groups: Vec<GroupPlan>,
}

impl Topology {
    pub(crate) fn total_lanes(&self) -> usize {
        self.groups.iter().map(|g| g.lanes).sum()
    }
}

/// Partitions `service.len()` stages into `min(threads, stages)`
/// contiguous groups and allocates the `threads` lanes across them
/// proportionally to modeled service time (each group keeps at least
/// one). `single_lane` (set when a breaker is configured) pins every
/// group to one lane so per-stage epoch evolution stays sequential.
pub(crate) fn plan_topology(service: &[u64], threads: usize, single_lane: bool) -> Topology {
    let s = service.len();
    let threads = threads.max(1);
    if s == 0 {
        return Topology { groups: Vec::new() };
    }
    let mut groups: Vec<GroupPlan> = Vec::new();
    if threads >= s {
        for k in 0..s {
            groups.push(GroupPlan {
                stages: k..k + 1,
                lanes: 1,
            });
        }
        if !single_lane {
            // Hand the surplus lanes to the heaviest per-lane groups,
            // one at a time (deterministic tie-break: lowest index).
            for _ in 0..threads - s {
                let mut best = 0usize;
                for g in 1..groups.len() {
                    let (a, b) = (&groups[best], &groups[g]);
                    // service/lanes comparison without division:
                    // pick g when service[g]*lanes[best] > service[best]*lanes[g].
                    let sa = service[a.stages.start] as u128 * b.lanes as u128;
                    let sb = service[b.stages.start] as u128 * a.lanes as u128;
                    if sb > sa {
                        best = g;
                    }
                }
                groups[best].lanes += 1;
            }
        }
    } else {
        // Fewer lanes than stages: balance contiguous groups by total
        // service so the bottleneck group stays as light as possible.
        let total: u128 = service.iter().map(|&x| x as u128).sum();
        let mut start = 0usize;
        let mut acc: u128 = 0;
        let mut remaining_groups = threads;
        let mut remaining_total = total;
        for (k, &sv) in service.iter().enumerate() {
            acc += sv as u128;
            let stages_left = s - k - 1;
            let target = remaining_total / remaining_groups.max(1) as u128;
            let must_close = stages_left < remaining_groups - 1;
            if remaining_groups > 0 && (acc >= target || must_close) && k + 1 > start {
                groups.push(GroupPlan {
                    stages: start..k + 1,
                    lanes: 1,
                });
                start = k + 1;
                remaining_total = remaining_total.saturating_sub(acc);
                acc = 0;
                remaining_groups -= 1;
            }
        }
        if start < s {
            match groups.last_mut() {
                Some(last) => last.stages.end = s,
                None => groups.push(GroupPlan {
                    stages: 0..s,
                    lanes: 1,
                }),
            }
        }
    }
    Topology { groups }
}

/// Everything the streaming engine needs, borrowed once per run.
pub(crate) struct StreamEnv<'a, 'b, 'j> {
    pub(crate) stages: &'a [Box<dyn Stage + 'b>],
    pub(crate) salts: &'a [u64],
    pub(crate) deadlines: &'a [Option<Duration>],
    /// Modeled per-stage service time, nanos (virtual-time model only).
    pub(crate) service: &'a [u64],
    /// Per-stage iteration budget for looping stages (≥ 1).
    pub(crate) budgets: &'a [u32],
    pub(crate) seed: u64,
    pub(crate) plan: &'a FaultPlan,
    pub(crate) retry: &'a RetryPolicy,
    pub(crate) breaker: Option<&'a BreakerPolicy>,
    /// Logical epoch length, items (breaker window, or `epoch_len`).
    pub(crate) window: usize,
    pub(crate) session: Option<&'a JournalSession<'j>>,
    /// Key per-item randomness on content fingerprints instead of pair
    /// ids (see [`crate::cache`]). Forced on by a revision cache.
    pub(crate) content_keyed: bool,
    /// Revision-cache policy, if caching is enabled for this run.
    pub(crate) cache: Option<&'a CachePolicy>,
}

/// Per-stage accumulation local to one worker lane.
#[derive(Default)]
struct StageStats {
    items_in: usize,
    items_out: usize,
    quarantined: usize,
    degraded: usize,
    retries: u64,
    iterations: u64,
    faults: u64,
    timeouts: u64,
    counters: BTreeMap<String, u64>,
    time: Duration,
    backoff: Duration,
    latency: Duration,
}

/// Folds one lane's per-stage accumulation into the stage's report.
/// `cpu_time` takes only measured body time; the simulated channels stay
/// disjoint (see [`StageReport`]).
fn merge_stage_stats(report: &mut StageReport, st: StageStats) {
    report.items_in += st.items_in;
    report.items_out += st.items_out;
    report.quarantined += st.quarantined;
    report.degraded += st.degraded;
    report.retries += st.retries;
    report.iterations += st.iterations;
    report.faults_injected += st.faults;
    report.timeouts += st.timeouts;
    report.cpu_time += st.time;
    report.backoff_time += st.backoff;
    report.latency_time += st.latency;
    for (key, v) in st.counters {
        *report.counters.entry(key).or_insert(0) += v;
    }
}

/// Folds one replayed item's recorded stage delta into the stage's
/// report. Replayed items contribute no measured `cpu_time` — that
/// channel is explicitly outside the determinism contract.
fn merge_trace_delta(report: &mut StageReport, e: &StageTrace) {
    report.items_in += 1;
    report.items_out += usize::from(e.retained_after);
    report.quarantined += usize::from(e.quarantined);
    report.degraded += usize::from(e.degraded);
    report.retries += u64::from(e.retries);
    report.iterations += u64::from(e.iterations);
    report.faults_injected += e.faults;
    report.timeouts += u64::from(e.timeouts);
    report.backoff_time += Duration::from_nanos(e.backoff_nanos);
    report.latency_time += Duration::from_nanos(e.latency_nanos);
    for (key, v) in &e.counters {
        *report.counters.entry(key.clone()).or_insert(0) += v;
    }
}

/// What one worker lane hands back when its stream runs dry.
struct LaneOut {
    /// `(stage index, report delta)` for the lane's stages.
    reports: Vec<(usize, StageReport)>,
    /// `(stage index, event)` — populated only under a breaker, where
    /// the group runs single-lane.
    events: Vec<(usize, BreakerEvent)>,
    cache: TokenCache,
}

/// The streaming replacement for the old per-segment worker: processes
/// chunks for one stage group, detecting logical-epoch boundaries from
/// the item indices flowing past and driving the group's breakers
/// exactly as the epoch-synchronous batch loop did.
struct GroupWorker<'e, 'a, 'b, 'j> {
    env: &'e StreamEnv<'a, 'b, 'j>,
    group: usize,
    range: Range<usize>,
    /// `seed ^ salt` per stage, hoisted out of the per-item loop (the
    /// per-item seed is then a single multiply-xor).
    seed_base: Vec<u64>,
    breakers: Option<Vec<Breaker>>,
    modes: Vec<StageMode>,
    epoch: usize,
    epoch_open: bool,
    executed: Vec<usize>,
    failures: Vec<usize>,
    stats: Vec<StageStats>,
    replay_reports: Vec<StageReport>,
    events: Vec<(usize, BreakerEvent)>,
    cache: TokenCache,
    scratch: BTreeMap<String, u64>,
}

impl<'e, 'a, 'b, 'j> GroupWorker<'e, 'a, 'b, 'j> {
    fn new(env: &'e StreamEnv<'a, 'b, 'j>, group: usize, range: Range<usize>) -> Self {
        let len = range.len();
        let breakers = env
            .breaker
            .map(|policy| (0..len).map(|_| Breaker::new(policy.clone())).collect());
        let seed_base = range.clone().map(|k| env.seed ^ env.salts[k]).collect();
        GroupWorker {
            env,
            group,
            range: range.clone(),
            seed_base,
            breakers,
            modes: vec![StageMode::Execute; len],
            epoch: 0,
            epoch_open: false,
            executed: vec![0; len],
            failures: vec![0; len],
            stats: (0..len).map(|_| StageStats::default()).collect(),
            replay_reports: range
                .map(|k| StageReport {
                    stage: env.stages[k].name().to_string(),
                    ..StageReport::default()
                })
                .collect(),
            events: Vec::new(),
            cache: TokenCache::new(),
            scratch: BTreeMap::new(),
        }
    }

    fn open_epoch(&mut self, epoch: usize) {
        self.epoch = epoch;
        self.epoch_open = true;
        if let Some(bs) = &self.breakers {
            let start = epoch * self.env.window;
            for (j, b) in bs.iter().enumerate() {
                self.modes[j] = b.mode(start);
            }
        }
    }

    /// Closes the current epoch: feeds the tallies to the breakers (in
    /// stage order, matching the batch loop) and records transitions.
    fn close_epoch(&mut self) {
        if let Some(bs) = self.breakers.as_mut() {
            for (j, b) in bs.iter_mut().enumerate() {
                if let Some((from, to)) = b.observe(self.executed[j], self.failures[j]) {
                    let k = self.range.start + j;
                    self.events.push((
                        k,
                        BreakerEvent {
                            stage: self.env.stages[k].name().to_string(),
                            epoch: self.epoch,
                            from,
                            to,
                        },
                    ));
                }
            }
        }
        self.executed.iter_mut().for_each(|x| *x = 0);
        self.failures.iter_mut().for_each(|x| *x = 0);
        self.epoch_open = false;
    }

    fn process_chunk(&mut self, chunk: &mut Chunk) {
        for slot in &mut chunk.slots {
            self.on_slot(slot);
        }
    }

    fn on_slot(&mut self, slot: &mut Slot) {
        let index = slot.item.index;
        let epoch = index / self.env.window;
        if !self.epoch_open {
            self.open_epoch(epoch);
        }
        while self.epoch < epoch {
            let next = self.epoch + 1;
            self.close_epoch();
            self.open_epoch(next);
        }
        // Cache hit: the whole stage-group topology is skipped. The slot
        // carries zero charge (a hit is free in virtual time) and the
        // sink replays the representative's effects. Hits never coexist
        // with breakers, so there are no tallies to advance here.
        if slot.hit.is_some() {
            return;
        }
        if let Some(traces) = &slot.replay {
            for e in traces {
                let k = e.stage as usize;
                if !self.range.contains(&k) {
                    continue;
                }
                let j = k - self.range.start;
                if !e.degraded {
                    self.executed[j] += 1;
                }
                if e.quarantined {
                    self.failures[j] += 1;
                }
                merge_trace_delta(&mut self.replay_reports[j], e);
            }
            return;
        }
        self.run_slot(slot);
    }

    /// The per-(stage, item) attempt loop, unchanged in semantics from
    /// the batch executor: RNG seeded per (stage, item), fault rolls per
    /// (stage, item, attempt), compute-then-commit rollback on failures.
    fn run_slot(&mut self, slot: &mut Slot) {
        let env = self.env;
        let inert = env.plan.is_inert();
        let det_key = slot.key;
        let item = &mut slot.item;
        let mut virt: u64 = 0;
        for (j, k) in self.range.clone().enumerate() {
            if !item.retained {
                break;
            }
            let stage = &env.stages[k];
            let stats = &mut self.stats[j];
            stats.items_in += 1;
            // Degraded passthrough: the stage's breaker is open (or this
            // index is past the half-open probe budget), so the item
            // flows on unrevised — the paper's §III-B1 leakage fallback.
            if !self.modes[j].executes(item.index) {
                item.tag(format!("degraded:{}", stage.name()));
                stats.degraded += 1;
                stats.items_out += 1;
                if let Some(t) = slot.trace.as_mut() {
                    t.stages.push(StageTrace {
                        stage: k as u32,
                        degraded: true,
                        retained_after: true,
                        quarantined: false,
                        retries: 0,
                        iterations: 0,
                        faults: 0,
                        timeouts: 0,
                        backoff_nanos: 0,
                        latency_nanos: 0,
                        counters: Vec::new(),
                    });
                }
                continue;
            }
            let rng_seed = item_seed(self.seed_base[j], det_key);
            let deadline = env.deadlines[k];
            let iter_budget = env.budgets[k].max(1);
            let (mut t_retries, mut t_timeouts) = (0u32, 0u32);
            let (mut t_iterations, mut t_faults) = (0u32, 0u64);
            let (mut t_time, mut t_backoff, mut t_latency) =
                (Duration::ZERO, Duration::ZERO, Duration::ZERO);
            let mut body_runs: u64 = 0;
            let mut quarantined_here = false;
            // Iteration loop for looping stages (`StageOutcome::Again`).
            // Each committed pass gets its own RNG stream (iteration 0
            // uses the historical per-(stage, item) seed unchanged, so
            // single-pass stages keep their digests) and fresh fault
            // rolls: `roll_idx` advances monotonically across retries
            // *and* iterations so no pass re-reads an earlier draw. The
            // retry budget resets per iteration — each pass is a
            // committed unit of work with its own attempt machinery.
            let mut iter: u32 = 0;
            let mut roll_idx: u32 = 0;
            'iterating: loop {
                let iter_seed = rng_seed ^ u64::from(iter).wrapping_mul(0x9E6D_63AD_4F5C_2E91);
                let mut attempt: u32 = 0;
                loop {
                    let fault = if inert {
                        None
                    } else {
                        env.plan.roll(env.salts[k], det_key, roll_idx)
                    };
                    let outcome = match fault {
                        Some(Fault::Permanent) => {
                            t_faults += 1;
                            StageOutcome::fatal("injected: permanent")
                        }
                        Some(Fault::Transient) => {
                            t_faults += 1;
                            StageOutcome::retryable("injected: transient")
                        }
                        other => {
                            let timed_out = if let Some(Fault::Latency(spike)) = other {
                                t_faults += 1;
                                match deadline {
                                    Some(budget) if spike > budget => {
                                        t_latency += budget;
                                        t_timeouts += 1;
                                        Some(StageOutcome::retryable(format!(
                                            "timeout: injected {spike:?} latency exceeded the \
                                             {budget:?} budget"
                                        )))
                                    }
                                    _ => {
                                        t_latency += spike;
                                        None
                                    }
                                }
                            } else {
                                None
                            };
                            match timed_out {
                                Some(o) => o,
                                None => {
                                    let mut ctx = StageCtx {
                                        rng: StdRng::seed_from_u64(iter_seed),
                                        cache: &mut self.cache,
                                        counters: &mut self.scratch,
                                    };
                                    let watch = Stopwatch::start();
                                    let o = stage.process(item, &mut ctx);
                                    t_time += watch.elapsed();
                                    body_runs += 1;
                                    o
                                }
                            }
                        }
                    };
                    match outcome {
                        StageOutcome::Ok => {
                            t_iterations += 1;
                            break 'iterating;
                        }
                        StageOutcome::Again => {
                            t_iterations += 1;
                            iter += 1;
                            roll_idx = roll_idx.saturating_add(1);
                            if iter >= iter_budget {
                                // Budget exhausted: the pass already
                                // committed, so accept the item as-is.
                                break 'iterating;
                            }
                            continue 'iterating;
                        }
                        StageOutcome::Drop => {
                            t_iterations += 1;
                            item.discard(format!("drop:{}", stage.name()));
                            break 'iterating;
                        }
                        StageOutcome::Retryable(error) => {
                            attempt += 1;
                            roll_idx = roll_idx.saturating_add(1);
                            if attempt >= env.retry.max_attempts {
                                item.quarantine(FailureRecord {
                                    stage: stage.name().to_string(),
                                    attempts: attempt,
                                    error,
                                    kind: FailureKind::RetriesExhausted,
                                });
                                quarantined_here = true;
                                break 'iterating;
                            }
                            t_retries += 1;
                            t_backoff += env.retry.backoff_before(attempt);
                        }
                        StageOutcome::Fatal(error) => {
                            item.quarantine(FailureRecord {
                                stage: stage.name().to_string(),
                                attempts: attempt + 1,
                                error,
                                kind: FailureKind::Fatal,
                            });
                            quarantined_here = true;
                            break 'iterating;
                        }
                    }
                }
            }
            if item.retained {
                stats.items_out += 1;
            }
            if quarantined_here {
                stats.quarantined += 1;
                self.failures[j] += 1;
            }
            self.executed[j] += 1;
            stats.retries += u64::from(t_retries);
            stats.iterations += u64::from(t_iterations);
            stats.faults += t_faults;
            stats.timeouts += u64::from(t_timeouts);
            stats.time += t_time;
            stats.backoff += t_backoff;
            stats.latency += t_latency;
            virt += body_runs * env.service[k];
            virt += u64::try_from(t_backoff.as_nanos()).unwrap_or(u64::MAX);
            virt = virt.saturating_add(u64::try_from(t_latency.as_nanos()).unwrap_or(u64::MAX));
            if let Some(t) = slot.trace.as_mut() {
                t.stages.push(StageTrace {
                    stage: k as u32,
                    degraded: false,
                    retained_after: item.retained,
                    quarantined: quarantined_here,
                    retries: t_retries,
                    iterations: t_iterations,
                    faults: t_faults,
                    timeouts: t_timeouts,
                    backoff_nanos: u64::try_from(t_backoff.as_nanos()).unwrap_or(u64::MAX),
                    latency_nanos: u64::try_from(t_latency.as_nanos()).unwrap_or(u64::MAX),
                    counters: self
                        .scratch
                        .iter()
                        .map(|(key, v)| (key.clone(), *v))
                        .collect(),
                });
            }
            if !self.scratch.is_empty() {
                for (key, v) in std::mem::take(&mut self.scratch) {
                    *self.stats[j].counters.entry(key).or_insert(0) += v;
                }
            }
        }
        slot.charge[self.group] = virt;
    }

    fn finish(mut self) -> LaneOut {
        if self.epoch_open {
            self.close_epoch();
        }
        let mut reports = Vec::with_capacity(self.range.len());
        for (j, k) in self.range.clone().enumerate() {
            let mut report = std::mem::take(&mut self.replay_reports[j]);
            report.stage = self.env.stages[k].name().to_string();
            merge_stage_stats(&mut report, std::mem::take(&mut self.stats[j]));
            reports.push((k, report));
        }
        LaneOut {
            reports,
            events: self.events,
            cache: self.cache,
        }
    }
}

/// A memoized chain result: the journal-visible effects of running one
/// item through the full stage chain, captured from its representative
/// and replayed verbatim onto every cache hit.
struct RepResult {
    /// Final instruction, `None` if the chain left it unchanged.
    instruction: Option<String>,
    /// Final response, `None` if the chain left it unchanged.
    response: Option<String>,
    tags: Vec<String>,
    retained: bool,
    failure: Option<FailureRecord>,
    /// Per-stage deltas, for report tallies and the hit's journal record.
    stages: Vec<StageTrace>,
}

/// Sink-side state for revision-cache hit replay. Representatives are
/// stored only while live hits still depend on them (`uses` counts down
/// per replay), so memory is bounded by in-flight duplication, not input
/// size.
struct HitReplayer {
    /// Representative item index → live dependents remaining.
    uses: FxHashMap<usize, usize>,
    store: FxHashMap<usize, RepResult>,
    /// Per-stage report deltas contributed by hit replays; folded into
    /// the run totals at `finish`. Indexed by global stage index.
    reports: Vec<StageReport>,
}

/// The ordered consumer at the end of the pipe: collects items in index
/// order, finalizes and appends journal records, fsyncs at logical-epoch
/// boundaries, and runs the virtual-time recurrence.
struct Sink<'e, 'a, 'b, 'j> {
    env: &'e StreamEnv<'a, 'b, 'j>,
    /// One min-heap of lane free-times per group, for the recurrence.
    lanes: Vec<BinaryHeap<Reverse<u64>>>,
    items: Vec<StageItem>,
    makespan: u64,
    shed: usize,
    prev_epoch: Option<usize>,
    hits: Option<HitReplayer>,
}

impl<'e, 'a, 'b, 'j> Sink<'e, 'a, 'b, 'j> {
    fn new(
        env: &'e StreamEnv<'a, 'b, 'j>,
        topology: &Topology,
        n: usize,
        hits: Option<HitReplayer>,
    ) -> Self {
        Sink {
            env,
            lanes: topology
                .groups
                .iter()
                .map(|g| (0..g.lanes).map(|_| Reverse(0u64)).collect())
                .collect(),
            items: Vec::with_capacity(n),
            makespan: 0,
            shed: 0,
            prev_epoch: None,
            hits,
        }
    }

    /// Replays the representative's recorded effects onto a hit slot:
    /// terminal item state, per-stage report deltas, and (under a
    /// journal) the stage traces for the hit's own record. Because the
    /// sink consumes slots in index order and the pre-pass always picks
    /// the *earliest* occurrence as representative, the representative's
    /// result is guaranteed to be in the store by the time its hits
    /// arrive.
    fn replay_hit(&mut self, slot: &mut Slot, hit: SlotHit) {
        let Some(hr) = self.hits.as_mut() else {
            unreachable!("hit slots only exist under a cache plan");
        };
        let Some(rep) = hr.store.get(&hit.rep) else {
            unreachable!("representative committed before its hits");
        };
        if let Some(instruction) = &rep.instruction {
            slot.item.pair.instruction = instruction.clone();
        }
        if let Some(response) = &rep.response {
            slot.item.pair.response = response.clone();
        }
        slot.item.tags = rep.tags.clone();
        slot.item.retained = rep.retained;
        slot.item.failure = rep.failure.clone();
        if hit.near {
            slot.item.tag("cache:near");
        }
        for e in &rep.stages {
            merge_trace_delta(&mut hr.reports[e.stage as usize], e);
        }
        if let Some(t) = slot.trace.as_mut() {
            t.stages = rep.stages.clone();
        }
        let Some(uses) = hr.uses.get_mut(&hit.rep) else {
            unreachable!("uses tracked per rep");
        };
        *uses -= 1;
        if *uses == 0 {
            hr.uses.remove(&hit.rep);
            hr.store.remove(&hit.rep);
        }
    }

    /// If this slot is a representative with live dependents, captures
    /// its terminal state for later hit replay. Live representatives
    /// carry a force-attached trace (so stage deltas exist even
    /// un-journaled); replayed ones carry their committed deltas.
    fn capture_rep(&mut self, slot: &Slot) {
        let Some(hr) = self.hits.as_mut() else {
            return;
        };
        if !hr.uses.contains_key(&slot.item.index) {
            return;
        }
        let stages = match (&slot.replay, &slot.trace) {
            (Some(replay), _) => replay.clone(),
            (None, Some(trace)) => trace.stages.clone(),
            (None, None) => unreachable!("live representatives get traces attached"),
        };
        let item = &slot.item;
        hr.store.insert(
            item.index,
            RepResult {
                instruction: item
                    .instruction_changed()
                    .then(|| item.pair.instruction.clone()),
                response: item.response_changed().then(|| item.pair.response.clone()),
                tags: item.tags.clone(),
                retained: item.retained,
                failure: item.failure.clone(),
                stages,
            },
        );
    }

    fn consume(&mut self, chunk: Chunk) {
        for mut slot in chunk.slots {
            let epoch = slot.item.index / self.env.window;
            if let Some(prev) = self.prev_epoch {
                if epoch != prev {
                    // Commit frame: everything up to the epoch boundary
                    // is durable before the next epoch's records land.
                    if let Some(session) = self.env.session {
                        session.sync();
                    }
                }
            }
            self.prev_epoch = Some(epoch);

            // Virtual-time recurrence: the slot starts on a group when
            // it is ready and a lane is free; zero-charge slots (shed,
            // replayed, dropped upstream) pass through without cost.
            let mut t = slot.arrival;
            for (g, heap) in self.lanes.iter_mut().enumerate() {
                let free = heap.peek().map_or(0, |Reverse(x)| *x);
                let start = t.max(free);
                let done = start.saturating_add(slot.charge[g]);
                if heap.pop().is_some() {
                    heap.push(Reverse(done));
                }
                t = done;
            }
            self.makespan = self.makespan.max(t);

            if slot.shed {
                self.shed += 1;
            }
            if let Some(hit) = slot.hit {
                self.replay_hit(&mut slot, hit);
            } else {
                self.capture_rep(&slot);
            }
            if let Some(session) = self.env.session {
                if let Some(mut trace) = slot.trace.take() {
                    let item = &slot.item;
                    trace.disposition = match item.disposition() {
                        Disposition::Retained => 0,
                        Disposition::Dropped => 1,
                        Disposition::Quarantined => 2,
                    };
                    trace.instruction = item
                        .instruction_changed()
                        .then(|| item.pair.instruction.clone());
                    trace.response = item.response_changed().then(|| item.pair.response.clone());
                    trace.tags = item.tags.clone();
                    trace.failure = item.failure.clone();
                    trace.digest = item_digest(item);
                    session.append(&trace);
                }
            }
            self.items.push(slot.item);
        }
    }

    fn finish(self) -> SinkOut {
        SinkOut {
            items: self.items,
            sim_elapsed: Duration::from_nanos(self.makespan),
            shed: self.shed,
            hit_reports: self.hits.map(|hr| hr.reports).unwrap_or_default(),
        }
    }
}

/// What the sink hands back when the stream runs dry.
struct SinkOut {
    items: Vec<StageItem>,
    sim_elapsed: Duration,
    shed: usize,
    /// Per-stage report deltas from cache-hit replays (empty uncached).
    hit_reports: Vec<StageReport>,
}

/// Applies the feed to the slot sequence: stamps virtual arrival times
/// and makes shed decisions against the fluid backlog model. Replayed
/// slots re-apply their recorded admission outcome so a resumed
/// sustained run reproduces the original shed set exactly.
fn apply_feed(feed: &Feed, slots: &mut [Slot]) {
    let Feed::Sustained {
        rate_per_sec,
        drain_per_sec,
        backlog_capacity,
    } = feed
    else {
        return;
    };
    let rate = rate_per_sec.max(1e-9);
    let mut backlog = 0f64;
    let mut prev_t = 0f64;
    for (i, slot) in slots.iter_mut().enumerate() {
        let t = i as f64 / rate;
        backlog = (backlog - (t - prev_t) * drain_per_sec).max(0.0);
        prev_t = t;
        slot.arrival = (t * 1e9) as u64;
        if slot.replay.is_some() {
            // Re-apply the recorded admission outcome: committed shed
            // slots count as shed again (so `ChainOutput::shed` matches
            // the uninterrupted run), and only admitted slots occupy the
            // backlog the still-live tail is metered against.
            if slot.item.has_tag("shed:admission") {
                slot.shed = true;
            } else {
                backlog += 1.0;
            }
            continue;
        }
        backlog += 1.0;
        if backlog > *backlog_capacity as f64 {
            backlog -= 1.0;
            slot.shed = true;
            slot.item.discard("shed:admission");
        }
    }
}

/// The shed decisions [`apply_feed`] would make for a fresh `n`-item run
/// under `feed`, as a plain bool-per-index plan (`true` = shed), or
/// `None` for a batch feed. The shard driver needs admission decided
/// *before* partitioning — shedding is global, a function of arrival
/// order over the whole input, not of any one shard's subsequence — so
/// this mirrors the live path of the fluid model exactly (a unit test
/// pins the equivalence rather than refactoring the replay-aware
/// original).
pub(crate) fn admission_plan(feed: &Feed, n: usize) -> Option<Vec<bool>> {
    let Feed::Sustained {
        rate_per_sec,
        drain_per_sec,
        backlog_capacity,
    } = feed
    else {
        return None;
    };
    let rate = rate_per_sec.max(1e-9);
    let mut backlog = 0f64;
    let mut prev_t = 0f64;
    let mut shed = vec![false; n];
    for (i, slot) in shed.iter_mut().enumerate() {
        let t = i as f64 / rate;
        backlog = (backlog - (t - prev_t) * drain_per_sec).max(0.0);
        prev_t = t;
        backlog += 1.0;
        if backlog > *backlog_capacity as f64 {
            backlog -= 1.0;
            *slot = true;
        }
    }
    Some(shed)
}

/// Cuts the slot sequence into chunks of at most `chunk_len` slots,
/// never spanning a logical-epoch boundary (so epoch-frame commits and
/// breaker windows align with chunk edges).
fn build_chunks(slots: Vec<Slot>, chunk_len: usize, window: usize) -> Vec<Chunk> {
    let chunk_len = chunk_len.max(1);
    let mut chunks: Vec<Chunk> = Vec::with_capacity(slots.len() / chunk_len + 1);
    let mut cur: Vec<Slot> = Vec::with_capacity(chunk_len);
    for slot in slots {
        let index = slot.item.index;
        cur.push(slot);
        if cur.len() >= chunk_len || (index + 1).is_multiple_of(window) {
            chunks.push(Chunk {
                seq: chunks.len() as u64,
                slots: std::mem::replace(&mut cur, Vec::with_capacity(chunk_len)),
            });
        }
    }
    if !cur.is_empty() {
        chunks.push(Chunk {
            seq: chunks.len() as u64,
            slots: cur,
        });
    }
    chunks
}

/// Joins a worker thread, re-raising its panic payload (if any) on the
/// caller's thread instead of wrapping it in a second panic message.
fn join_lane(handle: std::thread::ScopedJoinHandle<'_, LaneOut>) -> LaneOut {
    handle
        .join()
        .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
}

/// What the engine hands back to the executor for `ChainOutput` assembly.
pub(crate) struct StreamRun {
    pub(crate) items: Vec<StageItem>,
    pub(crate) reports: Vec<StageReport>,
    pub(crate) breaker_events: Vec<BreakerEvent>,
    pub(crate) cache_hits: u64,
    pub(crate) cache_misses: u64,
    pub(crate) shed: usize,
    pub(crate) sim_elapsed: Duration,
    /// Revision-cache tallies (all zeros when no cache is configured).
    pub(crate) revision: CacheStats,
}

/// Runs the pipeline over the prepared slots. The single entry point for
/// both batch-fed and sustained streaming runs, journaled or not.
pub(crate) fn run_pipeline(
    env: &StreamEnv<'_, '_, '_>,
    threads: usize,
    schedule: Schedule,
    queue_capacity: usize,
    feed: &Feed,
    mut slots: Vec<Slot>,
) -> StreamRun {
    let n = slots.len();
    apply_feed(feed, &mut slots);
    // Stamp the determinism key every slot's RNG and fault rolls derive
    // from. With content keying off this is the pair id — bit-identical
    // to the historical behaviour.
    for slot in &mut slots {
        slot.key = if env.content_keyed {
            content_key(&slot.item.original)
        } else {
            slot.item.pair.id
        };
    }
    // Revision-cache pre-pass: a sequential, schedule-independent scan
    // that marks duplicate slots as hits on their earliest occurrence.
    let cache_plan = env.cache.map(|policy| plan_hits(&mut slots, policy));
    let mut replayer = cache_plan.as_ref().map(|plan| {
        // Live representatives with dependents need their per-stage
        // deltas captured even when no journal is attached.
        for slot in &mut slots {
            if slot.replay.is_none()
                && slot.trace.is_none()
                && plan.uses.contains_key(&slot.item.index)
            {
                slot.trace = Some(fresh_trace(&slot.item));
            }
        }
        HitReplayer {
            uses: plan.uses.clone(),
            store: FxHashMap::default(),
            reports: vec![StageReport::default(); env.stages.len()],
        }
    });
    let revision = cache_plan.map(|p| p.stats).unwrap_or_default();
    let topology = plan_topology(env.service, threads, env.breaker.is_some());
    let total_lanes = topology.total_lanes().max(1);
    for slot in &mut slots {
        slot.charge = vec![0; topology.groups.len()];
    }
    let chunk_len = match schedule {
        // Static: one epoch per handoff — big chunks, minimal queue
        // traffic, pipelining only across epochs.
        Schedule::Static => env.window,
        // Dynamic: the tuned claim granularity — small chunks so lanes
        // within a group stay balanced and groups overlap within an
        // epoch, sized up under roomy queues to cut handoff traffic. The
        // default.
        Schedule::Dynamic => adaptive_chunk_size(n, total_lanes, queue_capacity),
    };
    let chunks = build_chunks(slots, chunk_len, env.window);
    let total_chunks = chunks.len() as u64;

    let mut reports: Vec<StageReport> = env
        .stages
        .iter()
        .map(|s| StageReport {
            stage: s.name().to_string(),
            ..StageReport::default()
        })
        .collect();
    let mut events: Vec<(usize, BreakerEvent)> = Vec::new();
    let (mut cache_hits, mut cache_misses) = (0u64, 0u64);

    let sequential = topology.groups.len() <= 1 && total_lanes <= 1;
    let sink_out = if topology.groups.is_empty() {
        // Stage-less chain: the sink alone sees every slot.
        let mut sink = Sink::new(env, &topology, n, replayer.take());
        for chunk in chunks {
            sink.consume(chunk);
        }
        sink.finish()
    } else if sequential {
        // One group, one lane: drive the exact same worker and sink
        // inline, skipping thread and queue overhead entirely.
        let mut worker = GroupWorker::new(env, 0, topology.groups[0].stages.clone());
        let mut sink = Sink::new(env, &topology, n, replayer.take());
        for mut chunk in chunks {
            worker.process_chunk(&mut chunk);
            sink.consume(chunk);
        }
        let lane = worker.finish();
        fold_lane(
            lane,
            &mut reports,
            &mut events,
            &mut cache_hits,
            &mut cache_misses,
        );
        sink.finish()
    } else {
        let groups = topology.groups.len();
        let cap_chunks = (queue_capacity.max(1) / chunk_len.max(1)).max(2);
        let queues: Vec<OrderedQueue> = (0..=groups)
            .map(|_| OrderedQueue::new(cap_chunks, total_chunks))
            .collect();
        let (lane_outs, sink_out) = std::thread::scope(|scope| {
            let queues = &queues;
            let topology = &topology;
            let mut handles = Vec::new();
            for (g, plan) in topology.groups.iter().enumerate() {
                for _ in 0..plan.lanes {
                    let range = plan.stages.clone();
                    handles.push(scope.spawn(move || {
                        let _guard = AbortOnPanic(queues);
                        let mut worker = GroupWorker::new(env, g, range);
                        while let Some(mut chunk) = queues[g].pop() {
                            worker.process_chunk(&mut chunk);
                            if !queues[g + 1].push(chunk) {
                                break;
                            }
                        }
                        worker.finish()
                    }));
                }
            }
            let sink_hits = replayer.take();
            let sink_handle = scope.spawn(move || {
                let _guard = AbortOnPanic(queues);
                let mut sink = Sink::new(env, topology, n, sink_hits);
                while let Some(chunk) = queues[groups].pop() {
                    sink.consume(chunk);
                }
                sink.finish()
            });
            // The caller thread is the source: feed in order, with the
            // bounded first queue providing backpressure.
            for chunk in chunks {
                if !queues[0].push(chunk) {
                    break;
                }
            }
            let lane_outs: Vec<LaneOut> = handles.into_iter().map(join_lane).collect();
            let sink_out = sink_handle
                .join()
                .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
            (lane_outs, sink_out)
        });
        for lane in lane_outs {
            fold_lane(
                lane,
                &mut reports,
                &mut events,
                &mut cache_hits,
                &mut cache_misses,
            );
        }
        sink_out
    };

    // Cache-hit replays contributed report deltas at the sink; fold them
    // into the per-stage totals alongside the lane reports.
    for (k, report) in sink_out.hit_reports.into_iter().enumerate() {
        merge_report(&mut reports[k], report);
    }

    // Batch order is epoch-major, stage-minor; lanes reported events in
    // (group, epoch) order, so a stable sort by epoch restores it.
    events.sort_by_key(|(k, e)| (e.epoch, *k));
    StreamRun {
        items: sink_out.items,
        reports,
        breaker_events: events.into_iter().map(|(_, e)| e).collect(),
        cache_hits,
        cache_misses,
        shed: sink_out.shed,
        sim_elapsed: sink_out.sim_elapsed,
        revision,
    }
}

/// Merges one lane's output into the run totals. Lane token caches merge
/// via [`TokenCache::merge`] — order-independent, so the fold order
/// (group-major, lane-minor) never shows in the tallies.
fn fold_lane(
    lane: LaneOut,
    reports: &mut [StageReport],
    events: &mut Vec<(usize, BreakerEvent)>,
    cache_hits: &mut u64,
    cache_misses: &mut u64,
) {
    for (k, report) in lane.reports {
        merge_report(&mut reports[k], report);
    }
    events.extend(lane.events);
    let mut merged = TokenCache::new();
    merged.merge(lane.cache);
    let (h, m) = merged.stats();
    *cache_hits += h;
    *cache_misses += m;
}

/// Adds report `b` into `a` field-by-field (counters union-add). Also
/// the per-stage merge primitive for the shard driver.
pub(crate) fn merge_report(a: &mut StageReport, b: StageReport) {
    a.items_in += b.items_in;
    a.items_out += b.items_out;
    a.quarantined += b.quarantined;
    a.degraded += b.degraded;
    a.retries += b.retries;
    a.iterations += b.iterations;
    a.faults_injected += b.faults_injected;
    a.timeouts += b.timeouts;
    a.cpu_time += b.cpu_time;
    a.backoff_time += b.backoff_time;
    a.latency_time += b.latency_time;
    for (key, v) in b.counters {
        *a.counters.entry(key).or_insert(0) += v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_gives_every_stage_a_lane() {
        let t = plan_topology(&[100, 100, 100], 8, false);
        assert_eq!(t.groups.len(), 3);
        assert_eq!(t.total_lanes(), 8);
        assert!(t.groups.iter().all(|g| g.lanes >= 1));
        // Contiguous, covering, in order.
        assert_eq!(t.groups[0].stages, 0..1);
        assert_eq!(t.groups[2].stages, 2..3);
    }

    #[test]
    fn topology_lanes_follow_service_weight() {
        // One heavy stage: the surplus lanes all land on it.
        let t = plan_topology(&[1_000_000, 10, 10], 6, false);
        assert_eq!(t.groups[0].lanes, 4);
        assert_eq!(t.groups[1].lanes, 1);
        assert_eq!(t.groups[2].lanes, 1);
    }

    #[test]
    fn topology_groups_stages_when_threads_are_scarce() {
        let t = plan_topology(&[100, 100, 100, 100], 2, false);
        assert_eq!(t.groups.len(), 2);
        assert_eq!(t.total_lanes(), 2);
        assert_eq!(t.groups[0].stages.start, 0);
        assert_eq!(t.groups.last().unwrap().stages.end, 4);
        // Contiguity: each group starts where the previous ended.
        assert_eq!(t.groups[0].stages.end, t.groups[1].stages.start);
    }

    #[test]
    fn topology_single_lane_under_breaker() {
        let t = plan_topology(&[100, 100], 8, true);
        assert_eq!(t.groups.len(), 2);
        assert!(t.groups.iter().all(|g| g.lanes == 1));
    }

    #[test]
    fn ordered_queue_releases_in_sequence_order() {
        let q = OrderedQueue::new(4, 3);
        // Push out of order within the window; pops come back ordered.
        assert!(q.push(Chunk {
            seq: 1,
            slots: Vec::new()
        }));
        assert!(q.push(Chunk {
            seq: 0,
            slots: Vec::new()
        }));
        assert!(q.push(Chunk {
            seq: 2,
            slots: Vec::new()
        }));
        assert_eq!(q.pop().map(|c| c.seq), Some(0));
        assert_eq!(q.pop().map(|c| c.seq), Some(1));
        assert_eq!(q.pop().map(|c| c.seq), Some(2));
        assert_eq!(q.pop().map(|c| c.seq), None);
    }

    #[test]
    fn ordered_queue_blocks_for_backpressure() {
        let q = OrderedQueue::new(1, 4);
        std::thread::scope(|scope| {
            let producer = scope.spawn(|| {
                for seq in 0..4u64 {
                    // seq 1 cannot enter until seq 0 is popped: capacity 1.
                    assert!(q.push(Chunk {
                        seq,
                        slots: Vec::new()
                    }));
                }
            });
            for want in 0..4u64 {
                assert_eq!(q.pop().map(|c| c.seq), Some(want));
            }
            assert_eq!(q.pop().map(|c| c.seq), None);
            producer.join().expect("producer");
        });
    }

    #[test]
    fn aborted_queue_unblocks_everyone() {
        let q = OrderedQueue::new(1, 10);
        std::thread::scope(|scope| {
            let consumer = scope.spawn(|| q.pop().map(|c| c.seq));
            q.abort();
            assert_eq!(consumer.join().expect("consumer"), None);
            assert!(!q.push(Chunk {
                seq: 0,
                slots: Vec::new()
            }));
        });
    }

    #[test]
    fn chunks_never_span_epoch_boundaries() {
        let slots: Vec<Slot> = (0..25)
            .map(|i| {
                Slot::live(
                    StageItem::new(
                        i,
                        InstructionPair::new(
                            i as u64,
                            "q".to_string(),
                            "a".to_string(),
                            coachlm_data::Category(0),
                        ),
                    ),
                    false,
                )
            })
            .collect();
        let chunks = build_chunks(slots, 4, 10);
        let mut seen = 0usize;
        for c in &chunks {
            let lo = c.slots.first().map(|s| s.item.index).unwrap_or(0);
            let hi = c.slots.last().map(|s| s.item.index).unwrap_or(0);
            assert_eq!(lo, seen, "chunks are contiguous and ordered");
            assert_eq!(lo / 10, hi / 10, "chunk {lo}..={hi} crosses an epoch");
            seen = hi + 1;
        }
        assert_eq!(seen, 25);
        assert!(chunks.iter().all(|c| c.slots.len() <= 4));
    }

    #[test]
    fn sustained_feed_sheds_deterministically_above_capacity() {
        let mk = |n: usize| -> Vec<Slot> {
            (0..n)
                .map(|i| {
                    Slot::live(
                        StageItem::new(
                            i,
                            InstructionPair::new(
                                i as u64,
                                "q".to_string(),
                                "a".to_string(),
                                coachlm_data::Category(0),
                            ),
                        ),
                        false,
                    )
                })
                .collect()
        };
        // Arrivals at 100/s against a 40/s drain with room for 10: the
        // backlog fills, then ~60% of steady-state arrivals shed.
        let feed = Feed::Sustained {
            rate_per_sec: 100.0,
            drain_per_sec: 40.0,
            backlog_capacity: 10,
        };
        let mut a = mk(500);
        let mut b = mk(500);
        apply_feed(&feed, &mut a);
        apply_feed(&feed, &mut b);
        let shed_a: Vec<usize> = a.iter().filter(|s| s.shed).map(|s| s.item.index).collect();
        let shed_b: Vec<usize> = b.iter().filter(|s| s.shed).map(|s| s.item.index).collect();
        assert_eq!(shed_a, shed_b, "shedding is deterministic");
        assert!(shed_a.len() > 200, "overload sheds a majority tail");
        assert!(shed_a.len() < 400, "admitted items still flow");
        assert!(a.iter().filter(|s| s.shed).all(|s| !s.item.retained));
        // Under capacity: nothing sheds, arrivals are stamped.
        let calm = Feed::Sustained {
            rate_per_sec: 10.0,
            drain_per_sec: 40.0,
            backlog_capacity: 10,
        };
        let mut c = mk(200);
        apply_feed(&calm, &mut c);
        assert!(c.iter().all(|s| !s.shed));
        assert!(c[199].arrival > c[1].arrival);
        // Batch feed: untouched.
        let mut d = mk(50);
        apply_feed(&Feed::Batch, &mut d);
        assert!(d.iter().all(|s| !s.shed && s.arrival == 0));
    }

    #[test]
    fn admission_plan_matches_apply_feed_on_fresh_slots() {
        let mk = |n: usize| -> Vec<Slot> {
            (0..n)
                .map(|i| {
                    Slot::live(
                        StageItem::new(
                            i,
                            InstructionPair::new(
                                i as u64,
                                "q".to_string(),
                                "a".to_string(),
                                coachlm_data::Category(0),
                            ),
                        ),
                        false,
                    )
                })
                .collect()
        };
        for (rate, drain, cap) in [(100.0, 40.0, 10), (55.5, 60.0, 3), (10.0, 200.0, 1)] {
            let feed = Feed::Sustained {
                rate_per_sec: rate,
                drain_per_sec: drain,
                backlog_capacity: cap,
            };
            let mut slots = mk(400);
            apply_feed(&feed, &mut slots);
            let plan = admission_plan(&feed, 400).expect("sustained feed plans");
            let from_slots: Vec<bool> = slots.iter().map(|s| s.shed).collect();
            assert_eq!(plan, from_slots, "rate {rate} drain {drain} cap {cap}");
        }
        assert!(admission_plan(&Feed::Batch, 50).is_none());
    }
}
