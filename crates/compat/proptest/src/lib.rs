//! Offline stand-in for the `proptest` crate.
//!
//! Deterministic seeded property testing over the strategy subset this
//! workspace uses:
//!
//! * string strategies from a regex subset — concatenations of
//!   `[class]{m,n}` character-class repetitions and `\PC{m,n}`
//!   (any non-control character, multibyte included);
//! * integer range strategies (`0u8..4`, `0usize..=16`, …);
//! * `prop::collection::vec(strategy, size_range)`.
//!
//! No shrinking: a failing case reports its inputs and panics. Case count
//! defaults to 64 per property (`PROPTEST_CASES` overrides).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Failure raised by `prop_assert!` macros inside a property body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

/// Number of cases per property (`PROPTEST_CASES` env overrides; default 64).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Per-case RNG, seeded from the property name and case index.
pub fn case_rng(name: &str, case: u64) -> StdRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

// ---- range strategies -----------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// A fixed value as a strategy (used by `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

// ---- regex string strategies ----------------------------------------------

/// One atom of the supported regex subset.
enum Atom {
    /// `[...]{m,n}`: repeat a class member.
    Class {
        chars: Vec<char>,
        min: usize,
        max: usize,
    },
    /// `\PC{m,n}`: repeat any non-control char (sampled from a pool that
    /// includes multibyte and combining characters).
    AnyPrintable { min: usize, max: usize },
}

/// Pool for `\PC`: ASCII plus multibyte letters, an emoji, and a
/// zero-width joiner, so char-boundary handling gets exercised.
const PRINTABLE_EXTRA: &[char] = &[
    'é', 'ß', '中', '日', '語', '€', '🌊', '✓', '\u{200D}', 'Ω', 'й',
];

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unclosed character class")
                    + i;
                let mut members = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            members.push(char::from_u32(c).expect("valid range"));
                        }
                        j += 3;
                    } else {
                        members.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                let (min, max, next) = parse_repeat(&chars, i);
                i = next;
                atoms.push(Atom::Class {
                    chars: members,
                    min,
                    max,
                });
            }
            '\\' => {
                assert!(
                    chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C'),
                    "proptest stub: unsupported escape in {pattern:?}"
                );
                i += 3;
                let (min, max, next) = parse_repeat(&chars, i);
                i = next;
                atoms.push(Atom::AnyPrintable { min, max });
            }
            c => {
                let (min, max, next) = parse_repeat(&chars, i + 1);
                i = next;
                atoms.push(Atom::Class {
                    chars: vec![c],
                    min,
                    max,
                });
            }
        }
    }
    atoms
}

/// Parses an optional `{m,n}` / `{n}` quantifier at `chars[i..]`.
fn parse_repeat(chars: &[char], i: usize) -> (usize, usize, usize) {
    if chars.get(i) != Some(&'{') {
        return (1, 1, i);
    }
    let close = chars[i..]
        .iter()
        .position(|&c| c == '}')
        .expect("unclosed repeat")
        + i;
    let body: String = chars[i + 1..close].iter().collect();
    let (min, max) = match body.split_once(',') {
        Some((lo, hi)) => (
            lo.trim().parse().expect("repeat min"),
            hi.trim().parse().expect("repeat max"),
        ),
        None => {
            let n = body.trim().parse().expect("repeat count");
            (n, n)
        }
    };
    (min, max, close + 1)
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            match atom {
                Atom::Class { chars, min, max } => {
                    let n = rng.gen_range(min..=max);
                    for _ in 0..n {
                        out.push(chars[rng.gen_range(0..chars.len())]);
                    }
                }
                Atom::AnyPrintable { min, max } => {
                    let n = rng.gen_range(min..=max);
                    for _ in 0..n {
                        // Mostly ASCII printable, some multibyte.
                        if rng.gen_bool(0.8) {
                            out.push(char::from(rng.gen_range(0x20u8..0x7F)));
                        } else {
                            out.push(PRINTABLE_EXTRA[rng.gen_range(0..PRINTABLE_EXTRA.len())]);
                        }
                    }
                }
            }
        }
        out
    }
}

// ---- collections ----------------------------------------------------------

/// Strategy modules mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;
        use std::ops::Range;

        /// A `Vec` strategy: `len` elements drawn from `element`.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Vectors with lengths in `size`, elements from `element`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.size.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// The usual glob import: strategies, macros, and the `prop` module.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy, TestCaseError,
    };
}

// ---- macros ---------------------------------------------------------------

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    ($(
        #[$attr:meta]
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )+) => {$(
        #[$attr]
        fn $name() {
            let cases = $crate::cases();
            for case in 0..cases {
                let mut proptest_rng = $crate::case_rng(stringify!($name), case);
                $(
                    let $arg =
                        $crate::Strategy::generate(&($strategy), &mut proptest_rng);
                )+
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "property {} failed on case {}/{}: {}\ninputs: {:#?}",
                        stringify!($name),
                        case + 1,
                        cases,
                        e,
                        ($((stringify!($arg), &$arg)),+,)
                    );
                }
            }
        }
    )+};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn regex_subset_generates_within_spec() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = "[a-c]{0,25}".generate(&mut rng);
            assert!(s.len() <= 25 && s.chars().all(|c| ('a'..='c').contains(&c)));
            let t = "[ab]{65,140}".generate(&mut rng);
            assert!((65..=140).contains(&t.len()));
            let p = "\\PC{0,80}".generate(&mut rng);
            assert!(p.chars().count() <= 80);
            assert!(!p.chars().any(|c| c.is_control() && c != '\u{200D}'));
            let m = "[a-z ,.!?]{0,60}".generate(&mut rng);
            assert!(m
                .chars()
                .all(|c| c.is_ascii_lowercase() || " ,.!?".contains(c)));
        }
    }

    #[test]
    fn vec_strategy_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let strat = prop::collection::vec(0u8..4, 0..20);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v.len() < 20);
            assert!(v.iter().all(|&b| b < 4));
        }
    }

    proptest! {
        #[test]
        fn macro_plumbing_works(a in 0usize..10, s in "[ab]{0,5}") {
            prop_assert!(a < 10);
            prop_assert_eq!(s.len(), s.chars().count());
            prop_assert_ne!(a, 10);
        }
    }
}
