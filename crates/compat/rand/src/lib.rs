//! Offline stand-in for the `rand` crate.
//!
//! Deterministic, seedable PRNG with the API subset this workspace uses:
//! `StdRng::seed_from_u64`, `gen`, `gen_bool`, `gen_range` over integer and
//! float ranges. `StdRng` here is xoshiro256++ seeded via SplitMix64 — a
//! different stream than the real crate's ChaCha12, but the workspace's
//! statistical tests assert distribution bands, not exact draws.

use std::ops::{Range, RangeInclusive};

/// Low-level RNG: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`: uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// Samples uniformly from `range`. Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Maps a 64-bit draw to `[0, 1)` with 53-bit precision.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Standard-distribution sampling (the `gen::<T>()` type set).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly. Panics on an empty range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, n)` by widening multiply (Lemire reduction,
/// without the rejection step; the bias is ≪ 2⁻⁴⁰ for every bound the
/// workspace uses and the tests assert bands, not exact frequencies).
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                let v = self.start + (self.end - self.start) * unit;
                // Floating rounding may land exactly on `end`; step back in.
                if v >= self.end {
                    <$t>::from_bits(self.end.to_bits() - 1)
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// A smaller/faster RNG; here the same engine as [`StdRng`].
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard xoshiro seeding procedure.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=5u64);
            assert!(w <= 5);
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!(f >= f64::EPSILON && f < 1.0);
            let n = rng.gen_range(-4i64..3);
            assert!((-4..3).contains(&n));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let share = hits as f64 / 100_000.0;
        assert!((share - 0.3).abs() < 0.01, "share {share}");
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn integer_ranges_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_500..11_500).contains(&c), "counts {counts:?}");
        }
    }
}
