//! Offline stand-in for the `serde` crate.
//!
//! The container this workspace builds in has no registry access, so the
//! real serde cannot be vendored. This crate keeps the *call sites*
//! source-compatible for the subset the workspace uses — `#[derive(Serialize,
//! Deserialize)]`, `#[serde(skip)]`, `#[serde(default)]`,
//! `#[serde(with = "module")]` — over a much simpler protocol: types convert
//! to and from an owned JSON-like [`Value`] tree instead of driving streaming
//! serializer/deserializer state machines. `serde_json` (also vendored)
//! renders and parses that tree.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-like value tree: the wire format of this serde stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integer (always < 0; non-negative integers use `UInt`).
    Int(i64),
    /// Non-negative integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, as ordered key/value entries (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key in an object's entry list.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// The value as an `f64`, if it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// The value as a `bool`, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Missing-key / out-of-range index result: shared `Null` to return by
/// reference, matching serde_json's indexing behaviour.
static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.0)
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// A type-mismatch error.
    pub fn expected(what: &str, context: &str) -> Error {
        Error(format!("expected {what} for {context}"))
    }

    /// A missing-field error.
    pub fn missing_field(field: &str, context: &str) -> Error {
        Error(format!("missing field `{field}` in {context}"))
    }

    /// A custom error message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can convert themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitives -----------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 { Value::Int(v) } else { Value::UInt(v as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::expected(stringify!($t), "integer")),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::expected(stringify!($t), "integer")),
                    _ => Err(Error::expected(stringify!($t), "value")),
                }
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::expected(stringify!($t), "integer")),
                    Value::Int(i) => u64::try_from(*i)
                        .ok()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| Error::expected(stringify!($t), "integer")),
                    _ => Err(Error::expected(stringify!($t), "value")),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(Error::expected(stringify!($t), "value")),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", "value")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", "value")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("char", "value"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-char string", "char")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---- containers -----------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        items
            .try_into()
            .map_err(|_| Error::expected("array of fixed length", "[T; N]"))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::expected("array", "tuple"))?;
                let mut it = items.iter();
                let out = ($(
                    $name::from_value(
                        it.next().ok_or_else(|| Error::expected("tuple element", "tuple"))?,
                    )?,
                )+);
                if it.next().is_some() {
                    return Err(Error::expected("tuple of matching arity", "tuple"));
                }
                Ok(out)
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Converts a serialized map key into an object key string. JSON objects
/// need string keys; integer keys are stringified the way serde_json does.
fn key_string(v: &Value) -> Result<String, Error> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        Value::UInt(u) => Ok(u.to_string()),
        Value::Int(i) => Ok(i.to_string()),
        _ => Err(Error::expected("string or integer key", "map")),
    }
}

/// Reconstructs a map key from an object key string: tried as a plain
/// string first, then as an integer.
fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::Str(s.to_string())) {
        return Ok(k);
    }
    if let Ok(u) = s.parse::<u64>() {
        return K::from_value(&Value::UInt(u));
    }
    if let Ok(i) = s.parse::<i64>() {
        return K::from_value(&Value::Int(i));
    }
    Err(Error::expected("map key", s))
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = key_string(&k.to_value()).expect("map key must be string-like");
                (key, v.to_value())
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0)); // deterministic output
        Value::Object(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| Error::expected("object", "map"))?;
        let mut out = HashMap::with_capacity_and_hasher(entries.len(), S::default());
        for (k, val) in entries {
            out.insert(key_from_string(k)?, V::from_value(val)?);
        }
        Ok(out)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let entries = self
            .iter()
            .map(|(k, v)| {
                let key = key_string(&k.to_value()).expect("map key must be string-like");
                (key, v.to_value())
            })
            .collect();
        Value::Object(entries)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| Error::expected("object", "map"))?;
        let mut out = BTreeMap::new();
        for (k, val) in entries {
            out.insert(key_from_string(k)?, V::from_value(val)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::from_value(&(-5i64).to_value()).unwrap(), -5);
        assert_eq!(u32::from_value(&7u32.to_value()).unwrap(), 7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"hé".to_value()).unwrap(), "hé");
        assert!(bool::from_value(&true.to_value()).unwrap());
    }

    #[test]
    fn signed_non_negative_canonicalises_to_uint() {
        assert_eq!(3i64.to_value(), Value::UInt(3));
        assert_eq!((-3i64).to_value(), Value::Int(-3));
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(vec!["a".to_string()], (vec!["b".to_string()], 2u64))];
        let back: Vec<(Vec<String>, (Vec<String>, u64))> =
            Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
        let opt: Option<u8> = None;
        assert_eq!(opt.to_value(), Value::Null);
        let arr = [1usize, 2, 3];
        let back: [usize; 3] = Deserialize::from_value(&arr.to_value()).unwrap();
        assert_eq!(back, arr);
    }

    #[test]
    fn maps_round_trip_with_sorted_keys() {
        let mut m: HashMap<String, u64> = HashMap::new();
        m.insert("b".into(), 2);
        m.insert("a".into(), 1);
        let v = m.to_value();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["a", "b"]);
        let back: HashMap<String, u64> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn integer_map_keys_stringify() {
        let mut m: HashMap<u64, bool> = HashMap::new();
        m.insert(9, true);
        let v = m.to_value();
        assert_eq!(v.get("9"), Some(&Value::Bool(true)));
        let back: HashMap<u64, bool> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }
}
