//! Offline stand-in for the `serde_json` crate.
//!
//! Renders and parses JSON text over the vendored `serde::Value` tree.
//! Covers the workspace's call surface: [`to_string`], [`to_string_pretty`],
//! [`from_str`], the [`json!`] macro, and [`Value`]/[`Error`]/[`Result`].
//! Strings escape the JSON control set (with `\uXXXX` for other control
//! characters) and emit non-ASCII text as raw UTF-8, like the real crate;
//! the parser handles `\uXXXX` escapes including surrogate pairs.

pub use serde::Error;
pub use serde::Value;

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

/// Converts any serializable value into a [`Value`] tree (the `json!`
/// macro's escape hatch for expression operands).
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Builds a [`Value`] with JSON-literal syntax.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => { $crate::json_array!([ $($tt)* ]) };
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut entries: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::new();
        $crate::json_object!(entries, $($tt)*);
        $crate::Value::Object(entries)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal: array form of [`json!`].
#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    ([ $($tt:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut items: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json_array_items!(items, $($tt)*);
        $crate::Value::Array(items)
    }};
}

/// Internal: array-element muncher for [`json!`].
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_items {
    ($items:ident,) => {};
    ($items:ident) => {};
    ($items:ident, null $(, $($rest:tt)*)?) => {
        $items.push($crate::Value::Null);
        $( $crate::json_array_items!($items, $($rest)*); )?
    };
    ($items:ident, { $($v:tt)* } $(, $($rest:tt)*)?) => {
        $items.push($crate::json!({ $($v)* }));
        $( $crate::json_array_items!($items, $($rest)*); )?
    };
    ($items:ident, [ $($v:tt)* ] $(, $($rest:tt)*)?) => {
        $items.push($crate::json!([ $($v)* ]));
        $( $crate::json_array_items!($items, $($rest)*); )?
    };
    ($items:ident, $v:expr , $($rest:tt)*) => {
        $items.push($crate::json!($v));
        $crate::json_array_items!($items, $($rest)*);
    };
    ($items:ident, $v:expr) => {
        $items.push($crate::json!($v));
    };
}

/// Internal: object-entry muncher for [`json!`].
#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    ($entries:ident,) => {};
    ($entries:ident) => {};
    ($entries:ident, $key:literal : null $(, $($rest:tt)*)?) => {
        $entries.push(($key.to_string(), $crate::Value::Null));
        $( $crate::json_object!($entries, $($rest)*); )?
    };
    ($entries:ident, $key:literal : { $($v:tt)* } $(, $($rest:tt)*)?) => {
        $entries.push(($key.to_string(), $crate::json!({ $($v)* })));
        $( $crate::json_object!($entries, $($rest)*); )?
    };
    ($entries:ident, $key:literal : [ $($v:tt)* ] $(, $($rest:tt)*)?) => {
        $entries.push(($key.to_string(), $crate::json!([ $($v)* ])));
        $( $crate::json_object!($entries, $($rest)*); )?
    };
    ($entries:ident, $key:literal : $v:expr , $($rest:tt)*) => {
        $entries.push(($key.to_string(), $crate::json!($v)));
        $crate::json_object!($entries, $($rest)*);
    };
    ($entries:ident, $key:literal : $v:expr) => {
        $entries.push(($key.to_string(), $crate::json!($v)));
    };
}

// ---- rendering ------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest representation that round-trips
                // (and always includes a decimal point or exponent).
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("expected a JSON value"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("expected a JSON value"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("expected a JSON value"))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<()> {
        let b = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0C}'),
            b'u' => {
                let hi = self.hex4()?;
                let c = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: expect `\uXXXX` low half.
                    self.eat(b'\\')?;
                    self.eat(b'u')?;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))?
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                };
                out.push(c);
            }
            _ => return Err(self.err("unknown escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = json!({
            "a": 1,
            "b": [1.5, -2, "x"],
            "c": {"nested": true, "n": null},
        });
        let text = to_string(&v).unwrap();
        assert_eq!(parse_value(&text).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "quote \" backslash \\ newline \n tab \t unicode é 日本 🌊 ctrl \u{01}";
        let text = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parses_unicode_escapes_and_surrogates() {
        let v: String = from_str(r#""é 🌊""#).unwrap();
        assert_eq!(v, "é 🌊");
    }

    #[test]
    fn floats_round_trip() {
        for f in [0.1, 1.0, -3.25, 1e-9, 1234.5678] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(parse_value("not json").is_err());
        assert!(parse_value(r#"{"a":}"#).is_err());
        assert!(parse_value("[1,2").is_err());
        assert!(from_str::<u64>("\"x\"").is_err());
    }

    #[test]
    fn json_macro_accepts_expressions() {
        let n = 3usize;
        let v = json!({"count": n, "rate": n as f64 / 2.0, "flags": [true, false]});
        assert_eq!(v.get("count"), Some(&Value::UInt(3)));
        assert_eq!(v.get("rate"), Some(&Value::Float(1.5)));
    }
}
