//! Offline stand-in for the `criterion` crate.
//!
//! Runs each benchmark closure in a short warm-up followed by `sample_size`
//! timed samples and prints the median ns/iter. No HTML reports, no
//! statistical outlier analysis — just enough harness for `cargo bench`
//! to compile, run, and print comparable numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration work declared for a benchmark, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendered after a slash.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times a closure over repeated iterations.
pub struct Bencher {
    sample_size: usize,
    measured: Option<Duration>,
}

impl Bencher {
    /// Runs `f` in a warm-up then `sample_size` timed samples; records the
    /// median per-iteration duration for the harness to report.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, also calibrating iterations-per-sample so each sample
        // lasts roughly a millisecond.
        let calibrate = Instant::now();
        let mut warmups = 0u64;
        while calibrate.elapsed() < Duration::from_millis(20) {
            black_box(f());
            warmups += 1;
        }
        let per_sample = (warmups / 20).max(1);

        let mut samples: Vec<Duration> = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..per_sample {
                    black_box(f());
                }
                start.elapsed() / per_sample as u32
            })
            .collect();
        samples.sort();
        self.measured = Some(samples[samples.len() / 2]);
    }
}

fn report(id: &str, median: Duration, throughput: Option<Throughput>) {
    let ns = median.as_nanos().max(1);
    print!("{id:<40} {ns:>12} ns/iter");
    match throughput {
        Some(Throughput::Elements(n)) => {
            print!("  ({:.1} Kelem/s)", n as f64 / ns as f64 * 1e6);
        }
        Some(Throughput::Bytes(n)) => {
            print!(
                "  ({:.1} MiB/s)",
                n as f64 / ns as f64 * 1e9 / (1 << 20) as f64
            );
        }
        None => {}
    }
    println!();
    if let Ok(path) = std::env::var("COACHLM_BENCH_JSON") {
        if !path.is_empty() {
            append_json_record(&path, id, ns, throughput);
        }
    }
}

/// Appends one JSONL record per benchmark to the file named by the
/// `COACHLM_BENCH_JSON` env var, for machine-readable result collection
/// (`scripts/bench.sh` wraps these lines into the bench JSON artifact,
/// `BENCH_4.json` currently).
fn append_json_record(path: &str, id: &str, ns: u128, throughput: Option<Throughput>) {
    let mut line = format!("{{\"bench\":{id:?},\"median_ns\":{ns}");
    match throughput {
        Some(Throughput::Elements(n)) => {
            line.push_str(&format!(
                ",\"elems_per_sec\":{:.1}",
                n as f64 / ns as f64 * 1e9
            ));
        }
        Some(Throughput::Bytes(n)) => {
            line.push_str(&format!(
                ",\"bytes_per_sec\":{:.1}",
                n as f64 / ns as f64 * 1e9
            ));
        }
        None => {}
    }
    line.push('}');
    append_line(path, &line);
}

fn append_line(path: &str, line: &str) {
    use std::io::Write;
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| writeln!(f, "{line}"));
    if let Err(e) = written {
        eprintln!("warning: could not append bench record to {path}: {e}");
    }
}

/// Emits a derived-metric record — a benchmark-shaped JSONL line carrying
/// computed figures (speedup ratios, modeled throughput) instead of a raw
/// timing. Printed to stdout like a benchmark and appended to the
/// `COACHLM_BENCH_JSON` file when set, so derived numbers land in
/// the bench artifact next to the medians they were computed from.
///
/// Not part of the real `criterion` API; bench binaries in this workspace
/// use it to report figures the harness cannot measure directly.
pub fn append_metric(id: &str, fields: &[(&str, f64)]) {
    print!("{id:<40}");
    for (name, value) in fields {
        print!("  {name}={value:.3}");
    }
    println!();
    if let Ok(path) = std::env::var("COACHLM_BENCH_JSON") {
        if !path.is_empty() {
            let mut line = format!("{{\"bench\":{id:?}");
            for (name, value) in fields {
                let rendered = if value.is_finite() {
                    format!("{value:.6}")
                } else {
                    "null".to_string()
                };
                line.push_str(&format!(",{name:?}:{rendered}"));
            }
            line.push('}');
            append_line(&path, &line);
        }
    }
}

/// A named set of related benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration work for rate reporting on later benches.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark in this group. Returns the measured median (a
    /// deviation from the real `criterion` API) so bench binaries can
    /// derive cross-benchmark figures like speedup-vs-baseline.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> Duration
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.criterion.sample_size,
            measured: None,
        };
        let median = run_one(&mut b, |bencher| f(bencher));
        report(&format!("{}/{}", self.name, id.id), median, self.throughput);
        median
    }

    /// Runs one parameterised benchmark in this group. Returns the measured
    /// median like [`bench_function`](Self::bench_function).
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> Duration
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.criterion.sample_size,
            measured: None,
        };
        let median = run_one(&mut b, |bencher| f(bencher, input));
        report(&format!("{}/{}", self.name, id.id), median, self.throughput);
        median
    }

    /// Ends the group (printing is immediate; this is a no-op for parity).
    pub fn finish(self) {}
}

/// Invokes the bench closure and recovers the median duration its inner
/// `Bencher::iter` recorded (elapsed-time estimate if it never called iter).
fn run_one<F: FnMut(&mut Bencher)>(b: &mut Bencher, mut f: F) -> Duration {
    let start = Instant::now();
    f(b);
    b.measured
        .take()
        .unwrap_or_else(|| start.elapsed() / (b.sample_size as u32).max(1))
}

/// Benchmark harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            measured: None,
        };
        let median = run_one(&mut b, |bencher| f(bencher));
        report(&id.id, median, None);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// Declares a benchmark group: either `name = ...; config = ...; targets = ...`
/// or a plain list of target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_to(n: u64) -> u64 {
        (0..n).fold(0, |a, b| a ^ b.wrapping_mul(31))
    }

    #[test]
    fn bencher_reports_positive_time() {
        let mut b = Bencher {
            sample_size: 5,
            measured: None,
        };
        b.iter(|| sum_to(black_box(100)));
        assert!(b.measured.unwrap().as_nanos() > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("standalone", |b| {
            b.iter(|| sum_to(black_box(10)));
        });
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(10));
        g.bench_function("plain", |b| {
            b.iter(|| sum_to(black_box(10)));
        });
        g.bench_with_input(BenchmarkId::new("param", 32), &32u64, |b, &n| {
            b.iter(|| sum_to(black_box(n)));
        });
        g.finish();
    }
}
