//! Offline stand-in for `serde_derive`.
//!
//! Derives the value-based `Serialize`/`Deserialize` protocol of the
//! vendored `serde` crate for the shapes this workspace actually uses:
//! named-field structs, tuple structs, and enums with unit/tuple/struct
//! variants. Supported field attributes: `#[serde(skip)]`,
//! `#[serde(default)]`, `#[serde(with = "module")]`. Generic type
//! parameters are not supported (none of the workspace's derived types
//! have them); lifetimes and other exotica produce a compile error.
//!
//! No `syn`/`quote` (unavailable offline): the item is parsed directly
//! from its token tree — only field/variant names and serde attributes are
//! needed, so types are skipped over with a small angle-bracket-aware
//! scanner — and the impls are rendered as strings.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Default, Clone)]
struct FieldAttrs {
    skip: bool,
    default: bool,
    with: Option<String>,
}

struct Field {
    name: String,
    attrs: FieldAttrs,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

// ---- parsing --------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let kw = expect_ident(&tokens, &mut i)?;
    let name = expect_ident(&tokens, &mut i)?;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde derive stub: generic type `{name}` not supported"
        ));
    }
    let shape = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(tuple_arity(g.stream()))
            }
            _ => Shape::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream())?)
            }
            _ => return Err("serde derive stub: malformed enum".to_string()),
        },
        other => return Err(format!("serde derive stub: cannot derive for `{other}`")),
    };
    Ok(Item { name, shape })
}

fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> Vec<FieldAttrs> {
    let mut attrs = Vec::new();
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            attrs.push(parse_serde_attr(g.stream()));
            *i += 1;
        }
    }
    attrs
}

/// Parses the inside of one `#[...]`; non-serde attributes yield defaults.
fn parse_serde_attr(stream: TokenStream) -> FieldAttrs {
    let mut out = FieldAttrs::default();
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return out,
    }
    let Some(TokenTree::Group(inner)) = tokens.get(1) else {
        return out;
    };
    let inner: Vec<TokenTree> = inner.stream().into_iter().collect();
    let mut j = 0usize;
    while j < inner.len() {
        match &inner[j] {
            TokenTree::Ident(id) => match id.to_string().as_str() {
                "skip" | "skip_serializing" | "skip_deserializing" => out.skip = true,
                "default" => out.default = true,
                "with" => {
                    if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                        (inner.get(j + 1), inner.get(j + 2))
                    {
                        if eq.as_char() == '=' {
                            out.with = Some(unquote(&lit.to_string()));
                            j += 2;
                        }
                    }
                }
                _ => {}
            },
            _ => {}
        }
        j += 1;
    }
    out
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> Result<String, String> {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            Ok(id.to_string())
        }
        other => Err(format!(
            "serde derive stub: expected identifier, got {other:?}"
        )),
    }
}

/// Skips a type (or any token run) until a top-level `,`, tracking angle
/// brackets so commas inside `Vec<..., ...>` don't terminate early.
fn skip_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let attrs = merge_attrs(skip_attrs(&tokens, &mut i));
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i)?;
        // Expect `:`, then skip the type.
        i += 1;
        skip_until_comma(&tokens, &mut i);
        i += 1; // past the comma
        fields.push(Field { name, attrs });
    }
    Ok(fields)
}

fn merge_attrs(list: Vec<FieldAttrs>) -> FieldAttrs {
    let mut out = FieldAttrs::default();
    for a in list {
        out.skip |= a.skip;
        out.default |= a.default;
        if a.with.is_some() {
            out.with = a.with;
        }
    }
    out
}

fn tuple_arity(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1usize;
    let mut i = 0usize;
    loop {
        skip_until_comma(&tokens, &mut i);
        if i >= tokens.len() {
            return arity;
        }
        i += 1; // past the comma
        if i >= tokens.len() {
            return arity; // trailing comma
        }
        arity += 1;
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i)?;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(tuple_arity(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip a possible `= discriminant` and the trailing comma.
        skip_until_comma(&tokens, &mut i);
        i += 1;
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---- codegen: Serialize ---------------------------------------------------

fn field_to_value(attrs: &FieldAttrs, expr: &str) -> String {
    match &attrs.with {
        Some(module) => format!("{module}::to_value({expr})"),
        None => format!("::serde::Serialize::to_value({expr})"),
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .filter(|f| !f.attrs.skip)
                .map(|f| {
                    let conv = field_to_value(&f.attrs, &format!("&self.{}", f.name));
                    format!("({:?}.to_string(), {conv})", f.name)
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec::Vec::from([{}]))",
                entries.join(", ")
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!(
                "::serde::Value::Array(::std::vec::Vec::from([{}]))",
                items.join(", ")
            )
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Object(::std::vec::Vec::from([\
                             ({vn:?}.to_string(), ::serde::Serialize::to_value(f0))])),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(::std::vec::Vec::from([\
                                 ({vn:?}.to_string(), ::serde::Value::Array(::std::vec::Vec::from([{}])))])),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .filter(|f| !f.attrs.skip)
                                .map(|f| {
                                    let conv = field_to_value(&f.attrs, &f.name);
                                    format!("({:?}.to_string(), {conv})", f.name)
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Object(::std::vec::Vec::from([\
                                 ({vn:?}.to_string(), ::serde::Value::Object(::std::vec::Vec::from([{}])))])),",
                                binds.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

// ---- codegen: Deserialize -------------------------------------------------

/// Lookup-and-convert for one named field out of the object `src`.
fn named_field_expr(f: &Field, owner: &str, src: &str) -> String {
    if f.attrs.skip {
        return format!("{}: ::std::default::Default::default()", f.name);
    }
    let conv = match &f.attrs.with {
        Some(module) => format!("{module}::from_value(x)?"),
        None => "::serde::Deserialize::from_value(x)?".to_string(),
    };
    let missing = if f.attrs.default {
        "::std::default::Default::default()".to_string()
    } else {
        format!(
            "return ::std::result::Result::Err(::serde::Error::missing_field({:?}, {owner:?}))",
            f.name
        )
    };
    format!(
        "{}: match {src}.get({:?}) {{ ::std::option::Option::Some(x) => {conv}, \
         ::std::option::Option::None => {missing} }}",
        f.name, f.name
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| named_field_expr(f, name, "v"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|k| {
                    format!(
                        "::serde::Deserialize::from_value(items.get({k}).ok_or_else(|| \
                         ::serde::Error::expected(\"tuple element\", {name:?}))?)?"
                    )
                })
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| \
                 ::serde::Error::expected(\"array\", {name:?}))?;\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut parts = Vec::new();
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "{:?} => return ::std::result::Result::Ok({name}::{}),",
                        v.name, v.name
                    )
                })
                .collect();
            if !unit_arms.is_empty() {
                parts.push(format!(
                    "if let ::serde::Value::Str(s) = v {{ match s.as_str() {{ {} _ => {{}} }} }}",
                    unit_arms.join(" ")
                ));
            }
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{vn:?} => return ::std::result::Result::Ok(\
                             {name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!(
                                        "::serde::Deserialize::from_value(items.get({k}).ok_or_else(|| \
                                         ::serde::Error::expected(\"tuple element\", {name:?}))?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => {{ let items = inner.as_array().ok_or_else(|| \
                                 ::serde::Error::expected(\"array\", {name:?}))?;\n\
                                 return ::std::result::Result::Ok({name}::{vn}({})); }}",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| named_field_expr(f, name, "inner"))
                                .collect();
                            Some(format!(
                                "{vn:?} => return ::std::result::Result::Ok(\
                                 {name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            if !data_arms.is_empty() {
                parts.push(format!(
                    "if let ::serde::Value::Object(entries) = v {{ \
                     if entries.len() == 1 {{ \
                     let (key, inner) = &entries[0]; \
                     match key.as_str() {{ {} _ => {{}} }} }} }}",
                    data_arms.join(" ")
                ));
            }
            parts.push(format!(
                "::std::result::Result::Err(::serde::Error::expected(\"variant\", {name:?}))"
            ));
            parts.join("\n")
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}
