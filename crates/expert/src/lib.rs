//! # coachlm-expert
//!
//! The simulated expert revision workflow of §II-C/E: the 26-expert pool
//! (groups A/B/C), the preliminary filter (Table III), the expertise-based
//! routing into three revision units, the rubric-driven revision engine
//! with owner quality control ("revise until the pair scores ≥ 95"), and
//! the person-day cost model (129 person-days for the 6k sample).
//!
//! The experts here are rubric executors: they apply the same Table II
//! criteria the judge crate implements, with *full* repair knowledge
//! (coverage 1.0 of the shared lexicon) — which is exactly the property the
//! paper relies on ("each revised instruction pair meets the criteria",
//! §II-F2). Their output, the expert revision dataset `R = {(x, x_r)}`, is
//! what coach instruction tuning consumes.

#![deny(unused_must_use)]
#![warn(missing_docs)]

pub mod cost;
pub mod filter;
pub mod pool;
pub mod revision;

pub use filter::{preliminary_filter, FilterOutcome, FilterReason};
pub use pool::{Expert, ExpertPool, Group, RevisionUnit};
pub use revision::{ExpertReviser, RevisionKind, RevisionRecord};
