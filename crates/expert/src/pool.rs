//! The expert pool and expertise-based routing (§II-C, §II-E2, Table I).
//!
//! 26 experts in three non-overlapping groups: A (17, revise pairs),
//! B (6, create the test set), C (3, evaluate). Group A is split into three
//! units by years of experience; each unit owns one revision class and has
//! an owner responsible for quality control.

use coachlm_data::category::TaskClass;
use serde::Serialize;

/// Expert group (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Group {
    /// Revise instruction pairs (17 experts, avg 11.29 years).
    A,
    /// Create the CoachLM150 test set (6 experts, avg 5.64 years).
    B,
    /// Evaluate CoachLM (3 experts, avg 12.57 years).
    C,
}

/// One language expert.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Expert {
    /// Stable id.
    pub id: u32,
    /// Years of experience.
    pub years: f64,
    /// Group membership.
    pub group: Group,
}

/// A group-A revision unit: the experts owning one task class.
#[derive(Debug, Clone, Serialize)]
pub struct RevisionUnit {
    /// The class this unit revises.
    pub class: TaskClass,
    /// Member expert ids (first member is the unit owner).
    pub members: Vec<u32>,
    /// Average years of experience.
    pub avg_years: f64,
}

/// The full 26-expert pool.
#[derive(Debug, Clone, Serialize)]
pub struct ExpertPool {
    /// All experts.
    pub experts: Vec<Expert>,
    /// The three group-A units, in [LanguageTask, QA, Creative] order.
    pub units: [RevisionUnit; 3],
}

/// Years-of-experience profiles chosen to reproduce Table I's group
/// averages (11.29 / 5.64 / 12.57) and §II-E2's unit averages
/// (9.4 / 11.2 / 13.1).
const GROUP_A_YEARS: [f64; 17] = [
    // Language-task unit (6 experts, avg 9.4).
    7.2, 8.3, 9.1, 9.8, 10.4, 11.6, // Q&A unit (6 experts, avg 11.2).
    9.5, 10.2, 11.0, 11.7, 12.3, 12.5, // Creative unit (5 experts, avg 13.1).
    11.8, 12.6, 13.2, 13.7, 14.2,
];
const GROUP_B_YEARS: [f64; 6] = [3.9, 4.6, 5.2, 5.9, 6.7, 7.5];
const GROUP_C_YEARS: [f64; 3] = [11.5, 12.4, 13.8];

impl ExpertPool {
    /// Builds the paper's pool.
    pub fn paper_pool() -> Self {
        let mut experts = Vec::with_capacity(26);
        let mut id = 0u32;
        for &y in &GROUP_A_YEARS {
            experts.push(Expert {
                id,
                years: y,
                group: Group::A,
            });
            id += 1;
        }
        for &y in &GROUP_B_YEARS {
            experts.push(Expert {
                id,
                years: y,
                group: Group::B,
            });
            id += 1;
        }
        for &y in &GROUP_C_YEARS {
            experts.push(Expert {
                id,
                years: y,
                group: Group::C,
            });
            id += 1;
        }

        // Units: the three contiguous ranges of group A above, each led by
        // its most experienced member (listed first as owner).
        let unit = |class: TaskClass, range: std::ops::Range<u32>| {
            let mut members: Vec<u32> = range.collect();
            members.sort_by(|a, b| {
                experts[*b as usize]
                    .years
                    .total_cmp(&experts[*a as usize].years)
            });
            let avg = members
                .iter()
                .map(|&m| experts[m as usize].years)
                .sum::<f64>()
                / members.len() as f64;
            RevisionUnit {
                class,
                members,
                avg_years: avg,
            }
        };
        let units = [
            unit(TaskClass::LanguageTask, 0..6),
            unit(TaskClass::QA, 6..12),
            unit(TaskClass::Creative, 12..17),
        ];
        Self { experts, units }
    }

    /// Experts in a group.
    pub fn group(&self, g: Group) -> impl Iterator<Item = &Expert> {
        self.experts.iter().filter(move |e| e.group == g)
    }

    /// Average years in a group.
    pub fn group_avg_years(&self, g: Group) -> f64 {
        let (sum, n) = self
            .group(g)
            .fold((0.0, 0usize), |(s, n), e| (s + e.years, n + 1));
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// The unit responsible for a task class.
    pub fn unit_for(&self, class: TaskClass) -> &RevisionUnit {
        self.units
            .iter()
            .find(|u| u.class == class)
            // lint: allow(P1, reason = "paper_pool, the only constructor, builds exactly one unit per TaskClass variant a few lines above; a missing unit is a construction bug, not a data condition")
            .expect("all classes have units")
    }

    /// Routes a pair (by its class) to an expert: the unit member chosen
    /// round-robin on the pair id (the owner also revises).
    pub fn route(&self, class: TaskClass, pair_id: u64) -> u32 {
        let unit = self.unit_for(class);
        unit.members[(pair_id as usize) % unit.members.len()]
    }

    /// The unit owner for a class (quality control).
    pub fn owner_for(&self, class: TaskClass) -> u32 {
        self.unit_for(class).members[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_sizes_match_table1() {
        let p = ExpertPool::paper_pool();
        assert_eq!(p.experts.len(), 26);
        assert_eq!(p.group(Group::A).count(), 17);
        assert_eq!(p.group(Group::B).count(), 6);
        assert_eq!(p.group(Group::C).count(), 3);
    }

    #[test]
    fn group_averages_match_table1() {
        let p = ExpertPool::paper_pool();
        assert!((p.group_avg_years(Group::A) - 11.29).abs() < 0.3);
        assert!((p.group_avg_years(Group::B) - 5.64).abs() < 0.3);
        assert!((p.group_avg_years(Group::C) - 12.57).abs() < 0.3);
    }

    #[test]
    fn unit_averages_match_section_2e2() {
        let p = ExpertPool::paper_pool();
        assert!((p.unit_for(TaskClass::LanguageTask).avg_years - 9.4).abs() < 0.3);
        assert!((p.unit_for(TaskClass::QA).avg_years - 11.2).abs() < 0.3);
        assert!((p.unit_for(TaskClass::Creative).avg_years - 13.1).abs() < 0.3);
    }

    #[test]
    fn units_partition_group_a() {
        let p = ExpertPool::paper_pool();
        let mut seen = std::collections::HashSet::new();
        for u in &p.units {
            for &m in &u.members {
                assert_eq!(p.experts[m as usize].group, Group::A);
                assert!(seen.insert(m), "expert {m} in two units");
            }
        }
        assert_eq!(seen.len(), 17);
    }

    #[test]
    fn owner_is_most_experienced_member() {
        let p = ExpertPool::paper_pool();
        for class in TaskClass::ALL {
            let unit = p.unit_for(class);
            let owner = p.owner_for(class);
            let max_years = unit
                .members
                .iter()
                .map(|&m| p.experts[m as usize].years)
                .fold(f64::MIN, f64::max);
            assert_eq!(p.experts[owner as usize].years, max_years);
        }
    }

    #[test]
    fn routing_is_deterministic_and_in_unit() {
        let p = ExpertPool::paper_pool();
        for id in 0..50u64 {
            let e = p.route(TaskClass::QA, id);
            assert!(p.unit_for(TaskClass::QA).members.contains(&e));
            assert_eq!(e, p.route(TaskClass::QA, id));
        }
    }

    #[test]
    fn stronger_class_gets_more_experienced_unit() {
        let p = ExpertPool::paper_pool();
        assert!(p.unit_for(TaskClass::Creative).avg_years > p.unit_for(TaskClass::QA).avg_years);
        assert!(
            p.unit_for(TaskClass::QA).avg_years > p.unit_for(TaskClass::LanguageTask).avg_years
        );
    }
}
