//! The person-day cost model.
//!
//! §II-E2 reports 129 person-days for the 6k sample, covering preliminary
//! filtering, primary revision, and quality control; §IV-A reports the
//! production numbers: ~80 pairs/person-day of high-quality output before
//! CoachLM and ~100 after, a net 15–20 % efficiency gain once improved
//! annotator proficiency is deducted.
//!
//! Throughputs below are *calibrated* to those anchors; the model then lets
//! any pipeline configuration be costed (the Fig 6 / deploy experiment).

use coachlm_data::category::TaskClass;
use serde::Serialize;

/// Expert throughputs, in pairs per person-day.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Throughputs {
    /// Examining a pair against the rubric (no rewrite).
    pub examine: f64,
    /// Preliminary filtering decisions.
    pub filter: f64,
    /// Revising a language-task pair.
    pub revise_language: f64,
    /// Revising a Q&A pair.
    pub revise_qa: f64,
    /// Revising a creative pair.
    pub revise_creative: f64,
    /// Owner quality control per revised pair.
    pub qc: f64,
    /// Post-editing a CoachLM-pre-revised pair (the §IV-A deployment mode:
    /// the structure already exists, the human polishes).
    pub post_edit: f64,
}

impl Default for Throughputs {
    fn default() -> Self {
        // Calibrated so the §II-E workload (6000 filtered, 4912 examined,
        // 2301 revised in the paper's class mix) totals ≈ 129 person-days.
        Self {
            examine: 300.0,
            filter: 500.0,
            revise_language: 40.0,
            revise_qa: 30.0,
            revise_creative: 18.0,
            qc: 100.0,
            post_edit: 130.0,
        }
    }
}

impl Throughputs {
    /// Pairs/person-day for revising a pair of the given class.
    pub fn revise_rate(&self, class: TaskClass) -> f64 {
        match class {
            TaskClass::LanguageTask => self.revise_language,
            TaskClass::QA => self.revise_qa,
            TaskClass::Creative => self.revise_creative,
        }
    }
}

/// A workload to be costed.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct Workload {
    /// Pairs passing preliminary filtering.
    pub filtered: usize,
    /// Pairs examined against the rubric.
    pub examined: usize,
    /// Revised pairs per class: (language, qa, creative).
    pub revised: (usize, usize, usize),
    /// Pairs only post-edited (CoachLM precursor mode).
    pub post_edited: usize,
}

impl Workload {
    /// Total person-days under the given throughputs.
    pub fn person_days(&self, t: &Throughputs) -> f64 {
        let (l, q, c) = self.revised;
        self.filtered as f64 / t.filter
            + self.examined as f64 / t.examine
            + l as f64 / t.revise_language
            + q as f64 / t.revise_qa
            + c as f64 / t.revise_creative
            + (l + q + c) as f64 / t.qc
            + self.post_edited as f64 / t.post_edit
    }

    /// High-quality pairs produced per person-day.
    pub fn pairs_per_person_day(&self, t: &Throughputs, produced: usize) -> f64 {
        let days = self.person_days(t);
        if days <= 0.0 {
            0.0
        } else {
            produced as f64 / days
        }
    }
}

/// The §II-E workload: 6k filtered, 4912 examined, 2301 revised in the
/// paper's class mix (estimated 45/38/17 across classes).
pub fn paper_sample_workload() -> Workload {
    Workload {
        filtered: 6000,
        examined: 4912,
        revised: (1035, 875, 391),
        post_edited: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sample_costs_about_129_person_days() {
        let days = paper_sample_workload().person_days(&Throughputs::default());
        assert!((days - 129.0).abs() < 8.0, "days {days}");
    }

    #[test]
    fn creative_revisions_cost_most() {
        let t = Throughputs::default();
        assert!(t.revise_rate(TaskClass::Creative) < t.revise_rate(TaskClass::QA));
        assert!(t.revise_rate(TaskClass::QA) < t.revise_rate(TaskClass::LanguageTask));
    }

    #[test]
    fn post_edit_is_faster_than_revision() {
        let t = Throughputs::default();
        assert!(t.post_edit > t.revise_language);
    }

    #[test]
    fn empty_workload_costs_nothing() {
        let w = Workload::default();
        assert_eq!(w.person_days(&Throughputs::default()), 0.0);
        assert_eq!(w.pairs_per_person_day(&Throughputs::default(), 10), 0.0);
    }

    #[test]
    fn pairs_per_person_day_scales() {
        let t = Throughputs::default();
        let manual = Workload {
            examined: 1000,
            revised: (300, 250, 120),
            ..Default::default()
        };
        let assisted = Workload {
            examined: 1000,
            post_edited: 670,
            ..Default::default()
        };
        let manual_rate = manual.pairs_per_person_day(&t, 670);
        let assisted_rate = assisted.pairs_per_person_day(&t, 670);
        assert!(
            assisted_rate > manual_rate,
            "{assisted_rate} vs {manual_rate}"
        );
    }
}
