//! The preliminary filter (§II-E1, Table III).
//!
//! Before primary revision, group-A experts excluded 1088 of the 6k sampled
//! pairs for five reasons. The filter here detects each reason from the
//! text (placeholder inputs, professional-domain markers, massive-workload
//! phrasing, multimodal references, toxic requests). Matching the paper, a
//! small share of matched pairs is deliberately *retained* "to ensure
//! diversity of revision".

use coachlm_data::pair::Dataset;
use coachlm_runtime::{
    Executor, ExecutorConfig, Feed, Stage, StageCtx, StageItem, StageOutcome, StreamSource,
};
use coachlm_text::lexicon;
use rand::Rng;
use serde::Serialize;

/// The Table III exclusion reasons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum FilterReason {
    /// The key content of the instruction is invalid (41.7 %).
    InvalidInput,
    /// Overly professional scene (27.7 %).
    BeyondExpertise,
    /// Massive rewriting workload (8.2 %).
    MassiveWorkload,
    /// Unsupported image/video/audio (6.5 %).
    MultiModal,
    /// Overly toxic/copyrighted/sensitive (15.9 %).
    Safety,
}

impl FilterReason {
    /// All reasons in Table III order.
    pub const ALL: [FilterReason; 5] = [
        FilterReason::InvalidInput,
        FilterReason::BeyondExpertise,
        FilterReason::MassiveWorkload,
        FilterReason::MultiModal,
        FilterReason::Safety,
    ];

    /// Table III row label.
    pub fn label(self) -> &'static str {
        match self {
            FilterReason::InvalidInput => "Invalid Input",
            FilterReason::BeyondExpertise => "Beyond Expertise",
            FilterReason::MassiveWorkload => "Massive Workload",
            FilterReason::MultiModal => "Multi-modal",
            FilterReason::Safety => "Safety",
        }
    }

    /// Table III reported ratio among excluded pairs.
    pub fn paper_ratio(self) -> f64 {
        match self {
            FilterReason::InvalidInput => 0.417,
            FilterReason::BeyondExpertise => 0.277,
            FilterReason::MassiveWorkload => 0.082,
            FilterReason::MultiModal => 0.065,
            FilterReason::Safety => 0.159,
        }
    }

    /// The reason whose [`label`](Self::label) is `label`, if any.
    pub fn from_label(label: &str) -> Option<FilterReason> {
        FilterReason::ALL.into_iter().find(|r| r.label() == label)
    }
}

/// Detects whether a pair should be excluded, and why.
pub fn detect_reason(instruction: &str, response: &str) -> Option<FilterReason> {
    // Order matters: safety trumps everything, then structural problems.
    if lexicon::contains_marker(instruction, lexicon::UNSAFE_MARKERS) {
        return Some(FilterReason::Safety);
    }
    if lexicon::contains_marker(instruction, lexicon::MULTIMODAL_MARKERS) {
        return Some(FilterReason::MultiModal);
    }
    if lexicon::contains_marker(instruction, lexicon::INVALID_INPUT_MARKERS) {
        return Some(FilterReason::InvalidInput);
    }
    if lexicon::contains_marker(instruction, lexicon::EXPERTISE_MARKERS) {
        return Some(FilterReason::BeyondExpertise);
    }
    if lexicon::contains_marker(instruction, lexicon::WORKLOAD_MARKERS) {
        return Some(FilterReason::MassiveWorkload);
    }
    let _ = response; // reasons are instruction-side in Table III
    None
}

/// Outcome of the preliminary filter over a dataset.
#[derive(Debug, Clone, Serialize)]
pub struct FilterOutcome {
    /// Ids that proceed to primary revision.
    pub kept: Vec<u64>,
    /// Excluded ids with their reasons.
    pub excluded: Vec<(u64, FilterReason)>,
    /// Matched-but-retained ids (the diversity exception).
    pub retained_for_diversity: Vec<(u64, FilterReason)>,
}

impl FilterOutcome {
    /// Exclusion ratio.
    pub fn exclusion_ratio(&self) -> f64 {
        let total = self.kept.len() + self.excluded.len();
        if total == 0 {
            0.0
        } else {
            self.excluded.len() as f64 / total as f64
        }
    }

    /// Share of each reason among exclusions (Table III's Ratio column).
    pub fn reason_ratios(&self) -> Vec<(FilterReason, f64)> {
        let n = self.excluded.len().max(1) as f64;
        FilterReason::ALL
            .iter()
            .map(|&r| {
                let c = self
                    .excluded
                    .iter()
                    .filter(|(_, reason)| *reason == r)
                    .count();
                (r, c as f64 / n)
            })
            .collect()
    }
}

/// Share of matched pairs retained anyway (§II-E1 "a small proportion of
/// such pairs were retained during the revision to ensure diversity").
const DIVERSITY_RETENTION: f64 = 0.04;

/// The preliminary filter as an executor stage. Matched pairs are discarded
/// with a `filter:<reason>` tag, except the per-item diversity draw, which
/// keeps them with a `retained:<reason>` tag.
pub struct PreliminaryFilterStage;

impl PreliminaryFilterStage {
    /// The stage's report name.
    pub const NAME: &'static str = "preliminary-filter";
}

impl Stage for PreliminaryFilterStage {
    fn name(&self) -> &str {
        Self::NAME
    }

    fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) -> StageOutcome {
        let Some(reason) = detect_reason(&item.pair.instruction, &item.pair.response) else {
            return StageOutcome::Ok;
        };
        if ctx.rng.gen_bool(DIVERSITY_RETENTION) {
            item.tag(format!("retained:{}", reason.label()));
            ctx.bump(&format!("retained:{}", reason.label()));
        } else {
            item.discard(format!("filter:{}", reason.label()));
            ctx.bump(&format!("excluded:{}", reason.label()));
        }
        StageOutcome::Ok
    }

    fn deadline(&self) -> Option<std::time::Duration> {
        // Heuristic string matching only.
        Some(std::time::Duration::from_secs(2))
    }
}

/// Runs the preliminary filter over a dataset on the shared executor.
pub fn preliminary_filter(dataset: &Dataset, seed: u64) -> FilterOutcome {
    preliminary_filter_stream(dataset, seed, Feed::Batch)
}

/// Runs the preliminary filter under an explicit arrival model.
/// [`preliminary_filter`] is this with [`Feed::Batch`]; under a
/// [`Feed::Sustained`] feed, arrivals shed at admission never reach the
/// filter stage and appear in neither `kept` nor `excluded`.
pub fn preliminary_filter_stream(dataset: &Dataset, seed: u64, feed: Feed) -> FilterOutcome {
    let stages: Vec<Box<dyn Stage>> = vec![Box::new(PreliminaryFilterStage)];
    let source = StreamSource {
        pairs: dataset.pairs.clone(),
        feed,
    };
    let run = Executor::new(ExecutorConfig::new(seed)).run_stream(&stages, source);
    let mut out = FilterOutcome {
        kept: Vec::with_capacity(dataset.len()),
        excluded: Vec::new(),
        retained_for_diversity: Vec::new(),
    };
    for item in &run.items {
        if item.has_tag("shed:admission") {
            continue;
        }
        match item.tags.first() {
            Some(tag) if item.retained => {
                let reason = tag
                    .strip_prefix("retained:")
                    .and_then(FilterReason::from_label)
                    // lint: allow(P1, reason = "tag was written by FilterStage itself in this same run as `retained:<label>`; round-trip is stage-internal, not user data")
                    .expect("retained items carry a reason tag");
                out.retained_for_diversity.push((item.pair.id, reason));
                out.kept.push(item.pair.id);
            }
            Some(tag) => {
                let reason = tag
                    .strip_prefix("filter:")
                    .and_then(FilterReason::from_label)
                    // lint: allow(P1, reason = "tag was written by FilterStage itself in this same run as `filter:<label>`; round-trip is stage-internal, not user data")
                    .expect("discarded items carry a reason tag");
                out.excluded.push((item.pair.id, reason));
            }
            None => out.kept.push(item.pair.id),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use coachlm_data::generator::{generate, GeneratorConfig, Tier};

    #[test]
    fn detects_each_reason() {
        assert_eq!(
            detect_reason("Title this. Input: [Link to an article]", "x"),
            Some(FilterReason::InvalidInput)
        );
        assert_eq!(
            detect_reason("Provide the chords for this melody", "x"),
            Some(FilterReason::BeyondExpertise)
        );
        assert_eq!(
            detect_reason("Please rewrite the entire lyrics of the song", "x"),
            Some(FilterReason::MassiveWorkload)
        );
        assert_eq!(
            detect_reason("List the products. Input: (photo of a store)", "x"),
            Some(FilterReason::MultiModal)
        );
        assert_eq!(
            detect_reason("Explain how to avoid paying the fine illegally", "x"),
            Some(FilterReason::Safety)
        );
        assert_eq!(
            detect_reason("Explain the water cycle", "water moves"),
            None
        );
    }

    #[test]
    fn filter_matches_generator_provenance() {
        let (d, prov) = generate(&GeneratorConfig::small(3000, 21));
        let out = preliminary_filter(&d, 9);
        // Every excluded id must be a Filterable-tier pair.
        for (id, _) in &out.excluded {
            let p = &prov[*id as usize];
            assert_eq!(
                p.tier,
                Tier::Filterable,
                "excluded a non-filterable pair {id}"
            );
        }
        // Almost all filterable pairs are excluded (up to diversity retention).
        let filterable = prov.iter().filter(|p| p.tier == Tier::Filterable).count();
        let caught = out.excluded.len() + out.retained_for_diversity.len();
        assert_eq!(caught, filterable);
    }

    #[test]
    fn exclusion_ratio_near_paper() {
        let (d, _) = generate(&GeneratorConfig::small(6000, 33));
        let out = preliminary_filter(&d, 1);
        let ratio = out.exclusion_ratio();
        // Paper: 1088/6000 = 18.1%, minus the ~4% diversity retention.
        assert!((0.14..0.22).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn reason_mix_tracks_table3() {
        let (d, _) = generate(&GeneratorConfig::small(12000, 5));
        let out = preliminary_filter(&d, 2);
        for (reason, measured) in out.reason_ratios() {
            let want = reason.paper_ratio();
            assert!(
                (measured - want).abs() < 0.05,
                "{}: measured {measured:.3} want {want:.3}",
                reason.label()
            );
        }
    }

    #[test]
    fn diversity_retention_is_small_but_nonzero() {
        let (d, _) = generate(&GeneratorConfig::small(12000, 8));
        let out = preliminary_filter(&d, 3);
        let retained = out.retained_for_diversity.len() as f64;
        let matched = retained + out.excluded.len() as f64;
        let share = retained / matched;
        assert!(share > 0.005 && share < 0.10, "share {share}");
    }

    #[test]
    fn filter_is_deterministic() {
        let (d, _) = generate(&GeneratorConfig::small(1000, 4));
        let a = preliminary_filter(&d, 7);
        let b = preliminary_filter(&d, 7);
        assert_eq!(a.kept, b.kept);
        assert_eq!(a.excluded, b.excluded);
    }
}
