//! The expert revision engine (§II-E2).
//!
//! Experts follow the principle of "making all necessary revisions": every
//! dimension the Table II criteria flag gets repaired, and the unit owner's
//! quality control re-runs the rubric until the pair scores ≥ 95 on the
//! response and carries no basic instruction flaws. Unlike CoachLM's
//! transducer, the expert reviser is *deterministic and complete*: full
//! lexicon coverage, no application probability — that asymmetry (expert =
//! ground truth, model = learned approximation) is the premise of coach
//! instruction tuning.

use crate::pool::ExpertPool;
use coachlm_data::pair::{Dataset, InstructionPair};
use coachlm_judge::criteria::{CriteriaEngine, PairScores};
use coachlm_lm::knowledge::KnowledgeBase;
use coachlm_runtime::{
    Executor, ExecutorConfig, Feed, Stage, StageCtx, StageItem, StageOutcome, StreamSource,
};
use coachlm_text::fxhash::FxHashSet;
use coachlm_text::lexicon;
use coachlm_text::normalize;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Table IV revision categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum RevisionKind {
    /// Instruction: adjust language/layout (Readability, 68.1 %).
    AdjustInstruction,
    /// Instruction: rewrite infeasible/ambiguous parts (Feasibility, 24.9 %).
    RewriteInstruction,
    /// Instruction: diversify context (Contextualization, 7.0 %).
    DiversifyInstruction,
    /// Response: diversify angles / expand reasoning (43.7 %).
    DiversifyResponse,
    /// Response: rewrite for fluency/relevance/logic (24.5 %).
    RewriteResponse,
    /// Response: adjust layout/tone (23.3 %).
    AdjustResponse,
    /// Response: correct facts/calculations (6.7 %).
    CorrectResponse,
    /// Response: safety mitigation and other complex cases (1.9 %).
    OtherResponse,
}

/// One expert revision: `(x, x_r)` plus provenance.
#[derive(Debug, Clone, Serialize)]
pub struct RevisionRecord {
    /// Pair id.
    pub id: u64,
    /// The routed expert (group A).
    pub expert: u32,
    /// Original pair `x`.
    pub original: InstructionPair,
    /// Revised pair `x_r`.
    pub revised: InstructionPair,
    /// Whether the instruction side changed.
    pub instruction_revised: bool,
    /// Primary Table IV category of the instruction revision.
    pub instruction_kind: Option<RevisionKind>,
    /// Primary Table IV category of the response revision.
    pub response_kind: Option<RevisionKind>,
    /// Owner QC iterations needed.
    pub qc_iterations: u32,
    /// Final rubric scores.
    pub final_scores: PairScores,
}

/// The rubric-driven reviser.
#[derive(Debug)]
pub struct ExpertReviser {
    engine: CriteriaEngine,
    kb: KnowledgeBase,
    seed: u64,
}

/// QC acceptance: response score threshold (§II-E2 "a score of 95 or
/// higher").
const QC_RESPONSE_TARGET: f64 = 95.0;
/// Probability the expert enriches an otherwise adjust-only instruction
/// with extra context (yields Table IV's 7 % Diversify share).
const CONTEXT_ENRICH_P: f64 = 0.035;

/// The expert revision step as an executor stage: pairs outside the kept
/// set are discarded; kept pairs the rubric flags are revised in place,
/// with the full [`RevisionRecord`] attached as the item payload.
pub struct ExpertReviseStage<'a> {
    reviser: &'a ExpertReviser,
    pool: &'a ExpertPool,
    kept: FxHashSet<u64>,
}

impl<'a> ExpertReviseStage<'a> {
    /// The stage's report name.
    pub const NAME: &'static str = "expert-revise";

    /// A stage revising the pairs in `kept_ids` with `reviser`.
    pub fn new(reviser: &'a ExpertReviser, pool: &'a ExpertPool, kept_ids: &[u64]) -> Self {
        ExpertReviseStage {
            reviser,
            pool,
            kept: kept_ids.iter().copied().collect(),
        }
    }
}

impl Stage for ExpertReviseStage<'_> {
    fn name(&self) -> &str {
        Self::NAME
    }

    fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) -> StageOutcome {
        if !self.kept.contains(&item.pair.id) {
            item.discard("not-kept");
            ctx.bump("skipped");
            return StageOutcome::Ok;
        }
        match self.reviser.revise(self.pool, &item.pair) {
            Some(rec) => {
                item.pair = rec.revised.clone();
                item.set_payload(rec);
                ctx.bump("revised");
            }
            None => ctx.bump("already-acceptable"),
        }
        StageOutcome::Ok
    }

    fn deadline(&self) -> Option<std::time::Duration> {
        // Budget for one modelled expert revision of a pair.
        Some(std::time::Duration::from_secs(5))
    }
}

impl ExpertReviser {
    /// Creates a reviser (full knowledge coverage).
    pub fn new(seed: u64) -> Self {
        Self {
            engine: CriteriaEngine::new(),
            kb: KnowledgeBase::with_coverage(1.0),
            seed,
        }
    }

    /// Whether the rubric demands a revision of this pair at all.
    pub fn needs_revision(&self, pair: &InstructionPair) -> bool {
        let ia = self.engine.analyze_instruction(&pair.instruction);
        let ra = self
            .engine
            .analyze_response(&pair.instruction, &pair.response);
        ia.basic_flaws() > 0
            || ra.basic_flaws() > 0
            || ra.unsafe_content
            || ra.machine_tone
            || !ra.readable()
    }

    /// Revises one pair if the rubric demands it; `None` otherwise.
    pub fn revise(&self, pool: &ExpertPool, pair: &InstructionPair) -> Option<RevisionRecord> {
        if !self.needs_revision(pair) {
            return None;
        }
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ pair.id.wrapping_mul(0x2545_F491_4F6C_DD1D));
        let expert = pool.route(pair.category.class(), pair.id);

        let mut instruction = pair.instruction.clone();
        let mut response = pair.response.clone();
        let mut instruction_kind: Option<RevisionKind> = None;
        let mut response_kind: Option<RevisionKind> = None;
        let mut qc_iterations = 0u32;

        // Owner QC loop: repair, re-score, repeat until acceptance.
        loop {
            qc_iterations += 1;
            self.repair_instruction(
                &mut rng,
                &mut instruction,
                &mut instruction_kind,
                qc_iterations == 1,
            );
            self.repair_response(&mut rng, &instruction, &mut response, &mut response_kind);
            let scores = self.engine.score_pair(&instruction, &response);
            let instr_ok = self.engine.analyze_instruction(&instruction).basic_flaws() == 0;
            if (scores.response >= QC_RESPONSE_TARGET && instr_ok) || qc_iterations >= 4 {
                let instruction_revised = instruction != pair.instruction;
                return Some(RevisionRecord {
                    id: pair.id,
                    expert,
                    original: pair.clone(),
                    revised: InstructionPair::new(
                        pair.id,
                        instruction.clone(),
                        response.clone(),
                        pair.category,
                    ),
                    instruction_revised,
                    instruction_kind: instruction_revised
                        .then_some(instruction_kind.unwrap_or(RevisionKind::AdjustInstruction)),
                    response_kind: Some(response_kind.unwrap_or(RevisionKind::DiversifyResponse)),
                    qc_iterations,
                    final_scores: scores,
                });
            }
        }
    }

    /// Revises every kept pair of a dataset on the shared executor,
    /// returning the expert revision dataset `R` (only pairs that needed
    /// revision appear, in `kept_ids` dataset order).
    pub fn revise_dataset(
        &self,
        pool: &ExpertPool,
        dataset: &Dataset,
        kept_ids: &[u64],
    ) -> Vec<RevisionRecord> {
        self.revise_stream(pool, dataset, kept_ids, Feed::Batch)
    }

    /// Revises every kept pair under an explicit arrival model.
    /// [`revise_dataset`](Self::revise_dataset) is this with
    /// [`Feed::Batch`]; under a [`Feed::Sustained`] feed, pairs shed at
    /// admission never reach the reviser and produce no record.
    pub fn revise_stream(
        &self,
        pool: &ExpertPool,
        dataset: &Dataset,
        kept_ids: &[u64],
        feed: Feed,
    ) -> Vec<RevisionRecord> {
        let stages: Vec<Box<dyn Stage + '_>> =
            vec![Box::new(ExpertReviseStage::new(self, pool, kept_ids))];
        let source = StreamSource {
            pairs: dataset.pairs.clone(),
            feed,
        };
        // The reviser seeds its own RNG per pair id, so the chain seed only
        // namespaces the (unused) ctx RNG.
        let run = Executor::new(ExecutorConfig::new(self.seed)).run_stream(&stages, source);
        run.items
            .into_iter()
            .filter_map(|mut item| item.take_payload::<RevisionRecord>())
            .collect()
    }

    // ---- instruction repairs ----------------------------------------------

    fn repair_instruction<R: Rng>(
        &self,
        rng: &mut R,
        instruction: &mut String,
        kind: &mut Option<RevisionKind>,
        first_pass: bool,
    ) {
        let topic = lexicon::content_words(instruction, 3);
        let mut rewrote = false;

        // Strip infeasible requirements.
        while let Some(m) = lexicon::find_marker(instruction, lexicon::INFEASIBLE_PHRASES) {
            *instruction = remove_phrase(instruction, m);
            rewrote = true;
        }
        // Retained Table III cases (§II-E2 "1.9% were cases that should
        // have fell into the categories of Table III"): rewrite into a
        // feasible, self-contained request on the same topic.
        let table3_markers = lexicon::INVALID_INPUT_MARKERS
            .iter()
            .chain(lexicon::MULTIMODAL_MARKERS)
            .chain(lexicon::EXPERTISE_MARKERS)
            .chain(lexicon::WORKLOAD_MARKERS)
            .chain(lexicon::UNSAFE_MARKERS)
            .copied()
            .collect::<Vec<_>>();
        if lexicon::contains_marker(instruction, &table3_markers)
            || lexicon::contains_marker(instruction, lexicon::VAGUE_PHRASES)
        {
            let templates = self.kb.clarifications();
            let topic_word = topic
                .first()
                .map(String::as_str)
                .unwrap_or("the given subject");
            let t = templates[rng.gen_range(0..templates.len())];
            *instruction = KnowledgeBase::fill(t, topic_word);
            rewrote = true;
        }

        // Lexical fixes.
        let fixed = self.fix_lexical(instruction);
        let adjusted_lexical = fixed != *instruction;
        *instruction = fixed;

        // Layout.
        let tidy = normalize::normalize_layout(instruction);
        let adjusted_layout = tidy != *instruction;
        *instruction = tidy;

        // Occasional context enrichment (Table IV's 7 % Diversify share);
        // only rolled on the first QC pass so iteration count doesn't
        // compound the probability.
        let mut diversified = false;
        if first_pass
            && !rewrote
            && !lexicon::contains_marker(instruction, lexicon::CONTEXT_MARKERS)
            && rng.gen_bool(CONTEXT_ENRICH_P)
        {
            let contexts = self.kb.contexts();
            let c = contexts[rng.gen_range(0..contexts.len())];
            *instruction = format!("{} {c}", instruction.trim_end());
            diversified = true;
        }

        if kind.is_none() {
            *kind = if rewrote {
                Some(RevisionKind::RewriteInstruction)
            } else if diversified {
                Some(RevisionKind::DiversifyInstruction)
            } else if adjusted_lexical || adjusted_layout {
                Some(RevisionKind::AdjustInstruction)
            } else {
                None
            };
        }
    }

    // ---- response repairs -------------------------------------------------

    fn repair_response<R: Rng>(
        &self,
        rng: &mut R,
        instruction: &str,
        response: &mut String,
        kind: &mut Option<RevisionKind>,
    ) {
        let topic = lexicon::content_words(instruction, 3);
        let topic_word = topic
            .first()
            .cloned()
            .unwrap_or_else(|| "the topic".to_string());
        let analysis = self.engine.analyze_response(instruction, response);

        let mut other = false;
        let mut rewrote = false;
        let mut corrected = false;
        let mut adjusted = false;

        // Safety first.
        if analysis.unsafe_content {
            let lead = self.kb.safe_completions()[0];
            *response = format!("{lead} {}", self.expansion_block(rng, &topic_word, 3));
            other = true;
        }

        // Format junk: clean and, if the template leaked, recompose.
        if analysis.degenerate && !other {
            let cleaned = coachlm_text::clean::clean_output(response);
            *response = cleaned;
            if matches!(
                coachlm_text::clean::validate_pair(instruction, response),
                coachlm_text::clean::Validity::TemplateLeak
            ) {
                *response = self.expansion_block(rng, &topic_word, 3);
            }
            other = true;
        }

        // Relevance.
        if analysis.irrelevant && !other {
            *response = self.expansion_block(rng, &topic_word, 3);
            rewrote = true;
        }

        // Facts.
        while let Some((wrong, right)) = self.kb.fact_correction(response) {
            *response = response.replace(&wrong, &right);
            corrected = true;
        }

        // Lexical fluency.
        let mut lexical_fixed = false;
        let fixed = self.fix_lexical(response);
        if fixed != *response {
            lexical_fixed = true;
            *response = fixed;
        }

        // Truncation: finish the dangling thought.
        if analysis.truncated {
            let trimmed = response
                .trim_end()
                .trim_end_matches("...")
                .trim_end_matches([',', ';', ' '])
                .to_string();
            *response = format!(
                "{} {}",
                normalize::ensure_terminal_punctuation(&trimmed),
                self.expansion_block(rng, &topic_word, 1)
            );
        }

        // Tone.
        if analysis.machine_tone {
            if let Some(m) = lexicon::find_marker(response, lexicon::MACHINE_TONE_MARKERS) {
                *response = remove_phrase(response, m);
                adjusted = true;
            }
        }

        // Expansion until the advanced band is reachable: reasoning,
        // example, substance (the dominant Table IV class).
        let mut expanded = false;
        let mut guard = 0;
        loop {
            let a = self.engine.analyze_response(instruction, response);
            if (a.richness() >= 0.9 && a.words >= 50) || guard >= 4 {
                break;
            }
            guard += 1;
            let add = self.expansion_block(rng, &topic_word, 2);
            *response = format!("{} {add}", normalize::ensure_terminal_punctuation(response));
            expanded = true;
        }

        // Warmth (optional: neutral tone already clears the QC bar). Only
        // considered when the response was substantively reworked — polish
        // passes on already-good responses stay minimal, which is what
        // populates the low-edit-distance tail of `R` (§II-F2).
        if (expanded || rewrote || other)
            && rng.gen_bool(0.5)
            && !lexicon::contains_marker(response, lexicon::WARM_MARKERS)
        {
            let w = self.kb.warmth()[rng.gen_range(0..self.kb.warmth().len())];
            *response = format!("{} {w}", normalize::ensure_terminal_punctuation(response));
            adjusted = true;
        }

        // Layout.
        let tidy = normalize::normalize_layout(response);
        if tidy != *response {
            *response = tidy;
            adjusted = true;
        }

        if kind.is_none() {
            // Table IV primary-type priority, classified from the *initial*
            // analysis: what was wrong with the pair determines the primary
            // revision category, not the (near-universal) expansion that
            // also happened.
            *kind = if other {
                Some(RevisionKind::OtherResponse)
            } else if rewrote || lexical_fixed {
                Some(RevisionKind::RewriteResponse)
            } else if corrected {
                Some(RevisionKind::CorrectResponse)
            } else if analysis.machine_tone || analysis.layout_flaws > 0 {
                Some(RevisionKind::AdjustResponse)
            } else if expanded {
                Some(RevisionKind::DiversifyResponse)
            } else if adjusted {
                Some(RevisionKind::AdjustResponse)
            } else {
                None
            };
        }
    }

    /// Fixes every misspelling and grammar-pair error. Returns the input
    /// unchanged (same whitespace) when nothing needs fixing.
    fn fix_lexical(&self, text: &str) -> String {
        let words = coachlm_text::token::words(text);
        let mut fixed_any = false;
        let mut out: Vec<String> = Vec::with_capacity(words.len());
        for w in &words {
            match self.kb.typo_correction(&normalize::fold_case(w)) {
                Some(fix) => {
                    fixed_any = true;
                    out.push(fix.to_string());
                }
                None => out.push((*w).to_string()),
            }
        }
        let mut joined = if fixed_any {
            join_words(&out)
        } else {
            text.to_string()
        };
        while let Some((wrong, right)) = self.kb.grammar_correction(&joined) {
            let folded = normalize::fold_case(&joined);
            match folded.find(wrong) {
                Some(pos) => joined.replace_range(pos..pos + wrong.len(), right),
                None => break,
            }
        }
        joined
    }

    /// Composes `n` expansion sentences about `topic` (reasoning + example
    /// markers included so richness is detectable).
    fn expansion_block<R: Rng>(&self, rng: &mut R, topic: &str, n: usize) -> String {
        let templates = self.kb.expansions();
        let start = rng.gen_range(0..templates.len());
        let picked: Vec<String> = (0..n.max(1))
            .map(|i| KnowledgeBase::fill(templates[(start + i) % templates.len()], topic))
            .collect();
        picked.join(" ")
    }
}

/// Removes one case-insensitive occurrence of `phrase`.
fn remove_phrase(text: &str, phrase: &str) -> String {
    let folded = normalize::fold_case(text);
    let needle = normalize::fold_case(phrase);
    match folded.find(&needle) {
        Some(pos) => {
            let mut out = String::with_capacity(text.len());
            out.push_str(&text[..pos]);
            out.push_str(&text[pos + needle.len()..]);
            normalize::collapse_whitespace(&out)
        }
        None => text.to_string(),
    }
}

/// Joins word tokens with punctuation-aware spacing.
fn join_words(words: &[String]) -> String {
    let mut out = String::new();
    for w in words {
        let is_punct = w.chars().count() == 1 && w.chars().all(|c| !c.is_alphanumeric());
        let opens = matches!(w.as_str(), "(" | "[" | "{");
        if !out.is_empty() && (!is_punct || opens) && !out.ends_with(['(', '[', '{']) {
            out.push(' ');
        }
        out.push_str(w);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use coachlm_data::category::Category;
    use coachlm_data::generator::{generate, GeneratorConfig, Tier};

    fn reviser() -> (ExpertReviser, ExpertPool) {
        (ExpertReviser::new(42), ExpertPool::paper_pool())
    }

    fn pair(instr: &str, resp: &str) -> InstructionPair {
        InstructionPair::new(1, instr, resp, Category(0))
    }

    #[test]
    fn clean_rich_pairs_need_no_revision() {
        let (r, _) = reviser();
        let p = pair(
            "Explain the water cycle with one example, step by step.",
            "The water cycle moves water through evaporation and rain. This happens \
             because the sun heats the oceans and lifts vapor into the sky. For example, \
             puddles vanish on sunny days. In summary, water circulates constantly between \
             the surface and the sky above us all.",
        );
        assert!(!r.needs_revision(&p));
        assert!(r.revise(&ExpertPool::paper_pool(), &p).is_none());
    }

    #[test]
    fn revised_pairs_reach_qc_target() {
        let (r, pool) = reviser();
        let p = pair("explain teh water cycle", "Water moves becuase of heat,");
        let rec = r.revise(&pool, &p).expect("needs revision");
        assert!(rec.final_scores.response >= 95.0, "{:?}", rec.final_scores);
        assert!(rec.final_scores.instruction >= 80.0);
        assert!(rec.qc_iterations <= 4);
    }

    #[test]
    fn typos_fixed_everywhere() {
        let (r, pool) = reviser();
        let p = pair(
            "Summarize teh article becuase thier team needs it",
            "The article says alot about teh goverment and its plans untill next year.",
        );
        let rec = r.revise(&pool, &p).unwrap();
        for (wrong, _) in lexicon::TYPO_PAIRS {
            assert!(
                !rec.revised.instruction.contains(wrong) && !rec.revised.response.contains(wrong),
                "typo {wrong} survived: {} / {}",
                rec.revised.instruction,
                rec.revised.response
            );
        }
    }

    #[test]
    fn unsafe_response_mitigated_as_other() {
        let (r, pool) = reviser();
        let p = pair(
            "Give investment advice about compound interest",
            "Buy now, guaranteed to double your investment by Friday.",
        );
        let rec = r.revise(&pool, &p).unwrap();
        assert_eq!(rec.response_kind, Some(RevisionKind::OtherResponse));
        assert!(!lexicon::contains_marker(
            &rec.revised.response,
            lexicon::UNSAFE_MARKERS
        ));
        assert!(rec.final_scores.response >= 95.0);
    }

    #[test]
    fn bare_responses_expand_to_diversify() {
        let (r, pool) = reviser();
        let p = pair(
            "Explain the water cycle to a student",
            "Water evaporates and then rains.",
        );
        let rec = r.revise(&pool, &p).unwrap();
        assert_eq!(rec.response_kind, Some(RevisionKind::DiversifyResponse));
        assert!(rec.revised.response_words() >= 50);
    }

    #[test]
    fn fact_errors_corrected() {
        let (r, pool) = reviser();
        let p = pair(
            "Describe France briefly for travelers",
            "France is lovely in spring. Remember that the capital of France is Berlin.",
        );
        let rec = r.revise(&pool, &p).unwrap();
        assert!(
            rec.revised.response.contains("Paris"),
            "{}",
            rec.revised.response
        );
        assert!(!rec.revised.response.contains("Berlin"));
        assert_eq!(rec.response_kind, Some(RevisionKind::CorrectResponse));
    }

    #[test]
    fn vague_instructions_rewritten() {
        let (r, pool) = reviser();
        let p = pair(
            "Explain the tides in the ocean - do something about it",
            "Tides rise and fall.",
        );
        let rec = r.revise(&pool, &p).unwrap();
        assert_eq!(rec.instruction_kind, Some(RevisionKind::RewriteInstruction));
        assert!(!lexicon::contains_marker(
            &rec.revised.instruction,
            lexicon::VAGUE_PHRASES
        ));
        assert!(
            coachlm_text::normalize::fold_case(&rec.revised.instruction).contains("tides"),
            "{}",
            rec.revised.instruction
        );
    }

    #[test]
    fn revision_dataset_share_matches_deficiency_rate() {
        let (r, pool) = reviser();
        let (d, prov) = generate(&GeneratorConfig::small(2500, 3));
        let kept: Vec<u64> = prov
            .iter()
            .filter(|p| p.tier != Tier::Filterable)
            .map(|p| p.id)
            .collect();
        let records = r.revise_dataset(&pool, &d, &kept);
        let share = records.len() as f64 / kept.len() as f64;
        // Paper: 2301/4912 = 46.8 % of kept pairs get revised.
        assert!((share - 0.468).abs() < 0.05, "share {share}");
    }

    #[test]
    fn edit_distance_spread_supports_alpha_selection() {
        let (r, pool) = reviser();
        let (d, prov) = generate(&GeneratorConfig::small(1200, 13));
        let kept: Vec<u64> = prov
            .iter()
            .filter(|p| p.tier != Tier::Filterable)
            .map(|p| p.id)
            .collect();
        let records = r.revise_dataset(&pool, &d, &kept);
        let mut dists: Vec<usize> = records
            .iter()
            .map(|rec| {
                coachlm_text::editdist::word_edit_distance(
                    &rec.original.response,
                    &rec.revised.response,
                )
            })
            .collect();
        dists.sort_unstable();
        let lo = dists[dists.len() / 10];
        let hi = dists[dists.len() * 9 / 10];
        assert!(
            hi > lo * 2,
            "edit distances must spread: p10 {lo}, p90 {hi}"
        );
    }

    #[test]
    fn deterministic_per_pair() {
        let (r, pool) = reviser();
        let p = pair("explain teh tides", "Tides rise,");
        let a = r.revise(&pool, &p).unwrap();
        let b = r.revise(&pool, &p).unwrap();
        assert_eq!(a.revised, b.revised);
    }

    #[test]
    fn expert_routing_respects_class() {
        let (r, pool) = reviser();
        let mut p = pair(
            "write a short story about a dragon please,",
            "Once upon a time,",
        );
        p.category = Category::by_name("story creation").unwrap();
        let rec = r.revise(&pool, &p).unwrap();
        let unit = pool.unit_for(coachlm_data::category::TaskClass::Creative);
        assert!(unit.members.contains(&rec.expert));
    }
}
