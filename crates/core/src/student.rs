//! The instruction-tuning simulator.
//!
//! Table IX's causal claim is: *training-set quality and coverage determine
//! a tuned model's instruction-following ability*. This module implements
//! exactly that map. "Fine-tuning" a student derives a per-category skill
//! from the training dataset:
//!
//! ```text
//! skill(c) = base + gain · mean_quality(c) · sat(n_c / half) − penalty · low_quality_frac(c) + bonus
//! ```
//!
//! where quality is *measured* by the criteria engine from the pair text
//! (never from generator labels), `sat(x) = x/(1+x)` captures diminishing
//! returns in coverage, and the low-quality penalty encodes the finding the
//! paper leans on throughout (§II-F2): bad pairs actively hurt alignment.
//! Response generation then composes text whose measurable quality tracks
//! the category skill — closing the loop for the PandaLM/GPT-4 judges.

use coachlm_data::category::Category;
use coachlm_data::compose::{compose_response, ComposeSpec};
use coachlm_data::pair::Dataset;
use coachlm_data::testsets::TestItem;
use coachlm_judge::criteria::CriteriaEngine;
use coachlm_text::fxhash::FxHashMap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Parameters of the quality→skill map. Defaults are calibrated against
/// Table IX's baseline group (see EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SkillParams {
    /// Backbone contribution of a 7B LLaMA full fine-tune.
    pub base: f64,
    /// Maximum data-driven gain.
    pub gain: f64,
    /// Category pair-count at which the coverage term is half-saturated.
    pub coverage_half: f64,
    /// Penalty weight on the low-quality fraction.
    pub low_quality_penalty: f64,
    /// Additive bonus (hyper-parameter optimisation, RL stages, scale).
    pub bonus: f64,
}

impl Default for SkillParams {
    fn default() -> Self {
        Self {
            base: 0.375,
            gain: 0.55,
            coverage_half: 60.0,
            low_quality_penalty: 0.30,
            bonus: 0.0,
        }
    }
}

/// Quality score (0–1) below which a pair counts as low quality.
const LOW_QUALITY_BAR: f64 = 0.75;

/// A tuned (or profiled) student model.
#[derive(Debug, Clone, Serialize)]
pub struct StudentModel {
    /// Display name (Table IX row).
    pub name: String,
    skill: FxHashMap<Category, f64>,
    global_skill: f64,
    noise: f64,
    seed: u64,
}

/// Tunes a student on `dataset` (measured quality → skill).
pub fn tune_student(
    name: impl Into<String>,
    dataset: &Dataset,
    params: SkillParams,
    seed: u64,
) -> StudentModel {
    let engine = CriteriaEngine::new();
    let mut per_cat: FxHashMap<Category, Vec<f64>> = FxHashMap::default();
    for p in dataset.iter() {
        let q = engine.score_pair(&p.instruction, &p.response).response / 100.0;
        per_cat.entry(p.category).or_default().push(q);
    }
    let mut skill = FxHashMap::default();
    let mut all: Vec<f64> = Vec::with_capacity(dataset.len());
    // `all` feeds a float reduction in `skill_from`, so hash-map visit
    // order would leak into the global skill — fix the order by category.
    // lint: allow(D3, reason = "entries are collected and sorted by category before the float reduction")
    let mut by_cat: Vec<(&Category, &Vec<f64>)> = per_cat.iter().collect();
    by_cat.sort_by_key(|(cat, _)| **cat);
    for (cat, qs) in by_cat {
        skill.insert(*cat, skill_from(qs, &params));
        all.extend_from_slice(qs);
    }
    let global_skill = skill_from(&all, &params);
    StudentModel {
        name: name.into(),
        skill,
        global_skill,
        noise: 0.06,
        seed,
    }
}

/// Builds a fixed-profile student (the "stronger LLMs" group and Vicuna,
/// which are not tuned on our datasets). `skill` is the uniform skill
/// level; small per-category jitter keeps responses from being identical
/// across categories.
pub fn profile_student(name: impl Into<String>, skill: f64, seed: u64) -> StudentModel {
    let name = name.into();
    let mut map = FxHashMap::default();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    for cat in Category::all() {
        map.insert(cat, (skill + rng.gen_range(-0.02f64..0.02)).clamp(0.0, 1.0));
    }
    StudentModel {
        name,
        skill: map,
        global_skill: skill,
        noise: 0.06,
        seed,
    }
}

fn skill_from(qs: &[f64], params: &SkillParams) -> f64 {
    if qs.is_empty() {
        return (params.base + params.bonus).clamp(0.0, 1.0);
    }
    let n = qs.len() as f64;
    let mq = qs.iter().sum::<f64>() / n;
    let lq = qs.iter().filter(|&&q| q < LOW_QUALITY_BAR).count() as f64 / n;
    let sat = n / (n + params.coverage_half);
    (params.base + params.gain * mq * sat - params.low_quality_penalty * lq + params.bonus)
        .clamp(0.0, 1.0)
}

impl StudentModel {
    /// Skill for a category (global fallback for unseen categories).
    pub fn skill(&self, cat: Category) -> f64 {
        self.skill.get(&cat).copied().unwrap_or(self.global_skill)
    }

    /// Dataset-wide skill.
    pub fn global_skill(&self) -> f64 {
        self.global_skill
    }

    /// Generates a response to a test item. Deterministic per (model seed,
    /// item id).
    pub fn respond(&self, item: &TestItem) -> String {
        let s = self.skill(item.category);
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ item.id.wrapping_mul(0x94D0_49BB_1331_11EB));
        let q = (s + gaussian(&mut rng) * self.noise).clamp(0.0, 1.0);
        let spec = ComposeSpec::sampled(q, &mut rng);
        compose_response(&mut rng, item.topic, spec)
    }
}

fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coachlm_data::generator::{generate, GeneratorConfig};
    use coachlm_data::testsets::{TestSet, TestSetKind};

    #[test]
    fn better_dataset_better_skill() {
        let (d, prov) = generate(&GeneratorConfig::small(2000, 1));
        // A "revised" stand-in: keep only rich pairs' text quality by
        // duplicating rich pairs over the whole id space.
        let rich_ids: Vec<u64> = prov
            .iter()
            .filter(|p| p.tier == coachlm_data::generator::Tier::Rich)
            .map(|p| p.id)
            .collect();
        let mut rich = Dataset::new("rich-only");
        for (i, id) in rich_ids.iter().cycle().take(2000).enumerate() {
            let mut p = d.get(*id).unwrap().clone();
            p.id = i as u64;
            rich.pairs.push(p);
        }
        let base = tune_student("base", &d, SkillParams::default(), 3);
        let better = tune_student("better", &rich, SkillParams::default(), 3);
        assert!(better.global_skill() > base.global_skill() + 0.05);
    }

    #[test]
    fn coverage_saturates() {
        let (d, _) = generate(&GeneratorConfig::small(4000, 2));
        let mut small = Dataset::new("small");
        small.pairs = d.pairs[..400].to_vec();
        let full = tune_student("full", &d, SkillParams::default(), 3);
        let tiny = tune_student("tiny", &small, SkillParams::default(), 3);
        assert!(full.global_skill() > tiny.global_skill());
        // But not 10× better: diminishing returns.
        assert!(full.global_skill() - tiny.global_skill() < 0.2);
    }

    #[test]
    fn bonus_raises_skill() {
        let (d, _) = generate(&GeneratorConfig::small(800, 3));
        let plain = tune_student("p", &d, SkillParams::default(), 3);
        let tuned = tune_student(
            "t",
            &d,
            SkillParams {
                bonus: 0.05,
                ..Default::default()
            },
            3,
        );
        assert!((tuned.global_skill() - plain.global_skill() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn profile_student_has_uniform_skill() {
        let m = profile_student("llama2", 0.8, 7);
        assert_eq!(m.global_skill(), 0.8);
        for cat in Category::all() {
            assert!((m.skill(cat) - 0.8).abs() < 0.03);
        }
    }

    #[test]
    fn responses_track_skill() {
        let ts = TestSet::build(TestSetKind::CoachLm150, 5);
        let weak = profile_student("weak", 0.35, 1);
        let strong = profile_student("strong", 0.9, 1);
        let engine = CriteriaEngine::new();
        let avg = |m: &StudentModel| {
            ts.items
                .iter()
                .map(|i| engine.score_pair(&i.instruction, &m.respond(i)).response)
                .sum::<f64>()
                / ts.len() as f64
        };
        let w = avg(&weak);
        let s = avg(&strong);
        assert!(s > w + 8.0, "weak {w:.1} strong {s:.1}");
    }

    #[test]
    fn responses_are_on_topic_and_deterministic() {
        let ts = TestSet::build(TestSetKind::Vicuna80, 6);
        let m = profile_student("m", 0.7, 2);
        for item in ts.items.iter().take(20) {
            let r1 = m.respond(item);
            let r2 = m.respond(item);
            assert_eq!(r1, r2);
            assert!(!coachlm_text::lexicon::is_off_topic(
                &item.instruction,
                &r1,
                0.2
            ));
        }
    }

    #[test]
    fn empty_dataset_gives_base_skill() {
        let d = Dataset::new("empty");
        let m = tune_student("e", &d, SkillParams::default(), 1);
        assert!((m.global_skill() - SkillParams::default().base).abs() < 1e-9);
    }
}
