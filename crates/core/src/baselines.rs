//! Baseline dataset builders and the Table IX model roster.
//!
//! Each Alpaca-variant row of Table IX differs only in its training
//! dataset (plus, for Alpaca-PandaLM, tuned hyper-parameters); the stronger
//! group and Vicuna are fixed capability profiles because they are not
//! trained on our data. Dataset builders:
//!
//! * **Alpaca** — the original (synthetic) ALPACA52K.
//! * **Alpaca-cleaned** — rule-based surface cleaning only: invalid
//!   characters, repeated strings, leaked templates. Deeper deficiencies
//!   (irrelevance, thin answers, fact errors) are untouched — exactly the
//!   limitation §II-A(1) ascribes to the project.
//! * **AlpaGasus** — keeps only pairs the ChatGPT rater scores above 4.5
//!   (the paper reports 9k of 52k), discarding the rest.
//! * **Alpaca-human** — the expert-revised subset merged back (§III-C).
//! * **Alpaca-CoachLM** — the CoachLM-revised dataset from [`crate::infer`].

use crate::student::{profile_student, tune_student, SkillParams, StudentModel};
use coachlm_data::pair::Dataset;
use coachlm_expert::revision::RevisionRecord;
use coachlm_judge::chatgpt::ChatGptRater;
use coachlm_runtime::{Executor, ExecutorConfig, Stage, StageCtx, StageItem, StageOutcome};
use coachlm_text::clean;
use coachlm_text::fxhash::FxHashMap;
use serde::Serialize;

/// Surface-level rule cleaning as a stage: invalid characters stripped from
/// instructions; responses cleaned and rid of leaked template prefixes.
pub struct CleanStage;

impl CleanStage {
    /// The stage's report name.
    pub const NAME: &'static str = "clean";
}

impl Stage for CleanStage {
    fn name(&self) -> &str {
        Self::NAME
    }

    fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) -> StageOutcome {
        let mut response = clean::clean_output(&item.pair.response);
        // Strip leaked template prefixes (the "inconsistent formats" class).
        for marker in ["### Response:", "### Instruction:"] {
            if let Some(stripped) = response.strip_prefix(marker) {
                response = stripped.trim_start().to_string();
            }
        }
        let instruction = clean::strip_invalid_chars(&item.pair.instruction);
        if response != item.pair.response {
            ctx.bump("response-cleaned");
        }
        if instruction != item.pair.instruction {
            ctx.bump("instruction-cleaned");
        }
        item.pair.response = response;
        item.pair.instruction = instruction;
        StageOutcome::Ok
    }

    fn deadline(&self) -> Option<std::time::Duration> {
        // In-process string surgery: generous, so a platform-wide latency
        // storm aimed at the LLM stages doesn't also time this out — it
        // exists only to bound a genuine hang.
        Some(std::time::Duration::from_secs(30))
    }
}

/// Builds the Alpaca-cleaned dataset: surface-level rule cleaning only.
pub fn build_cleaned(original: &Dataset) -> Dataset {
    // Cleaning draws no randomness, so the seed is arbitrary.
    let stages: Vec<Box<dyn Stage>> = vec![Box::new(CleanStage)];
    Executor::new(ExecutorConfig::new(0))
        .run_dataset(&stages, original)
        .dataset(format!("{}-cleaned", original.name))
}

/// AlpaGasus filtering as a stage: discard every pair the ChatGPT rater
/// scores at or below the threshold.
pub struct AlpaGasusStage<'a> {
    rater: &'a ChatGptRater,
    threshold: f64,
}

impl<'a> AlpaGasusStage<'a> {
    /// The stage's report name.
    pub const NAME: &'static str = "alpagasus-filter";

    /// A stage keeping pairs rated strictly above `threshold`.
    pub fn new(rater: &'a ChatGptRater, threshold: f64) -> Self {
        AlpaGasusStage { rater, threshold }
    }
}

impl Stage for AlpaGasusStage<'_> {
    fn name(&self) -> &str {
        Self::NAME
    }

    fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) -> StageOutcome {
        let score = self
            .rater
            .rate(item.pair.id, &item.pair.instruction, &item.pair.response);
        if score > self.threshold {
            ctx.bump("kept");
        } else {
            item.discard("alpagasus:low-rated");
            ctx.bump("dropped");
        }
        StageOutcome::Ok
    }

    fn deadline(&self) -> Option<std::time::Duration> {
        // Modelled LLM-judge call: the per-request budget the platform
        // would grant a real ChatGPT rating before retrying.
        Some(std::time::Duration::from_secs(5))
    }
}

/// Builds the AlpaGasus dataset: pairs rated above `threshold` (paper: 4.5)
/// by the ChatGPT rater.
pub fn build_alpagasus(original: &Dataset, rater: &ChatGptRater, threshold: f64) -> Dataset {
    let stages: Vec<Box<dyn Stage + '_>> = vec![Box::new(AlpaGasusStage::new(rater, threshold))];
    // The rater derives all randomness from pair ids, so the seed is unused.
    Executor::new(ExecutorConfig::new(0))
        .run_dataset(&stages, original)
        .dataset(format!("{}-alpagasus", original.name))
}

/// The §III-C human-merge as a stage: pairs with an expert revision on file
/// are replaced by the revised text.
pub struct HumanMergeStage {
    revised: FxHashMap<u64, coachlm_data::pair::InstructionPair>,
}

impl HumanMergeStage {
    /// The stage's report name.
    pub const NAME: &'static str = "human-merge";

    /// A stage merging the first `take` records (later records win on
    /// duplicate ids, matching sequential merge order).
    pub fn new(records: &[&RevisionRecord], take: usize) -> Self {
        HumanMergeStage {
            revised: records
                .iter()
                .take(take)
                .map(|rec| (rec.id, rec.revised.clone()))
                .collect(),
        }
    }
}

impl Stage for HumanMergeStage {
    fn name(&self) -> &str {
        Self::NAME
    }

    fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) -> StageOutcome {
        if let Some(revised) = self.revised.get(&item.pair.id) {
            item.pair = revised.clone();
            ctx.bump("merged");
        }
        StageOutcome::Ok
    }

    fn deadline(&self) -> Option<std::time::Duration> {
        // A map lookup plus a clone.
        Some(std::time::Duration::from_secs(2))
    }
}

/// Builds the Alpaca-human dataset: expert-revised pairs merged back into
/// the original (§III-C). `take` limits how many records are merged, in
/// the given order (used by the Fig 5b sweep); pass `usize::MAX` for all.
pub fn build_human_merged(original: &Dataset, records: &[&RevisionRecord], take: usize) -> Dataset {
    let stages: Vec<Box<dyn Stage>> = vec![Box::new(HumanMergeStage::new(records, take))];
    Executor::new(ExecutorConfig::new(0))
        .run_dataset(&stages, original)
        .dataset(format!("{}-human", original.name))
}

/// Model group in Table IX.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ModelGroup {
    /// Larger / RL-tuned / proprietary-data models.
    Stronger,
    /// 7B instruction-tuned LLaMA variants.
    Baseline,
}

/// Tuning type label (Table IX's "Type" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TuneType {
    /// Instruction-tuned.
    ITuned,
    /// RL-tuned on top of instruction tuning.
    RlTuned,
}

impl TuneType {
    /// Table IX label.
    pub fn label(self) -> &'static str {
        match self {
            TuneType::ITuned => "I-tuned",
            TuneType::RlTuned => "RL-tuned",
        }
    }
}

/// One Table IX row: metadata + the instantiated model.
#[derive(Debug, Clone, Serialize)]
pub struct RosterEntry {
    /// Model display name.
    pub name: &'static str,
    /// Parameter count label ("7B"/"13B"/"6B").
    pub size: &'static str,
    /// Tuning type.
    pub tune_type: TuneType,
    /// Group.
    pub group: ModelGroup,
    /// The model.
    pub model: StudentModel,
}

/// Fixed capability profiles for models not tuned on our datasets,
/// calibrated once against Table IX's CoachLM150 column (EXPERIMENTS.md
/// records paper-vs-measured for all four test sets).
pub const PROFILES: &[(&str, &str, TuneType, ModelGroup, f64)] = &[
    (
        "LLaMA2-13b-chat",
        "13B",
        TuneType::RlTuned,
        ModelGroup::Stronger,
        0.80,
    ),
    (
        "Vicuna-13b",
        "13B",
        TuneType::ITuned,
        ModelGroup::Stronger,
        0.735,
    ),
    (
        "LLaMA2-7b-chat",
        "7B",
        TuneType::RlTuned,
        ModelGroup::Stronger,
        0.77,
    ),
    (
        "ChatGLM",
        "6B",
        TuneType::RlTuned,
        ModelGroup::Stronger,
        0.72,
    ),
    (
        "ChatGLM2",
        "6B",
        TuneType::RlTuned,
        ModelGroup::Stronger,
        0.69,
    ),
    (
        "Vicuna-7b",
        "7B",
        TuneType::ITuned,
        ModelGroup::Baseline,
        0.75,
    ),
];

/// Datasets needed to build the tuned rows.
#[derive(Debug)]
pub struct RosterDatasets<'d> {
    /// The original ALPACA52K stand-in.
    pub original: &'d Dataset,
    /// Alpaca-cleaned.
    pub cleaned: &'d Dataset,
    /// AlpaGasus-filtered.
    pub alpagasus: &'d Dataset,
    /// Alpaca-human (fully merged).
    pub human: &'d Dataset,
    /// CoachLM-revised.
    pub coachlm: &'d Dataset,
}

/// The Alpaca-PandaLM hyper-parameter-optimisation bonus (it trains on the
/// same data as Alpaca but with searched hyper-parameters, §V-A).
pub const PANDALM_OPT_BONUS: f64 = 0.055;

/// Builds every Table IX row.
pub fn build_roster(datasets: &RosterDatasets<'_>, seed: u64) -> Vec<RosterEntry> {
    let p = SkillParams::default();
    // All tuned students share one response-noise seed: model identity must
    // matter only through the training dataset, and the per-item noise draws
    // become paired across models (same item, same draw).
    let tuned = |name: &'static str, d: &Dataset, bonus: f64| {
        tune_student(name, d, SkillParams { bonus, ..p }, seed ^ 0x7D)
    };
    let mut roster: Vec<RosterEntry> = PROFILES
        .iter()
        .map(|&(name, size, tt, group, skill)| RosterEntry {
            name,
            size,
            tune_type: tt,
            group,
            model: profile_student(name, skill, seed ^ fxhash_str(name)),
        })
        .collect();
    let baselines: [(&'static str, &Dataset, f64); 6] = [
        ("Alpaca", datasets.original, 0.0),
        ("Alpaca-cleaned", datasets.cleaned, 0.0),
        ("Alpaca-PandaLM", datasets.original, PANDALM_OPT_BONUS),
        ("AlpaGasus", datasets.alpagasus, 0.0),
        ("Alpaca-human", datasets.human, 0.0),
        ("Alpaca-CoachLM", datasets.coachlm, 0.0),
    ];
    for (name, d, bonus) in baselines {
        roster.push(RosterEntry {
            name,
            size: "7B",
            tune_type: TuneType::ITuned,
            group: ModelGroup::Baseline,
            model: tuned(name, d, bonus),
        });
    }
    roster
}

fn fxhash_str(s: &str) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = coachlm_text::fxhash::FxHasher::default();
    s.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coachlm_data::generator::{generate, GeneratorConfig};

    #[test]
    fn cleaned_fixes_surface_only() {
        let (d, _) = generate(&GeneratorConfig::small(1500, 2));
        let cleaned = build_cleaned(&d);
        assert_eq!(cleaned.len(), d.len());
        // No response keeps a template-leak prefix or invalid chars.
        for p in cleaned.iter() {
            assert!(!p.response.starts_with("### Response:"));
            assert!(!p.response.contains('\u{0}'));
        }
        // Deeper problems survive: thin responses are still thin.
        let engine = coachlm_judge::criteria::CriteriaEngine::new();
        let thin = cleaned
            .iter()
            .filter(|p| engine.analyze_response(&p.instruction, &p.response).thin)
            .count();
        assert!(thin > 0, "surface cleaning must not fix thin responses");
    }

    #[test]
    fn alpagasus_keeps_high_rated_fraction() {
        let (d, _) = generate(&GeneratorConfig::small(3000, 3));
        let rater = ChatGptRater::new(5);
        let filtered = build_alpagasus(&d, &rater, 4.5);
        let share = filtered.len() as f64 / d.len() as f64;
        // Paper: ~17.7% (9k of 52k).
        assert!((0.10..0.28).contains(&share), "share {share}");
        // Every kept pair really rates above threshold.
        for p in filtered.iter().take(50) {
            assert!(rater.rate(p.id, &p.instruction, &p.response) > 4.5);
        }
    }

    #[test]
    fn alpagasus_underserves_code_categories() {
        let (d, _) = generate(&GeneratorConfig::small(8000, 4));
        let rater = ChatGptRater::new(5);
        let filtered = build_alpagasus(&d, &rater, 4.5);
        let code_share = |ds: &Dataset| {
            ds.iter().filter(|p| p.category.is_code()).count() as f64 / ds.len() as f64
        };
        assert!(
            code_share(&filtered) < code_share(&d) * 0.8,
            "filtered {:.3} vs original {:.3}",
            code_share(&filtered),
            code_share(&d)
        );
    }

    #[test]
    fn human_merge_replaces_by_id() {
        let (d, _) = generate(&GeneratorConfig::small(300, 5));
        let kept = coachlm_expert::filter::preliminary_filter(&d, 1).kept;
        let records = coachlm_expert::revision::ExpertReviser::new(1).revise_dataset(
            &coachlm_expert::pool::ExpertPool::paper_pool(),
            &d,
            &kept,
        );
        let refs: Vec<&RevisionRecord> = records.iter().collect();
        let merged = build_human_merged(&d, &refs, usize::MAX);
        assert_eq!(merged.len(), d.len());
        for rec in &records {
            assert_eq!(merged.get(rec.id).unwrap().response, rec.revised.response);
        }
        // Partial merge only replaces the prefix.
        let partial = build_human_merged(&d, &refs, 1);
        let replaced = records
            .iter()
            .filter(|r| partial.get(r.id).unwrap().response == r.revised.response)
            .count();
        assert_eq!(replaced, 1);
    }

    #[test]
    fn roster_has_all_table9_rows() {
        let (d, _) = generate(&GeneratorConfig::small(600, 6));
        let cleaned = build_cleaned(&d);
        let rater = ChatGptRater::new(1);
        let alpagasus = build_alpagasus(&d, &rater, 4.5);
        let roster = build_roster(
            &RosterDatasets {
                original: &d,
                cleaned: &cleaned,
                alpagasus: &alpagasus,
                human: &d,
                coachlm: &d,
            },
            9,
        );
        assert_eq!(roster.len(), 12);
        let names: Vec<&str> = roster.iter().map(|r| r.name).collect();
        for expect in [
            "LLaMA2-13b-chat",
            "Vicuna-13b",
            "LLaMA2-7b-chat",
            "ChatGLM",
            "ChatGLM2",
            "Vicuna-7b",
            "Alpaca",
            "Alpaca-cleaned",
            "Alpaca-PandaLM",
            "AlpaGasus",
            "Alpaca-human",
            "Alpaca-CoachLM",
        ] {
            assert!(names.contains(&expect), "missing {expect}");
        }
        assert_eq!(
            roster
                .iter()
                .filter(|r| r.group == ModelGroup::Stronger)
                .count(),
            5
        );
    }
}
