//! Test-set evaluation: a model's responses against the reference
//! responses, judged pairwise (§III-C1).

use crate::student::StudentModel;
use coachlm_data::testsets::TestSet;
use coachlm_judge::pandalm::{PandaLm, Verdict};
use coachlm_judge::winrate::{VerdictCounts, WinRates};
use serde::Serialize;

/// Anything that can produce a debiased win/tie/lose verdict for a
/// candidate response against a reference.
pub trait PairwiseJudge {
    /// Judge `candidate` against `reference` for `instruction`.
    fn judge(
        &self,
        comparison_id: u64,
        instruction: &str,
        candidate: &str,
        reference: &str,
    ) -> Verdict;
    /// Display name.
    fn name(&self) -> &'static str;
}

impl PairwiseJudge for PandaLm {
    fn judge(
        &self,
        comparison_id: u64,
        instruction: &str,
        candidate: &str,
        reference: &str,
    ) -> Verdict {
        self.compare(comparison_id, instruction, candidate, reference)
    }

    fn name(&self) -> &'static str {
        "PandaLM"
    }
}

impl PairwiseJudge for coachlm_judge::gpt4::Gpt4Judge {
    fn judge(
        &self,
        comparison_id: u64,
        instruction: &str,
        candidate: &str,
        reference: &str,
    ) -> Verdict {
        self.compare(comparison_id, instruction, candidate, reference)
    }

    fn name(&self) -> &'static str {
        "GPT-4"
    }
}

/// One model's result on one test set.
#[derive(Debug, Clone, Serialize)]
pub struct EvalResult {
    /// Model name.
    pub model: String,
    /// Test set name.
    pub test_set: &'static str,
    /// Verdict tally.
    pub counts: VerdictCounts,
    /// WR1/WR2/QS.
    pub rates: WinRates,
}

/// Evaluates `model` on `test_set` under `judge`.
pub fn evaluate<J: PairwiseJudge>(
    model: &StudentModel,
    test_set: &TestSet,
    judge: &J,
) -> EvalResult {
    let mut counts = VerdictCounts::default();
    for item in &test_set.items {
        let candidate = model.respond(item);
        counts.add(judge.judge(item.id, &item.instruction, &candidate, &item.reference));
    }
    EvalResult {
        model: model.name.clone(),
        test_set: test_set.kind.name(),
        counts,
        rates: counts.rates(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::student::profile_student;
    use coachlm_data::testsets::TestSetKind;

    #[test]
    fn stronger_model_higher_win_rate() {
        let ts = TestSet::build(TestSetKind::CoachLm150, 3);
        let judge = PandaLm::new(11);
        let weak = evaluate(&profile_student("weak", 0.45, 1), &ts, &judge);
        let strong = evaluate(&profile_student("strong", 0.9, 1), &ts, &judge);
        assert!(
            strong.rates.wr1 > weak.rates.wr1 + 0.1,
            "weak {} strong {}",
            weak.rates,
            strong.rates
        );
    }

    #[test]
    fn counts_cover_whole_test_set() {
        let ts = TestSet::build(TestSetKind::Vicuna80, 4);
        let judge = PandaLm::new(2);
        let r = evaluate(&profile_student("m", 0.7, 2), &ts, &judge);
        assert_eq!(r.counts.total(), 80);
        assert_eq!(r.test_set, "Vicuna80");
    }

    #[test]
    fn harder_reference_band_lowers_win_rate() {
        let judge = PandaLm::new(7);
        let m = profile_student("m", 0.72, 5);
        let easy = evaluate(&m, &TestSet::build(TestSetKind::PandaLm170, 9), &judge);
        let hard = evaluate(&m, &TestSet::build(TestSetKind::Vicuna80, 9), &judge);
        assert!(
            easy.rates.wr1 > hard.rates.wr1,
            "easy {} hard {}",
            easy.rates,
            hard.rates
        );
    }

    #[test]
    fn gpt4_judge_agrees_in_trend() {
        let ts = TestSet::build(TestSetKind::CoachLm150, 5);
        let judge = coachlm_judge::gpt4::Gpt4Judge::new(3);
        let weak = evaluate(&profile_student("weak", 0.45, 1), &ts, &judge);
        let strong = evaluate(&profile_student("strong", 0.9, 1), &ts, &judge);
        assert!(strong.rates.wr1 > weak.rates.wr1);
        assert_eq!(judge.name(), "GPT-4");
    }
}
