//! Automatic dataset revision (§II-F3, Eq. 2) with §III-B1 post-processing.
//!
//! Every pair of the input dataset runs through CoachLM; the raw outputs
//! are cleaned (invalid characters stripped, repeated strings collapsed),
//! structurally invalid outputs are replaced with the originals, and pairs
//! that appeared in CoachLM's training subset `C_α` keep their originals to
//! avoid leakage — both replacement classes ran ≈1.3 % in the paper (the
//! paper's C_0.3 holds 690 of 52 002 pairs = 1.3 %).
//!
//! Revision is embarrassingly parallel; `crossbeam` scoped threads fan the
//! pairs across cores with per-pair seeded RNGs, so the result is identical
//! to the sequential order regardless of thread count.

use crate::coach::CoachLm;
use coachlm_data::pair::{Dataset, InstructionPair};
use coachlm_lm::transducer::RepairTag;
use coachlm_text::clean;
use coachlm_text::fxhash::{FxHashMap, FxHashSet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// A revised dataset plus post-processing accounting.
#[derive(Debug, Clone, Serialize)]
pub struct RevisedDataset {
    /// The CoachLM-revised dataset `D_c`.
    pub dataset: Dataset,
    /// Pairs replaced with originals because the output was invalid.
    pub replaced_invalid: usize,
    /// Pairs kept as originals due to training-data leakage.
    pub leakage_skipped: usize,
    /// Number of pairs whose instruction changed.
    pub instructions_changed: usize,
    /// Number of pairs whose response changed.
    pub responses_changed: usize,
    /// Repair-tag frequencies across the run.
    pub repair_counts: FxHashMap<RepairTag, usize>,
}

/// Revises a whole dataset with `threads` workers (Eq. 2). Pairs in
/// CoachLM's training subset keep their originals (the §III-B1 leakage
/// rule).
pub fn revise_dataset(coach: &CoachLm, input: &Dataset, seed: u64, threads: usize) -> RevisedDataset {
    let training_ids: FxHashSet<u64> = coach.trained_ids().iter().copied().collect();
    let training_ids = &training_ids;
    let threads = threads.clamp(1, 64);
    let n = input.len();
    let mut revised: Vec<Option<(InstructionPair, Vec<RepairTag>, Outcome)>> = vec![None; n];

    let chunk = n.div_ceil(threads).max(1);
    crossbeam::thread::scope(|scope| {
        for (t, (pairs, out)) in input
            .pairs
            .chunks(chunk)
            .zip(revised.chunks_mut(chunk))
            .enumerate()
        {
            let _ = t;
            scope.spawn(move |_| {
                for (p, slot) in pairs.iter().zip(out.iter_mut()) {
                    *slot = Some(revise_one(coach, p, training_ids, seed));
                }
            });
        }
    })
    .expect("revision worker panicked");

    let mut out = RevisedDataset {
        dataset: Dataset::new(format!("{}-coachlm", input.name)),
        replaced_invalid: 0,
        leakage_skipped: 0,
        instructions_changed: 0,
        responses_changed: 0,
        repair_counts: FxHashMap::default(),
    };
    out.dataset.pairs.reserve(n);
    for (orig, slot) in input.iter().zip(revised.into_iter()) {
        let (pair, repairs, outcome) = slot.expect("all slots filled");
        match outcome {
            Outcome::Leakage => out.leakage_skipped += 1,
            Outcome::Invalid => out.replaced_invalid += 1,
            Outcome::Revised => {
                if pair.instruction != orig.instruction {
                    out.instructions_changed += 1;
                }
                if pair.response != orig.response {
                    out.responses_changed += 1;
                }
                for r in &repairs {
                    *out.repair_counts.entry(*r).or_insert(0) += 1;
                }
            }
        }
        out.dataset.pairs.push(pair);
    }
    out
}

/// What happened to one pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// CoachLM's (cleaned) output was adopted.
    Revised,
    /// Output invalid → original kept.
    Invalid,
    /// Training-instruction leakage → original kept.
    Leakage,
}

fn revise_one(
    coach: &CoachLm,
    p: &InstructionPair,
    training_ids: &FxHashSet<u64>,
    seed: u64,
) -> (InstructionPair, Vec<RepairTag>, Outcome) {
    if training_ids.contains(&p.id) {
        return (p.clone(), Vec::new(), Outcome::Leakage);
    }
    let mut rng = StdRng::seed_from_u64(seed ^ p.id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let raw = coach.revise_pair(&mut rng, &p.instruction, &p.response);
    // §III-B1 post-processing: clean, then validate; invalid → original.
    let instruction = clean::clean_output(&raw.instruction);
    let response = clean::clean_output(&raw.response);
    match clean::validate_pair(&instruction, &response) {
        clean::Validity::Valid => (
            InstructionPair::new(p.id, instruction, response, p.category),
            raw.repairs,
            Outcome::Revised,
        ),
        _ => (p.clone(), Vec::new(), Outcome::Invalid),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coach::{CoachConfig, CoachLm};
    use coachlm_data::generator::{generate, GeneratorConfig};
    use coachlm_expert::filter::preliminary_filter;
    use coachlm_expert::pool::ExpertPool;
    use coachlm_expert::revision::ExpertReviser;

    fn setup(n: usize, seed: u64) -> (Dataset, CoachLm) {
        let (d, _) = generate(&GeneratorConfig::small(n, seed));
        let kept = preliminary_filter(&d, seed).kept;
        let records =
            ExpertReviser::new(seed).revise_dataset(&ExpertPool::paper_pool(), &d, &kept);
        let coach = CoachLm::train(CoachConfig::default(), &records);
        (d, coach)
    }

    #[test]
    fn revision_improves_measured_quality() {
        let (d, coach) = setup(800, 3);
        let out = revise_dataset(&coach, &d, 7, 4);
        assert_eq!(out.dataset.len(), d.len());
        let engine = coachlm_judge::criteria::CriteriaEngine::new();
        let avg = |ds: &Dataset| {
            ds.iter()
                .map(|p| engine.score_pair(&p.instruction, &p.response).response)
                .sum::<f64>()
                / ds.len() as f64
        };
        let before = avg(&d);
        let after = avg(&out.dataset);
        assert!(after > before + 6.0, "before {before:.1} after {after:.1}");
        assert!(after > 91.0, "after {after:.1}");
    }

    #[test]
    fn parallel_matches_sequential() {
        let (d, coach) = setup(200, 4);
        let a = revise_dataset(&coach, &d, 5, 1);
        let b = revise_dataset(&coach, &d, 5, 8);
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(a.replaced_invalid, b.replaced_invalid);
    }

    #[test]
    fn leakage_pairs_keep_originals() {
        let (d, coach) = setup(400, 5);
        let out = revise_dataset(&coach, &d, 9, 4);
        assert!(out.leakage_skipped > 0, "α-selected training pairs exist in the dataset");
        assert_eq!(out.leakage_skipped, coach.trained_on());
        for id in coach.trained_ids() {
            assert_eq!(out.dataset.get(*id).unwrap(), d.get(*id).unwrap());
        }
    }

    #[test]
    fn invalid_replacement_rate_near_paper() {
        let (d, coach) = setup(2000, 6);
        let out = revise_dataset(&coach, &d, 11, 8);
        let rate = out.replaced_invalid as f64 / d.len() as f64;
        // Paper: ≈1.3 %. Allow a generous band.
        assert!((0.001..0.04).contains(&rate), "invalid rate {rate}");
    }

    #[test]
    fn most_responses_change_few_instructions_change() {
        let (d, coach) = setup(1500, 7);
        let out = revise_dataset(&coach, &d, 13, 8);
        let resp_share = out.responses_changed as f64 / d.len() as f64;
        let instr_share = out.instructions_changed as f64 / d.len() as f64;
        // Table VII: responses change in most pairs; instructions in ~15%
        // (8k of 52k).
        assert!(resp_share > 0.5, "resp share {resp_share}");
        assert!(instr_share < resp_share, "instr {instr_share} resp {resp_share}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (d, coach) = setup(150, 8);
        let a = revise_dataset(&coach, &d, 21, 4);
        let b = revise_dataset(&coach, &d, 21, 4);
        assert_eq!(a.dataset, b.dataset);
    }

    #[test]
    fn empty_dataset_is_fine() {
        let (_, coach) = setup(50, 9);
        let empty = Dataset::new("empty");
        let out = revise_dataset(&coach, &empty, 1, 4);
        assert!(out.dataset.is_empty());
    }
}
