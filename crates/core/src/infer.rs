//! Automatic dataset revision (§II-F3, Eq. 2) with §III-B1 post-processing.
//!
//! Every pair of the input dataset runs through CoachLM; the raw outputs
//! are cleaned (invalid characters stripped, repeated strings collapsed),
//! structurally invalid outputs are replaced with the originals, and pairs
//! that appeared in CoachLM's training subset `C_α` keep their originals to
//! avoid leakage — both replacement classes ran ≈1.3 % in the paper (the
//! paper's C_0.3 holds 690 of 52 002 pairs = 1.3 %).
//!
//! Revision is embarrassingly parallel. It is expressed as a
//! [`CoachReviseStage`] on the shared `coachlm-runtime` executor, which
//! seeds an RNG per (stage, pair) — so the result is identical to a
//! sequential run regardless of thread count, and per-stage counters and
//! timing come back in the executor's [`StageReport`].
//!
//! [`StageReport`]: coachlm_runtime::StageReport

use crate::coach::CoachLm;
use coachlm_data::pair::Dataset;
use coachlm_lm::transducer::RepairTag;
use coachlm_runtime::{
    ChainOutput, Executor, ExecutorConfig, Feed, Journal, JournalError, Stage, StageCtx, StageItem,
    StageOutcome, StreamSource,
};
use coachlm_text::clean;
use coachlm_text::fxhash::{FxHashMap, FxHashSet};
use serde::Serialize;

/// A revised dataset plus post-processing accounting.
#[derive(Debug, Clone, Serialize)]
pub struct RevisedDataset {
    /// The CoachLM-revised dataset `D_c`.
    pub dataset: Dataset,
    /// Pairs replaced with originals because the output was invalid.
    pub replaced_invalid: usize,
    /// Pairs kept as originals due to training-data leakage.
    pub leakage_skipped: usize,
    /// Number of pairs whose instruction changed.
    pub instructions_changed: usize,
    /// Number of pairs whose response changed.
    pub responses_changed: usize,
    /// Repair-tag frequencies across the run.
    pub repair_counts: FxHashMap<RepairTag, usize>,
    /// Pairs quarantined by failing stages (0 outside fault-injection runs);
    /// they are absent from [`dataset`](Self::dataset).
    pub quarantined: usize,
    /// Pairs passed through unrevised because the revise stage's circuit
    /// breaker was open (0 unless the config enables a breaker). They stay
    /// in [`dataset`](Self::dataset) with their original text, like the
    /// §III-B1 leakage pairs.
    pub degraded: usize,
}

impl RevisedDataset {
    /// Reads the revision accounting out of a chain run that included a
    /// [`CoachReviseStage`]. The dataset keeps every retained pair, named
    /// `{input}-coachlm` after the paper's `D_c`.
    pub fn from_chain(out: &ChainOutput, input_name: &str) -> Self {
        let report = out
            .report(CoachReviseStage::NAME)
            // lint: allow(P1, reason = "structural invariant: every caller builds its chain with a CoachReviseStage two lines earlier; a missing report is a construction bug, not a data condition")
            .expect("chain ran a coach-revise stage");
        let mut repair_counts = FxHashMap::default();
        for tag in RepairTag::ALL {
            let n = report.counter(&format!("repair:{}", tag.label()));
            if n > 0 {
                repair_counts.insert(tag, n as usize);
            }
        }
        RevisedDataset {
            dataset: out.dataset(format!("{input_name}-coachlm")),
            replaced_invalid: report.counter("invalid") as usize,
            leakage_skipped: report.counter("leakage") as usize,
            instructions_changed: report.counter("instruction-changed") as usize,
            responses_changed: report.counter("response-changed") as usize,
            repair_counts,
            quarantined: out.total_quarantined(),
            degraded: out.total_degraded(),
        }
    }
}

/// The CoachLM revision step as an executor stage: revise, clean, validate;
/// invalid outputs and training-leakage pairs keep their originals.
pub struct CoachReviseStage<'a> {
    coach: &'a CoachLm,
    training_ids: FxHashSet<u64>,
}

impl<'a> CoachReviseStage<'a> {
    /// The stage's report name.
    pub const NAME: &'static str = "coach-revise";

    /// A stage revising with `coach`, skipping its training pairs.
    pub fn new(coach: &'a CoachLm) -> Self {
        CoachReviseStage {
            coach,
            training_ids: coach.trained_ids().iter().copied().collect(),
        }
    }
}

impl Stage for CoachReviseStage<'_> {
    fn name(&self) -> &str {
        Self::NAME
    }

    fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) -> StageOutcome {
        if self.training_ids.contains(&item.pair.id) {
            item.tag("leakage");
            ctx.bump("leakage");
            return StageOutcome::Ok;
        }
        let raw = self
            .coach
            .revise_pair(&mut ctx.rng, &item.pair.instruction, &item.pair.response);
        // §III-B1 post-processing: clean, then validate; invalid → keep the
        // pair as it entered this stage.
        let instruction = clean::clean_output(&raw.instruction);
        let response = clean::clean_output(&raw.response);
        match clean::validate_pair(&instruction, &response) {
            clean::Validity::Valid => {
                if instruction != item.pair.instruction {
                    ctx.bump("instruction-changed");
                }
                if response != item.pair.response {
                    ctx.bump("response-changed");
                }
                for tag in &raw.repairs {
                    ctx.bump(&format!("repair:{}", tag.label()));
                }
                item.pair.instruction = instruction;
                item.pair.response = response;
            }
            _ => {
                item.tag("invalid");
                ctx.bump("invalid");
            }
        }
        StageOutcome::Ok
    }

    fn deadline(&self) -> Option<std::time::Duration> {
        // Modelled inference call: the per-pair generation budget the
        // deployment grants CoachLM before timing the item out.
        Some(std::time::Duration::from_secs(5))
    }

    fn service_time(&self) -> std::time::Duration {
        // Paper §IV-A: 1.19 samples/s on one A100 at batch 32 → ~840ms
        // per pair. The chain's modeled bottleneck; drives lane
        // allocation and the virtual-time throughput figures only.
        std::time::Duration::from_millis(840)
    }
}

/// Revises a whole dataset (Eq. 2) on the shared executor. Pairs in
/// CoachLM's training subset keep their originals (the §III-B1 leakage
/// rule). Thread count comes from `config` and never affects the result.
pub fn revise_dataset(coach: &CoachLm, input: &Dataset, config: &ExecutorConfig) -> RevisedDataset {
    revise_stream(coach, input, config, Feed::Batch)
}

/// Revises a whole dataset under an explicit arrival model.
/// [`revise_dataset`] is this with [`Feed::Batch`]; a [`Feed::Sustained`]
/// feed models the deployed revision service absorbing continuous
/// traffic, with overload arrivals shed deterministically at admission —
/// discarded up front with a `shed:admission` tag, so they are absent
/// from the output dataset and from every revision tally.
pub fn revise_stream(
    coach: &CoachLm,
    input: &Dataset,
    config: &ExecutorConfig,
    feed: Feed,
) -> RevisedDataset {
    let stages: Vec<Box<dyn Stage + '_>> = vec![Box::new(CoachReviseStage::new(coach))];
    let source = StreamSource {
        pairs: input.pairs.clone(),
        feed,
    };
    let out = Executor::new(config.clone()).run_stream(&stages, source);
    RevisedDataset::from_chain(&out, &input.name)
}

/// Revises a whole dataset like [`revise_dataset`], journaling every
/// committed pair so a crashed sweep resumes instead of restarting: call
/// it again with a journal recovered by [`Journal::open`] and the same
/// input and config, and only the uncommitted frontier re-runs. The
/// result is identical to an uninterrupted [`revise_dataset`] in every
/// deterministic field.
pub fn revise_dataset_journaled(
    coach: &CoachLm,
    input: &Dataset,
    config: &ExecutorConfig,
    journal: &mut Journal,
) -> Result<RevisedDataset, JournalError> {
    let stages: Vec<Box<dyn Stage + '_>> = vec![Box::new(CoachReviseStage::new(coach))];
    let out = Executor::new(config.clone()).run_journaled(&stages, input.pairs.clone(), journal)?;
    Ok(RevisedDataset::from_chain(&out, &input.name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coach::{CoachConfig, CoachLm};
    use coachlm_data::generator::{generate, GeneratorConfig};
    use coachlm_expert::filter::preliminary_filter;
    use coachlm_expert::pool::ExpertPool;
    use coachlm_expert::revision::ExpertReviser;

    fn setup(n: usize, seed: u64) -> (Dataset, CoachLm) {
        let (d, _) = generate(&GeneratorConfig::small(n, seed));
        let kept = preliminary_filter(&d, seed).kept;
        let records = ExpertReviser::new(seed).revise_dataset(&ExpertPool::paper_pool(), &d, &kept);
        let coach = CoachLm::train(CoachConfig::default(), &records);
        (d, coach)
    }

    fn config(seed: u64, threads: usize) -> ExecutorConfig {
        ExecutorConfig::new(seed).threads(threads)
    }

    #[test]
    fn revision_improves_measured_quality() {
        let (d, coach) = setup(800, 3);
        let out = revise_dataset(&coach, &d, &config(7, 4));
        assert_eq!(out.dataset.len(), d.len());
        let engine = coachlm_judge::criteria::CriteriaEngine::new();
        let avg = |ds: &Dataset| {
            ds.iter()
                .map(|p| engine.score_pair(&p.instruction, &p.response).response)
                .sum::<f64>()
                / ds.len() as f64
        };
        let before = avg(&d);
        let after = avg(&out.dataset);
        assert!(after > before + 6.0, "before {before:.1} after {after:.1}");
        assert!(after > 91.0, "after {after:.1}");
    }

    #[test]
    fn parallel_matches_sequential() {
        let (d, coach) = setup(200, 4);
        let a = revise_dataset(&coach, &d, &config(5, 1));
        let b = revise_dataset(&coach, &d, &config(5, 8));
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(a.replaced_invalid, b.replaced_invalid);
        assert_eq!(a.repair_counts, b.repair_counts);
    }

    #[test]
    fn leakage_pairs_keep_originals() {
        let (d, coach) = setup(400, 5);
        let out = revise_dataset(&coach, &d, &config(9, 4));
        assert!(
            out.leakage_skipped > 0,
            "α-selected training pairs exist in the dataset"
        );
        assert_eq!(out.leakage_skipped, coach.trained_on());
        for id in coach.trained_ids() {
            assert_eq!(out.dataset.get(*id).unwrap(), d.get(*id).unwrap());
        }
    }

    #[test]
    fn invalid_replacement_rate_near_paper() {
        let (d, coach) = setup(2000, 6);
        let out = revise_dataset(&coach, &d, &config(11, 8));
        let rate = out.replaced_invalid as f64 / d.len() as f64;
        // Paper: ≈1.3 %. Allow a generous band.
        assert!((0.001..0.04).contains(&rate), "invalid rate {rate}");
    }

    #[test]
    fn most_responses_change_few_instructions_change() {
        let (d, coach) = setup(1500, 7);
        let out = revise_dataset(&coach, &d, &config(13, 8));
        let resp_share = out.responses_changed as f64 / d.len() as f64;
        let instr_share = out.instructions_changed as f64 / d.len() as f64;
        // Table VII: responses change in most pairs; instructions in ~15%
        // (8k of 52k).
        assert!(resp_share > 0.5, "resp share {resp_share}");
        assert!(
            instr_share < resp_share,
            "instr {instr_share} resp {resp_share}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (d, coach) = setup(150, 8);
        let a = revise_dataset(&coach, &d, &config(21, 4));
        let b = revise_dataset(&coach, &d, &config(21, 4));
        assert_eq!(a.dataset, b.dataset);
    }

    #[test]
    fn empty_dataset_is_fine() {
        let (_, coach) = setup(50, 9);
        let empty = Dataset::new("empty");
        let out = revise_dataset(&coach, &empty, &config(1, 4));
        assert!(out.dataset.is_empty());
    }
}
