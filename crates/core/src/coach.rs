//! Coach instruction tuning (§II-F1).
//!
//! Each expert pair `(x, x_r)` becomes a coach-tuning example `x_c` whose
//! INSTRUCTION is the Fig 3 revision prompt around `x` and whose RESPONSE
//! is `x_r`. Training on `C_α` adapts the backbone's parameters θ → θ_c
//! (Eq. 1); in this reproduction, the adaptation is the rule-learning
//! adapter of `coachlm-lm`, which extracts weighted rewrite rules from the
//! aligned pairs and accumulates copy mass from near-identity ones.

use crate::alpha::select_alpha;
use coachlm_expert::revision::RevisionRecord;
use coachlm_lm::adapter::{Adapter, AdapterConfig};
use coachlm_lm::backbone::{Backbone, BackboneKind};
use coachlm_lm::transducer::{RevisionOutcome, Transducer};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The Fig 3 revision prompt wrapped around an input pair.
pub fn revision_prompt(instruction: &str, response: &str) -> String {
    format!(
        "Improve the following instruction, input and response pair to be more \
         specific, detailed with more logical steps and grammarly corrected. \
         Input: [INSTRUCTION: {instruction} RESPONSE: {response}]"
    )
}

/// Training configuration; defaults match the paper's main experiment
/// (ChatGLM2 backbone, α = 0.3, LoRA, 7 epochs at 2e-4 — §III-A3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoachConfig {
    /// Backbone to adapt.
    pub backbone: BackboneKind,
    /// Human input ratio α.
    pub alpha: f64,
    /// Adapter (LoRA analogue) hyper-parameters.
    pub adapter: AdapterConfig,
}

impl Default for CoachConfig {
    fn default() -> Self {
        Self {
            backbone: BackboneKind::ChatGlm2_6b,
            alpha: 0.3,
            adapter: AdapterConfig::default(),
        }
    }
}

/// A trained CoachLM: θ_c = frozen backbone + trained adapter.
#[derive(Debug)]
pub struct CoachLm {
    config: CoachConfig,
    backbone: Backbone,
    adapter: Adapter,
    trained_ids: Vec<u64>,
}

impl CoachLm {
    /// Trains CoachLM on the α-selected subset of the expert revision
    /// dataset `R` (Eq. 1).
    pub fn train(config: CoachConfig, records: &[RevisionRecord]) -> Self {
        let backbone = Backbone::load(config.backbone);
        let mut adapter = Adapter::new(config.adapter);
        let selected = select_alpha(records, config.alpha);
        let mut trained_ids = Vec::with_capacity(selected.len());
        for rec in &selected {
            adapter.observe(
                &rec.original.instruction,
                &rec.revised.instruction,
                &rec.original.response,
                &rec.revised.response,
            );
            trained_ids.push(rec.id);
        }
        adapter.finalize();
        Self {
            config,
            backbone,
            adapter,
            trained_ids,
        }
    }

    /// Ids of the pairs in the training subset `C_α` (the §III-B1 leakage
    /// rule keeps these pairs' originals at inference).
    pub fn trained_ids(&self) -> &[u64] {
        &self.trained_ids
    }

    /// The training configuration.
    pub fn config(&self) -> &CoachConfig {
        &self.config
    }

    /// Number of training examples after α selection.
    pub fn trained_on(&self) -> usize {
        self.trained_ids.len()
    }

    /// The underlying backbone.
    pub fn backbone(&self) -> &Backbone {
        &self.backbone
    }

    /// The trained adapter.
    pub fn adapter(&self) -> &Adapter {
        &self.adapter
    }

    /// Probability an applicable repair fires at decode time.
    pub fn apply_probability(&self) -> f64 {
        Transducer::new(&self.backbone, &self.adapter).apply_probability()
    }

    /// Revises one instruction pair (beam size 1, §III-A3).
    pub fn revise_pair<R: Rng>(
        &self,
        rng: &mut R,
        instruction: &str,
        response: &str,
    ) -> RevisionOutcome {
        Transducer::new(&self.backbone, &self.adapter).revise_pair(rng, instruction, response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coachlm_data::generator::{generate, GeneratorConfig};
    use coachlm_expert::filter::preliminary_filter;
    use coachlm_expert::pool::ExpertPool;
    use coachlm_expert::revision::ExpertReviser;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn expert_records(n: usize, seed: u64) -> Vec<RevisionRecord> {
        let (d, _) = generate(&GeneratorConfig::small(n, seed));
        let kept = preliminary_filter(&d, seed).kept;
        ExpertReviser::new(seed).revise_dataset(&ExpertPool::paper_pool(), &d, &kept)
    }

    #[test]
    fn prompt_embeds_the_pair() {
        let p = revision_prompt("Do X", "Done Y");
        assert!(p.contains("Improve the following instruction"));
        assert!(p.contains("Do X"));
        assert!(p.contains("Done Y"));
    }

    #[test]
    fn training_respects_alpha() {
        let records = expert_records(600, 5);
        let full = CoachLm::train(
            CoachConfig {
                alpha: 1.0,
                ..Default::default()
            },
            &records,
        );
        let third = CoachLm::train(
            CoachConfig {
                alpha: 0.3,
                ..Default::default()
            },
            &records,
        );
        let none = CoachLm::train(
            CoachConfig {
                alpha: 0.0,
                ..Default::default()
            },
            &records,
        );
        assert_eq!(full.trained_on(), records.len());
        assert_eq!(
            third.trained_on(),
            (records.len() as f64 * 0.3).round() as usize
        );
        assert_eq!(none.trained_on(), 0);
    }

    #[test]
    fn alpha_zero_is_the_raw_backbone() {
        let records = expert_records(300, 6);
        let coach = CoachLm::train(
            CoachConfig {
                alpha: 0.0,
                ..Default::default()
            },
            &records,
        );
        let prior = coach.backbone().profile().alignment_prior;
        assert!((coach.apply_probability() - prior).abs() < 1e-9);
    }

    #[test]
    fn alpha_03_fires_more_reliably_than_alpha_0() {
        let records = expert_records(600, 7);
        let p0 = CoachLm::train(
            CoachConfig {
                alpha: 0.0,
                ..Default::default()
            },
            &records,
        )
        .apply_probability();
        let p3 = CoachLm::train(
            CoachConfig {
                alpha: 0.3,
                ..Default::default()
            },
            &records,
        )
        .apply_probability();
        assert!(p3 > p0 + 0.3, "p0 {p0} p3 {p3}");
    }

    #[test]
    fn full_alpha_carries_copy_noise() {
        let records = expert_records(2500, 8);
        let third = CoachLm::train(
            CoachConfig {
                alpha: 0.3,
                ..Default::default()
            },
            &records,
        );
        let full = CoachLm::train(
            CoachConfig {
                alpha: 1.0,
                ..Default::default()
            },
            &records,
        );
        // α = 1 includes the near-identity tail → more copy mass → lower
        // apply probability than the α = 0.3 sweet spot (Fig 5a).
        assert!(
            full.adapter().copy_ratio() > third.adapter().copy_ratio(),
            "copy ratios: full {} third {}",
            full.adapter().copy_ratio(),
            third.adapter().copy_ratio()
        );
        assert!(full.apply_probability() <= third.apply_probability());
    }

    #[test]
    fn trained_coach_revises_defective_pairs() {
        let records = expert_records(600, 9);
        let coach = CoachLm::train(CoachConfig::default(), &records);
        let mut rng = StdRng::seed_from_u64(1);
        let out = coach.revise_pair(
            &mut rng,
            "Explain teh water cycle",
            "Water evaporates becuase of heat.",
        );
        assert!(
            out.instruction.contains("the water cycle"),
            "{}",
            out.instruction
        );
        assert!(!out.repairs.is_empty());
    }

    #[test]
    fn stronger_backbone_higher_apply_probability_untrained() {
        let records: Vec<RevisionRecord> = Vec::new();
        let weak = CoachLm::train(
            CoachConfig {
                backbone: BackboneKind::Llama7b,
                alpha: 1.0,
                ..Default::default()
            },
            &records,
        );
        let strong = CoachLm::train(
            CoachConfig {
                backbone: BackboneKind::ChatGlm2_6b,
                alpha: 1.0,
                ..Default::default()
            },
            &records,
        );
        assert!(strong.apply_probability() > weak.apply_probability());
    }
}
