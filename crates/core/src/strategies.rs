//! The strategy zoo: alternative revision pipelines behind one interface.
//!
//! The paper's central claim (Tables VII–IX) is that *revising* pairs beats
//! *filtering* them. This module makes that claim testable head-to-head by
//! packaging each competing pipeline as a [`Strategy`] — a named builder of
//! an executor stage chain — so every contender runs over the same seeded
//! dataset through the same streaming executor and can be judged pairwise
//! by the debiased PandaLM tournament (`coachlm_judge::tournament`).
//!
//! Contenders beyond CoachLM itself:
//!
//! * **Reflection-Tuning** ([`ReflectionStrategy`]) — a [`CritiqueStage`]
//!   scores each pair against the Table II rubric dimensions and emits a
//!   structured [`Critique`]; a [`RegenerateStage`] then rewrites the pair
//!   using the critique as its chain-of-thought bridge (critique → answer,
//!   Li et al. 2023).
//! * **Self-Review** ([`SelfReviewStrategy`]) — one looping
//!   [`ReviseUntilPassStage`] that repairs, re-scores, and asks the
//!   executor for another pass via [`StageOutcome::Again`] until the
//!   rubric passes or the deterministic
//!   [`iteration_budget`](coachlm_runtime::Stage::iteration_budget) runs
//!   out. Every pass charges `service_time`, observes the stage deadline,
//!   and folds into the journal, so a mid-loop crash resumes
//!   digest-identically.
//! * **auto-evol** ([`AutoEvolStrategy`]) — complexity evolution instead
//!   of quality repair: each pass applies one evolution operation (add a
//!   constraint, deepen the reasoning requirement, concretize with
//!   context), recording the trajectory in stage counters.
//! * **AlpaGasus filtering** ([`FilterStrategy`]) and the identity
//!   pipeline ([`NoopStrategy`]) as the paper's baselines.
//!
//! All stages draw randomness only from the per-(stage, item, iteration)
//! RNG the executor hands them, so every strategy's output is identical
//! across thread counts, schedules, and queue capacities — the property
//! `tests/strategy_zoo.rs` proptests under active fault injection.

use crate::coach::CoachLm;
use crate::infer::CoachReviseStage;
use coachlm_data::pair::Dataset;
use coachlm_judge::chatgpt::ChatGptRater;
use coachlm_judge::criteria::{CriteriaEngine, PairScores, ResponseAnalysis};
use coachlm_lm::knowledge::KnowledgeBase;
use coachlm_runtime::{
    ChainOutput, Executor, ExecutorConfig, Stage, StageCtx, StageItem, StageOutcome,
};
use coachlm_text::{clean, lexicon, normalize, token};
use rand::Rng;

/// One revision pipeline, nameable and runnable against any dataset.
///
/// A strategy is a stateless (per-item) recipe: [`stages`](Self::stages)
/// builds the executor chain, and the provided [`run`](Self::run) /
/// [`dataset`](Self::dataset) drive it through the shared executor so all
/// strategies inherit the same determinism, fault-injection, journaling,
/// and reporting machinery.
pub trait Strategy: Sync {
    /// Registry name; also the output dataset's name suffix.
    fn name(&self) -> &str;

    /// The stage chain implementing this strategy.
    fn stages(&self) -> Vec<Box<dyn Stage + '_>>;

    /// Runs the strategy over `input` on the shared executor. Thread
    /// count, schedule, and queue capacity come from `config` and never
    /// affect the result.
    fn run(&self, input: &Dataset, config: &ExecutorConfig) -> ChainOutput {
        let stages = self.stages();
        Executor::new(config.clone()).run_dataset(&stages, input)
    }

    /// The strategy's output dataset, named `{input}-{strategy}`.
    fn dataset(&self, input: &Dataset, config: &ExecutorConfig) -> Dataset {
        self.run(input, config)
            .dataset(format!("{}-{}", input.name, self.name()))
    }
}

/// The standard line-up, in registry order: CoachLM revision, Reflection
/// critique-then-regenerate, Self-Review revise-until-pass, auto-evol
/// complexity evolution, AlpaGasus filtering, and the no-op identity.
pub struct StrategyZoo<'a> {
    entries: Vec<Box<dyn Strategy + 'a>>,
}

impl<'a> StrategyZoo<'a> {
    /// Builds the standard six-strategy zoo. `seed` namespaces the
    /// filtering baseline's simulated ChatGPT rater.
    pub fn standard(coach: &'a CoachLm, seed: u64) -> Self {
        StrategyZoo {
            entries: vec![
                Box::new(CoachStrategy::new(coach)),
                Box::new(ReflectionStrategy::new()),
                Box::new(SelfReviewStrategy::new()),
                Box::new(AutoEvolStrategy::new()),
                Box::new(FilterStrategy::new(seed)),
                Box::new(NoopStrategy),
            ],
        }
    }

    /// Registry names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|s| s.name()).collect()
    }

    /// Looks a strategy up by name.
    pub fn get(&self, name: &str) -> Option<&dyn Strategy> {
        self.entries
            .iter()
            .find(|s| s.name() == name)
            .map(AsRef::as_ref)
    }

    /// Iterates the strategies in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Strategy> {
        self.entries.iter().map(AsRef::as_ref)
    }

    /// Number of registered strategies.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no strategy is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

// ---------------------------------------------------------------------------
// CoachLM and the baselines
// ---------------------------------------------------------------------------

/// The paper's own pipeline: one [`CoachReviseStage`].
pub struct CoachStrategy<'a> {
    coach: &'a CoachLm,
}

impl<'a> CoachStrategy<'a> {
    /// A strategy revising with `coach`.
    pub fn new(coach: &'a CoachLm) -> Self {
        CoachStrategy { coach }
    }
}

impl Strategy for CoachStrategy<'_> {
    fn name(&self) -> &str {
        "coachlm"
    }

    fn stages(&self) -> Vec<Box<dyn Stage + '_>> {
        vec![Box::new(CoachReviseStage::new(self.coach))]
    }
}

/// The AlpaGasus baseline: filter low-rated pairs, revise nothing.
pub struct FilterStrategy {
    rater: ChatGptRater,
}

impl FilterStrategy {
    /// AlpaGasus filtering at the paper's 4.5 threshold.
    pub fn new(seed: u64) -> Self {
        FilterStrategy {
            rater: ChatGptRater::new(seed),
        }
    }
}

impl Strategy for FilterStrategy {
    fn name(&self) -> &str {
        "filter"
    }

    fn stages(&self) -> Vec<Box<dyn Stage + '_>> {
        vec![Box::new(crate::baselines::AlpaGasusStage::new(
            &self.rater,
            4.5,
        ))]
    }
}

/// The identity pipeline: every pair passes through untouched.
pub struct NoopStrategy;

/// [`NoopStrategy`]'s single stage.
pub struct PassthroughStage;

impl PassthroughStage {
    /// The stage's report name.
    pub const NAME: &'static str = "noop";
}

impl Stage for PassthroughStage {
    fn name(&self) -> &str {
        Self::NAME
    }

    fn process(&self, _item: &mut StageItem, ctx: &mut StageCtx<'_>) -> StageOutcome {
        ctx.bump("passed");
        StageOutcome::Ok
    }
}

impl Strategy for NoopStrategy {
    fn name(&self) -> &str {
        "noop"
    }

    fn stages(&self) -> Vec<Box<dyn Stage + '_>> {
        vec![Box::new(PassthroughStage)]
    }
}

// ---------------------------------------------------------------------------
// Reflection-Tuning: critique, then regenerate from the critique
// ---------------------------------------------------------------------------

/// A structured critique of one pair against the Table II rubric, the
/// chain-of-thought bridge between [`CritiqueStage`] and
/// [`RegenerateStage`].
#[derive(Debug, Clone, PartialEq)]
pub struct Critique {
    /// Instruction-side rubric dimensions found wanting.
    pub instruction_flaws: Vec<&'static str>,
    /// Response-side rubric dimensions found wanting.
    pub response_flaws: Vec<&'static str>,
    /// The pair's rubric scores at critique time.
    pub scores: PairScores,
}

impl Critique {
    /// `true` when the critique found nothing to fix.
    pub fn is_clean(&self) -> bool {
        self.instruction_flaws.is_empty() && self.response_flaws.is_empty()
    }
}

/// Scores a pair against every Table II dimension and attaches the
/// resulting [`Critique`] as the item payload (plus one counter per flaw,
/// so the reflection profile of a dataset is visible in the report).
pub struct CritiqueStage {
    engine: CriteriaEngine,
}

impl CritiqueStage {
    /// The stage's report name.
    pub const NAME: &'static str = "critique";

    /// A critique stage over the standard rubric engine.
    pub fn new() -> Self {
        CritiqueStage {
            engine: CriteriaEngine::new(),
        }
    }

    /// The critique of one pair; deterministic in the pair text alone.
    /// [`RegenerateStage`] recomputes this when the payload is absent
    /// (payloads are deliberately not journalled).
    pub fn critique(engine: &CriteriaEngine, instruction: &str, response: &str) -> Critique {
        let ia = engine.analyze_instruction(instruction);
        let ra = engine.analyze_response(instruction, response);
        let mut instruction_flaws = Vec::new();
        if ia.vague {
            instruction_flaws.push("feasibility:vague");
        }
        if ia.infeasible {
            instruction_flaws.push("feasibility:infeasible");
        }
        if ia.invalid_input {
            instruction_flaws.push("feasibility:invalid-input");
        }
        if ia.multimodal {
            instruction_flaws.push("feasibility:multimodal");
        }
        if ia.readability_flaws > 0 {
            instruction_flaws.push("readability:lexical");
        }
        if ia.layout_flaws > 0 {
            instruction_flaws.push("readability:layout");
        }
        if !ia.has_context {
            instruction_flaws.push("contextualization:missing");
        }
        let mut response_flaws = Vec::new();
        if ra.unsafe_content {
            response_flaws.push("safety:red-line");
        }
        if ra.fact_errors > 0 {
            response_flaws.push("correctness:fact-error");
        }
        if ra.irrelevant {
            response_flaws.push("relevance:off-topic");
        }
        if ra.truncated {
            response_flaws.push("comprehensiveness:truncated");
        }
        if ra.thin {
            response_flaws.push("comprehensiveness:thin");
        }
        if ra.readability_flaws > 0 || ra.layout_flaws > 0 || ra.degenerate {
            response_flaws.push("readability:degraded");
        }
        if !ra.reasoned {
            response_flaws.push("richness:unreasoned");
        }
        if !ra.has_example {
            response_flaws.push("richness:no-example");
        }
        if ra.machine_tone {
            response_flaws.push("humanization:machine-tone");
        }
        if !ra.warm {
            response_flaws.push("humanization:cold");
        }
        Critique {
            instruction_flaws,
            response_flaws,
            scores: engine.score_pair(instruction, response),
        }
    }
}

impl Default for CritiqueStage {
    fn default() -> Self {
        Self::new()
    }
}

impl Stage for CritiqueStage {
    fn name(&self) -> &str {
        Self::NAME
    }

    fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) -> StageOutcome {
        let critique = Self::critique(&self.engine, &item.pair.instruction, &item.pair.response);
        for flaw in &critique.instruction_flaws {
            ctx.bump(&format!("flaw:{flaw}"));
        }
        for flaw in &critique.response_flaws {
            ctx.bump(&format!("flaw:{flaw}"));
        }
        if critique.is_clean() {
            ctx.bump("clean");
        }
        item.set_payload(critique);
        StageOutcome::Ok
    }

    fn deadline(&self) -> Option<std::time::Duration> {
        // One modelled oracle critique call per pair.
        Some(std::time::Duration::from_secs(5))
    }

    fn service_time(&self) -> std::time::Duration {
        // A critique decode is shorter than a full regeneration.
        std::time::Duration::from_millis(600)
    }
}

/// Rewrites a pair from its [`Critique`]: each cited dimension triggers the
/// matching repair, and the §III-B1 post-processing (clean, validate,
/// keep-original-on-invalid) applies to the result.
pub struct RegenerateStage {
    engine: CriteriaEngine,
    kb: KnowledgeBase,
}

impl RegenerateStage {
    /// The stage's report name.
    pub const NAME: &'static str = "regenerate";

    /// A regeneration stage with full repair-knowledge coverage.
    pub fn new() -> Self {
        RegenerateStage {
            engine: CriteriaEngine::new(),
            kb: KnowledgeBase::with_coverage(1.0),
        }
    }
}

impl Default for RegenerateStage {
    fn default() -> Self {
        Self::new()
    }
}

impl Stage for RegenerateStage {
    fn name(&self) -> &str {
        Self::NAME
    }

    fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) -> StageOutcome {
        // The critique normally arrives as the payload from the critique
        // stage; recompute it when absent (payloads are not journalled,
        // and the critique is a pure function of the pair text).
        let critique = item.take_payload::<Critique>().unwrap_or_else(|| {
            CritiqueStage::critique(&self.engine, &item.pair.instruction, &item.pair.response)
        });
        if critique.is_clean() {
            ctx.bump("already-clean");
            return StageOutcome::Ok;
        }

        let mut instruction = item.pair.instruction.clone();
        let mut response = item.pair.response.clone();
        let topic = topic_of(&instruction);

        if critique
            .instruction_flaws
            .iter()
            .any(|f| f.starts_with("feasibility:"))
        {
            let t = pick(&mut ctx.rng, self.kb.clarifications());
            instruction = KnowledgeBase::fill(t, &topic);
        }
        instruction = fix_lexical(&self.kb, &instruction);
        instruction = normalize::normalize_layout(&instruction);
        if critique
            .instruction_flaws
            .contains(&"contextualization:missing")
        {
            let t = pick(&mut ctx.rng, self.kb.contexts());
            instruction = format!("{} {t}", instruction.trim_end());
        }

        let analysis = self.engine.analyze_response(&instruction, &response);
        repair_response(&self.kb, &mut ctx.rng, &topic, &analysis, &mut response);

        commit_revision(item, ctx, instruction, response);
        ctx.bump("regenerated");
        StageOutcome::Ok
    }

    fn deadline(&self) -> Option<std::time::Duration> {
        Some(std::time::Duration::from_secs(5))
    }

    fn service_time(&self) -> std::time::Duration {
        // A full conditioned regeneration decode, same class as CoachLM
        // inference.
        std::time::Duration::from_millis(840)
    }
}

/// Critique-then-regenerate (Reflection-Tuning, snippet 2 shape).
pub struct ReflectionStrategy {
    critique: CritiqueStage,
    regenerate: RegenerateStage,
}

impl ReflectionStrategy {
    /// The standard two-stage reflection pipeline.
    pub fn new() -> Self {
        ReflectionStrategy {
            critique: CritiqueStage::new(),
            regenerate: RegenerateStage::new(),
        }
    }
}

impl Default for ReflectionStrategy {
    fn default() -> Self {
        Self::new()
    }
}

impl Strategy for ReflectionStrategy {
    fn name(&self) -> &str {
        "reflection"
    }

    fn stages(&self) -> Vec<Box<dyn Stage + '_>> {
        vec![
            Box::new(BorrowedStage(&self.critique)),
            Box::new(BorrowedStage(&self.regenerate)),
        ]
    }
}

/// Adapter letting a strategy hand out its owned stages by reference.
struct BorrowedStage<'a, S: Stage>(&'a S);

impl<S: Stage> Stage for BorrowedStage<'_, S> {
    fn name(&self) -> &str {
        self.0.name()
    }
    fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) -> StageOutcome {
        self.0.process(item, ctx)
    }
    fn deadline(&self) -> Option<std::time::Duration> {
        self.0.deadline()
    }
    fn service_time(&self) -> std::time::Duration {
        self.0.service_time()
    }
    fn iteration_budget(&self) -> u32 {
        self.0.iteration_budget()
    }
}

// ---------------------------------------------------------------------------
// Self-Review: one looping revise-until-pass stage
// ---------------------------------------------------------------------------

/// A bounded revise-until-pass loop in a single stage: each committed pass
/// repairs the pair once and re-scores it against the rubric; the stage
/// returns [`StageOutcome::Again`] until the pair passes or the iteration
/// budget ([`Self::BUDGET`]) is spent, at which point the best-so-far
/// revision stands.
pub struct ReviseUntilPassStage {
    engine: CriteriaEngine,
    kb: KnowledgeBase,
}

/// Rubric acceptance bar for the self-review loop: the modelled expert QC
/// target (response score) with a structurally clean instruction.
const SELF_REVIEW_TARGET: f64 = 95.0;

impl ReviseUntilPassStage {
    /// The stage's report name.
    pub const NAME: &'static str = "revise-until-pass";

    /// Hard cap on committed passes per pair — the same bound the modelled
    /// expert owner-QC loop uses.
    pub const BUDGET: u32 = 4;

    /// A self-review stage with full repair-knowledge coverage.
    pub fn new() -> Self {
        ReviseUntilPassStage {
            engine: CriteriaEngine::new(),
            kb: KnowledgeBase::with_coverage(1.0),
        }
    }

    /// Whether the pair passes review as-is.
    fn passes(&self, instruction: &str, response: &str) -> bool {
        let scores = self.engine.score_pair(instruction, response);
        scores.response >= SELF_REVIEW_TARGET
            && self.engine.analyze_instruction(instruction).basic_flaws() == 0
    }
}

impl Default for ReviseUntilPassStage {
    fn default() -> Self {
        Self::new()
    }
}

impl Stage for ReviseUntilPassStage {
    fn name(&self) -> &str {
        Self::NAME
    }

    fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) -> StageOutcome {
        // One committed review pass: repair, re-score, decide. `Again`
        // commits its mutations, so each pass is a durable partial
        // revision — a crash between passes resumes from the journal and
        // converges to the uninterrupted digest.
        let mut instruction = item.pair.instruction.clone();
        let mut response = item.pair.response.clone();
        let topic = topic_of(&instruction);

        let ia = self.engine.analyze_instruction(&instruction);
        if ia.vague || ia.infeasible || ia.invalid_input || ia.multimodal {
            let t = pick(&mut ctx.rng, self.kb.clarifications());
            instruction = KnowledgeBase::fill(t, &topic);
        }
        instruction = fix_lexical(&self.kb, &instruction);
        instruction = normalize::normalize_layout(&instruction);

        let analysis = self.engine.analyze_response(&instruction, &response);
        repair_response(&self.kb, &mut ctx.rng, &topic, &analysis, &mut response);

        commit_revision(item, ctx, instruction, response);
        ctx.bump("pass");
        if self.passes(&item.pair.instruction, &item.pair.response) {
            ctx.bump("accepted");
            StageOutcome::Ok
        } else {
            // The executor accepts the pair as-is once the budget is
            // spent; count those so the report shows the loop's tail.
            ctx.bump("needs-another-pass");
            StageOutcome::Again
        }
    }

    fn deadline(&self) -> Option<std::time::Duration> {
        // Per-pass decode budget; a latency storm times passes out and
        // (with a breaker configured) degrades the stage to passthrough.
        Some(std::time::Duration::from_secs(5))
    }

    fn service_time(&self) -> std::time::Duration {
        // Each committed pass is one full self-review decode.
        std::time::Duration::from_millis(840)
    }

    fn iteration_budget(&self) -> u32 {
        Self::BUDGET
    }
}

/// The Self-Review pipeline: a single [`ReviseUntilPassStage`].
pub struct SelfReviewStrategy {
    stage: ReviseUntilPassStage,
}

impl SelfReviewStrategy {
    /// The standard self-review pipeline.
    pub fn new() -> Self {
        SelfReviewStrategy {
            stage: ReviseUntilPassStage::new(),
        }
    }
}

impl Default for SelfReviewStrategy {
    fn default() -> Self {
        Self::new()
    }
}

impl Strategy for SelfReviewStrategy {
    fn name(&self) -> &str {
        "self-review"
    }

    fn stages(&self) -> Vec<Box<dyn Stage + '_>> {
        vec![Box::new(BorrowedStage(&self.stage))]
    }
}

// ---------------------------------------------------------------------------
// auto-evol: complexity evolution
// ---------------------------------------------------------------------------

/// Complexity target, in instruction words, at which evolution stops.
const EVOLVED_WORDS: usize = 26;

/// One complexity-evolution pass per committed iteration (snippet 3
/// shape): add a constraint, deepen the reasoning requirement, or
/// concretize with context — chosen by the per-iteration RNG so the
/// trajectory varies across pairs but never across runs. The response is
/// expanded in step so it keeps answering the evolved instruction.
pub struct EvolveStage {
    engine: CriteriaEngine,
    kb: KnowledgeBase,
}

impl EvolveStage {
    /// The stage's report name.
    pub const NAME: &'static str = "evolve";

    /// Hard cap on evolution rounds per pair.
    pub const BUDGET: u32 = 3;

    /// An evolution stage with full knowledge coverage.
    pub fn new() -> Self {
        EvolveStage {
            engine: CriteriaEngine::new(),
            kb: KnowledgeBase::with_coverage(1.0),
        }
    }
}

impl Default for EvolveStage {
    fn default() -> Self {
        Self::new()
    }
}

impl Stage for EvolveStage {
    fn name(&self) -> &str {
        Self::NAME
    }

    fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) -> StageOutcome {
        let mut instruction = item.pair.instruction.clone();
        let mut response = item.pair.response.clone();
        let topic = topic_of(&instruction);

        // One evolution operation per committed pass; the choice is part
        // of the trajectory and comes from the per-iteration RNG.
        let op = ctx.rng.gen_range(0..3u32);
        match op {
            0 => {
                let n = ctx.rng.gen_range(3..6u32);
                instruction = format!(
                    "{} Answer in at most {n} sentences and justify each claim.",
                    instruction.trim_end()
                );
                ctx.bump("evolve:constraint");
            }
            1 => {
                instruction = format!(
                    "{} Explain the reasoning behind each step.",
                    instruction.trim_end()
                );
                ctx.bump("evolve:deepen");
            }
            _ => {
                let t = pick(&mut ctx.rng, self.kb.contexts());
                instruction = format!("{} {t}", instruction.trim_end());
                ctx.bump("evolve:concretize");
            }
        }

        // Keep the response up with the evolved instruction: ensure it
        // reasons and carries an example.
        let analysis = self.engine.analyze_response(&instruction, &response);
        if !analysis.reasoned {
            let t = pick(&mut ctx.rng, self.kb.expansions());
            response = format!("{} {}", response.trim_end(), KnowledgeBase::fill(t, &topic));
        }
        if !analysis.has_example {
            response = format!(
                "{} For example, consider how {topic} behaves in a simple case.",
                response.trim_end()
            );
        }

        commit_revision(item, ctx, instruction, response);
        if token::word_count(&item.pair.instruction) >= EVOLVED_WORDS {
            ctx.bump("evolved");
            StageOutcome::Ok
        } else {
            StageOutcome::Again
        }
    }

    fn deadline(&self) -> Option<std::time::Duration> {
        Some(std::time::Duration::from_secs(5))
    }

    fn service_time(&self) -> std::time::Duration {
        // Evolution decodes are shorter than full regenerations.
        std::time::Duration::from_millis(700)
    }

    fn iteration_budget(&self) -> u32 {
        Self::BUDGET
    }
}

/// The auto-evol pipeline: a single looping [`EvolveStage`].
pub struct AutoEvolStrategy {
    stage: EvolveStage,
}

impl AutoEvolStrategy {
    /// The standard complexity-evolution pipeline.
    pub fn new() -> Self {
        AutoEvolStrategy {
            stage: EvolveStage::new(),
        }
    }
}

impl Default for AutoEvolStrategy {
    fn default() -> Self {
        Self::new()
    }
}

impl Strategy for AutoEvolStrategy {
    fn name(&self) -> &str {
        "auto-evol"
    }

    fn stages(&self) -> Vec<Box<dyn Stage + '_>> {
        vec![Box::new(BorrowedStage(&self.stage))]
    }
}

// ---------------------------------------------------------------------------
// Shared repair helpers
// ---------------------------------------------------------------------------

/// The first content word of the instruction, or a neutral fallback.
fn topic_of(instruction: &str) -> String {
    lexicon::content_words(instruction, 1)
        .into_iter()
        .next()
        .unwrap_or_else(|| "the given subject".to_string())
}

/// Uniform template choice from a non-empty list.
fn pick<'t, R: Rng>(rng: &mut R, templates: &'t [&'t str]) -> &'t str {
    templates
        .get(rng.gen_range(0..templates.len().max(1)))
        .map_or("", |t| t)
}

/// Fixes known misspellings and grammar-pair errors.
fn fix_lexical(kb: &KnowledgeBase, text: &str) -> String {
    let mut fixed = text
        .split(' ')
        .map(|word| {
            let core: &str = word.trim_matches(|c: char| !c.is_ascii_alphanumeric());
            if core.is_empty() {
                return word.to_string();
            }
            match kb.typo_correction(&normalize::fold_case(core)) {
                Some(right) => word.replacen(core, right, 1),
                None => word.to_string(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ");
    while let Some((wrong, right)) = kb.grammar_correction(&fixed) {
        let next = fixed.replacen(wrong, right, 1);
        if next == fixed {
            // Case mismatch between the folded probe and the literal text;
            // stop rather than spin.
            break;
        }
        fixed = next;
    }
    fixed
}

/// One deterministic sentence of expansion on `topic`.
fn expansion_sentence<R: Rng>(kb: &KnowledgeBase, rng: &mut R, topic: &str) -> String {
    KnowledgeBase::fill(pick(rng, kb.expansions()), topic)
}

/// Repairs a response in place per its rubric analysis: safety first, then
/// facts, relevance, completeness, richness, and tone.
fn repair_response<R: Rng>(
    kb: &KnowledgeBase,
    rng: &mut R,
    topic: &str,
    analysis: &ResponseAnalysis,
    response: &mut String,
) {
    if analysis.unsafe_content {
        let lead = pick(rng, kb.safe_completions());
        *response = format!("{lead} {}", expansion_sentence(kb, rng, topic));
    } else if analysis.irrelevant {
        *response = format!(
            "{} {}",
            expansion_sentence(kb, rng, topic),
            expansion_sentence(kb, rng, topic)
        );
    }
    while let Some((wrong, right)) = kb.fact_correction(response) {
        let next = response.replace(&wrong, &right);
        if next == *response {
            break;
        }
        *response = next;
    }
    while let Some(marker) = lexicon::find_marker(response, lexicon::MACHINE_TONE_MARKERS) {
        let next = response.replacen(marker, "", 1);
        if next == *response {
            break;
        }
        *response = next;
    }
    if analysis.truncated {
        *response = format!(
            "{} {}",
            response.trim_end().trim_end_matches(','),
            expansion_sentence(kb, rng, topic)
        );
    }
    if !analysis.reasoned || analysis.thin {
        *response = format!(
            "{} {}",
            response.trim_end(),
            expansion_sentence(kb, rng, topic)
        );
    }
    if !analysis.has_example {
        *response = format!(
            "{} For example, a concrete case of {topic} makes this easier to see.",
            response.trim_end()
        );
    }
    if !analysis.warm {
        let t = pick(rng, kb.warmth());
        *response = format!("{} {t}", response.trim_end());
    }
    *response = fix_lexical(kb, response);
    *response = normalize::normalize_layout(response);
}

/// §III-B1 post-processing shared by every revising strategy: clean the
/// candidate texts, validate, and commit — or keep the pair as it entered
/// the pass when the candidate is structurally invalid.
fn commit_revision(
    item: &mut StageItem,
    ctx: &mut StageCtx<'_>,
    instruction: String,
    response: String,
) {
    let instruction = clean::clean_output(&instruction);
    let response = clean::clean_output(&response);
    match clean::validate_pair(&instruction, &response) {
        clean::Validity::Valid => {
            if instruction != item.pair.instruction {
                ctx.bump("instruction-changed");
            }
            if response != item.pair.response {
                ctx.bump("response-changed");
            }
            item.pair.instruction = instruction;
            item.pair.response = response;
        }
        _ => {
            ctx.bump("invalid");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coachlm_data::generator::{generate, GeneratorConfig};
    use coachlm_expert::filter::preliminary_filter;
    use coachlm_expert::pool::ExpertPool;
    use coachlm_expert::revision::ExpertReviser;

    fn arena(n: usize, seed: u64) -> Dataset {
        let (d, _) = generate(&GeneratorConfig::small(n, seed));
        d
    }

    fn trained_coach(n: usize, seed: u64) -> CoachLm {
        let d = arena(n, seed);
        let kept = preliminary_filter(&d, seed).kept;
        let records = ExpertReviser::new(seed).revise_dataset(&ExpertPool::paper_pool(), &d, &kept);
        CoachLm::train(crate::CoachConfig::default(), &records)
    }

    #[test]
    fn zoo_registry_has_the_standard_lineup() {
        let coach = trained_coach(200, 7);
        let zoo = StrategyZoo::standard(&coach, 11);
        assert_eq!(
            zoo.names(),
            vec![
                "coachlm",
                "reflection",
                "self-review",
                "auto-evol",
                "filter",
                "noop"
            ]
        );
        assert_eq!(zoo.len(), 6);
        assert!(!zoo.is_empty());
        assert!(zoo.get("self-review").is_some());
        assert!(zoo.get("missing").is_none());
    }

    #[test]
    fn self_review_loop_improves_scores_within_budget() {
        let input = arena(120, 3);
        let strategy = SelfReviewStrategy::new();
        let out = strategy.run(&input, &ExecutorConfig::new(5));
        let report = out.report(ReviseUntilPassStage::NAME).unwrap();
        // The loop is bounded: no pair may take more passes than BUDGET.
        assert!(
            report.iterations <= report.items_in as u64 * u64::from(ReviseUntilPassStage::BUDGET)
        );
        // And it is a real loop: some pairs need more than one pass.
        assert!(report.iterations > report.items_in as u64);
        let engine = CriteriaEngine::new();
        let before: f64 = input
            .pairs
            .iter()
            .map(|p| engine.score_pair(&p.instruction, &p.response).response)
            .sum::<f64>()
            / input.pairs.len() as f64;
        let revised = out.dataset("arena-self-review");
        let after: f64 = revised
            .pairs
            .iter()
            .map(|p| engine.score_pair(&p.instruction, &p.response).response)
            .sum::<f64>()
            / revised.pairs.len() as f64;
        assert!(
            after > before,
            "self-review should raise the mean response score ({before:.1} → {after:.1})"
        );
    }

    #[test]
    fn reflection_regenerates_from_critique_payloads() {
        let input = arena(80, 4);
        let strategy = ReflectionStrategy::new();
        let out = strategy.run(&input, &ExecutorConfig::new(9));
        let critique = out.report(CritiqueStage::NAME).unwrap();
        let regen = out.report(RegenerateStage::NAME).unwrap();
        assert_eq!(critique.items_in, input.pairs.len());
        assert!(regen.counter("regenerated") > 0);
        // A regeneration without a payload (journal replay path) matches
        // the recomputed critique, so both paths revise identically.
        let engine = CriteriaEngine::new();
        let c1 = CritiqueStage::critique(&engine, "do somthing", "Its a answer");
        let c2 = CritiqueStage::critique(&engine, "do somthing", "Its a answer");
        assert_eq!(c1, c2);
        assert!(!c1.is_clean());
    }

    #[test]
    fn evolution_lengthens_instructions_within_budget() {
        let input = arena(60, 6);
        let strategy = AutoEvolStrategy::new();
        let out = strategy.run(&input, &ExecutorConfig::new(2));
        let report = out.report(EvolveStage::NAME).unwrap();
        assert!(report.iterations <= report.items_in as u64 * u64::from(EvolveStage::BUDGET));
        let trajectory = report.counter("evolve:constraint")
            + report.counter("evolve:deepen")
            + report.counter("evolve:concretize");
        assert_eq!(trajectory, report.iterations);
        for (orig, evolved) in input.pairs.iter().zip(out.dataset("x").pairs.iter()) {
            assert!(
                token::word_count(&evolved.instruction) > token::word_count(&orig.instruction),
                "every instruction gains complexity"
            );
        }
    }

    #[test]
    fn noop_and_filter_partition_exactly() {
        let input = arena(100, 8);
        let noop = NoopStrategy.run(&input, &ExecutorConfig::new(1));
        assert_eq!(noop.retained().count(), input.pairs.len());
        for (orig, item) in input.pairs.iter().zip(noop.items.iter()) {
            assert_eq!(orig.instruction, item.pair.instruction);
            assert_eq!(orig.response, item.pair.response);
        }
        let filter = FilterStrategy::new(0).run(&input, &ExecutorConfig::new(1));
        let kept = filter.retained().count();
        let dropped = filter.dropped().count();
        assert_eq!(kept + dropped, input.pairs.len());
        assert!(dropped > 0, "the 4.5 bar drops some pairs");
    }
}
