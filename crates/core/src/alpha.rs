//! Human-input-ratio α selection (§II-F2).
//!
//! The quality of a coach-tuning example `(x, x_r)` is "determined by the
//! difference between x_r and x": near-identity pairs teach the model to
//! copy. The paper therefore ranks `R` by edit distance and keeps the top-α
//! fraction. Word-level Levenshtein over instruction + response is the
//! ranking key (ties broken by id for determinism).

use coachlm_expert::revision::RevisionRecord;
use coachlm_text::editdist::WordDistance;

/// A revision record with its ranking key.
#[derive(Debug, Clone)]
pub struct RankedRecord<'r> {
    /// The underlying record.
    pub record: &'r RevisionRecord,
    /// Word-level edit distance (instruction + response).
    pub edit_distance: usize,
}

/// Ranks records by total word-level edit distance, descending.
pub fn rank_by_edit_distance(records: &[RevisionRecord]) -> Vec<RankedRecord<'_>> {
    // One calculator for the whole pass: instructions repeat heavily across
    // records, so the tokenisation memo must survive from record to record
    // (a fresh `WordDistance` per dataset is the only cache boundary).
    let mut wd = WordDistance::new();
    let mut ranked: Vec<RankedRecord<'_>> = records
        .iter()
        .map(|r| {
            let d = wd.distance(&r.original.instruction, &r.revised.instruction)
                + wd.distance(&r.original.response, &r.revised.response);
            RankedRecord {
                record: r,
                edit_distance: d,
            }
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.edit_distance
            .cmp(&a.edit_distance)
            .then_with(|| a.record.id.cmp(&b.record.id))
    });
    ranked
}

/// Selects `C_α`: the top-α fraction of `records` by edit distance.
///
/// `alpha` is clamped to [0, 1]; `alpha = 0` selects nothing (the raw
/// backbone is then used for revision, the Fig 5 x = 0 point) and
/// `alpha = 1` selects everything.
pub fn select_alpha(records: &[RevisionRecord], alpha: f64) -> Vec<&RevisionRecord> {
    let alpha = alpha.clamp(0.0, 1.0);
    let take = ((records.len() as f64) * alpha).round() as usize;
    rank_by_edit_distance(records)
        .into_iter()
        .take(take)
        .map(|r| r.record)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coachlm_data::category::Category;
    use coachlm_data::pair::InstructionPair;
    use coachlm_judge::criteria::PairScores;

    fn record(id: u64, orig_resp: &str, rev_resp: &str) -> RevisionRecord {
        RevisionRecord {
            id,
            expert: 0,
            original: InstructionPair::new(id, "instr", orig_resp, Category(0)),
            revised: InstructionPair::new(id, "instr", rev_resp, Category(0)),
            instruction_revised: false,
            instruction_kind: None,
            response_kind: None,
            qc_iterations: 1,
            final_scores: PairScores {
                instruction: 90.0,
                response: 96.0,
            },
        }
    }

    fn sample() -> Vec<RevisionRecord> {
        vec![
            record(0, "a b c", "a b c d"),                       // distance 1
            record(1, "a b c", "completely different text now"), // distance 4
            record(2, "a b c", "a x c y z"),                     // distance 3
            record(3, "a b c", "a b c"),                         // distance 0
        ]
    }

    #[test]
    fn ranking_is_descending() {
        let records = sample();
        let ranked = rank_by_edit_distance(&records);
        let dists: Vec<usize> = ranked.iter().map(|r| r.edit_distance).collect();
        assert_eq!(dists, vec![4, 3, 1, 0]);
        assert_eq!(ranked[0].record.id, 1);
    }

    #[test]
    fn alpha_takes_top_fraction() {
        let records = sample();
        let half = select_alpha(&records, 0.5);
        assert_eq!(half.len(), 2);
        assert_eq!(half[0].id, 1);
        assert_eq!(half[1].id, 2);
    }

    #[test]
    fn alpha_bounds() {
        let records = sample();
        assert!(select_alpha(&records, 0.0).is_empty());
        assert_eq!(select_alpha(&records, 1.0).len(), 4);
        assert_eq!(select_alpha(&records, 2.0).len(), 4); // clamped
        assert!(select_alpha(&records, -1.0).is_empty());
    }

    #[test]
    fn alpha_rounding() {
        let records = sample();
        // 0.3 of 4 = 1.2 → rounds to 1.
        assert_eq!(select_alpha(&records, 0.3).len(), 1);
        // 0.4 of 4 = 1.6 → rounds to 2.
        assert_eq!(select_alpha(&records, 0.4).len(), 2);
    }

    #[test]
    fn ties_break_by_id_for_determinism() {
        let records = vec![record(7, "a", "b"), record(3, "x", "y")];
        let ranked = rank_by_edit_distance(&records);
        assert_eq!(ranked[0].record.id, 3);
        assert_eq!(ranked[1].record.id, 7);
    }

    #[test]
    fn empty_records() {
        let records: Vec<RevisionRecord> = Vec::new();
        assert!(select_alpha(&records, 0.5).is_empty());
    }

    #[test]
    fn instruction_edits_count_too() {
        let mut a = record(0, "same", "same");
        a.revised.instruction = "instr with extra words".to_string();
        let b = record(1, "same", "same x");
        let records = vec![a, b];
        let ranked = rank_by_edit_distance(&records);
        assert_eq!(ranked[0].record.id, 0, "instruction edits dominate here");
    }
}
