//! # coachlm-core
//!
//! The paper's primary contribution: CoachLM — a coach language model that
//! learns the expert revision process and automatically revises every pair
//! of an instruction dataset (§II-F), plus the downstream machinery the
//! evaluation needs.
//!
//! * [`alpha`] — the human-input-ratio α selection over word-level edit
//!   distance (§II-F2): `C_α` keeps the top-α fraction of expert revision
//!   pairs by revision magnitude.
//! * [`coach`] — coach instruction tuning (§II-F1, Eq. 1): adapts a frozen
//!   backbone with a rule-learning adapter trained on `C_α`, and exposes
//!   the Fig 3 prompt format.
//! * [`infer`] — automatic revision of a dataset (§II-F3, Eq. 2) with the
//!   §III-B1 post-processing: output cleaning, invalid-output replacement,
//!   and training-data leakage exclusion.
//! * [`student`] — the instruction-tuning simulator: "fine-tunes" a
//!   student LLM on a dataset by deriving per-category instruction-following
//!   skill from measured data quality and coverage, then generates
//!   responses whose textual quality tracks that skill.
//! * [`baselines`] — dataset builders and model profiles for every row of
//!   Table IX (Alpaca, Alpaca-cleaned, AlpaGasus, Alpaca-PandaLM,
//!   Alpaca-human, Vicuna, the stronger group).
//! * [`evaluate`] — runs a model over a test set under a judge, producing
//!   WR1/WR2/QS.
//! * [`strategies`] — the strategy zoo: alternative revision pipelines
//!   (Reflection-Tuning critique-then-regenerate, Self-Review
//!   revise-until-pass loops, auto-evol complexity evolution, filtering
//!   and no-op baselines) behind one [`Strategy`] interface, for
//!   head-to-head tournaments under the debiased judge.
//! * [`pipeline`] — the §IV-A Huawei data management pipeline with and
//!   without the CoachLM precursor stage, and its efficiency accounting.

#![deny(unused_must_use)]
#![warn(missing_docs)]

pub mod alpha;
pub mod baselines;
pub mod coach;
pub mod evaluate;
pub mod infer;
pub mod pipeline;
pub mod strategies;
pub mod student;

pub use alpha::select_alpha;
pub use coach::{CoachConfig, CoachLm};
pub use infer::{revise_dataset, revise_stream, RevisedDataset};
pub use strategies::{Strategy, StrategyZoo};
pub use student::{tune_student, StudentModel};
