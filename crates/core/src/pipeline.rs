//! The §IV-A data management pipeline (Fig 6).
//!
//! Raw user cases flow through rule-based parsing/cleaning, optionally a
//! CoachLM revision stage, and then human annotation. The experiment
//! compares two batches of the platform: without the CoachLM stage
//! (~80 high-quality pairs per person-day in the paper) and with it
//! (~100/person-day, a net 15–20 % gain), plus the CoachLM inference
//! throughput itself (paper: 1.19 samples/s on one A100 at batch 32; ours
//! is a CPU figure, reported for shape not magnitude).

use crate::coach::CoachLm;
use crate::infer::{revise_dataset, RevisedDataset};
use coachlm_data::category::TaskClass;
use coachlm_data::pair::Dataset;
use coachlm_expert::cost::{Throughputs, Workload};
use coachlm_expert::pool::ExpertPool;
use coachlm_expert::revision::ExpertReviser;
use serde::Serialize;
use std::time::Instant;

/// Production annotation throughputs (pairs/person-day), calibrated so the
/// manual batch lands near the paper's ~80 pairs/person-day.
pub fn production_throughputs() -> Throughputs {
    Throughputs {
        examine: 400.0,
        filter: 800.0,
        revise_language: 80.0,
        revise_qa: 60.0,
        revise_creative: 40.0,
        qc: 200.0,
        post_edit: 105.0,
    }
}

/// Report of one pipeline batch.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineReport {
    /// Whether the CoachLM stage ran.
    pub with_coachlm: bool,
    /// Raw pairs entering the pipeline.
    pub raw_pairs: usize,
    /// Pairs the human annotators had to revise fully.
    pub human_revised: usize,
    /// Pairs only verified/post-edited (CoachLM precursor mode).
    pub post_edited: usize,
    /// Total person-days spent on human annotation.
    pub person_days: f64,
    /// High-quality pairs produced per person-day (the §IV-A headline).
    pub pairs_per_person_day: f64,
    /// CoachLM inference throughput (samples/s); 0 when no CoachLM stage.
    pub coachlm_samples_per_sec: f64,
    /// Final dataset after the batch.
    #[serde(skip)]
    pub output: Dataset,
}

/// Runs one batch through the platform.
///
/// `coach` enables the CoachLM precursor stage. Human annotation is the
/// expert reviser (deterministic rubric executor); its person-day cost is
/// modelled with [`production_throughputs`].
pub fn run_batch(
    coach: Option<&CoachLm>,
    raw: &Dataset,
    seed: u64,
    threads: usize,
) -> PipelineReport {
    let throughputs = production_throughputs();
    // Stage 1: rule-based scripts (machine cost only).
    let cleaned = crate::baselines::build_cleaned(raw);

    // Stage 2: optional CoachLM revision, timed.
    let (staged, samples_per_sec) = match coach {
        Some(c) => {
            let start = Instant::now();
            let revised: RevisedDataset =
                revise_dataset(c, &cleaned, seed, threads);
            let secs = start.elapsed().as_secs_f64().max(1e-9);
            (revised.dataset, cleaned.len() as f64 / secs)
        }
        None => (cleaned, 0.0),
    };

    // Stage 3: human annotation. Pairs still failing the rubric get a full
    // revision; machine-revised pairs that pass get a verification pass.
    let reviser = ExpertReviser::new(seed ^ 0xA11CE);
    let pool = ExpertPool::paper_pool();
    let mut output = Dataset::new(format!("{}-produced", raw.name));
    output.pairs.reserve(staged.len());
    let mut revised_by_class = (0usize, 0usize, 0usize);
    let mut post_edited = 0usize;
    for (p, orig) in staged.iter().zip(raw.iter()) {
        if reviser.needs_revision(p) {
            match p.category.class() {
                TaskClass::LanguageTask => revised_by_class.0 += 1,
                TaskClass::QA => revised_by_class.1 += 1,
                TaskClass::Creative => revised_by_class.2 += 1,
            }
            let rec = reviser.revise(&pool, p).expect("needs_revision implies Some");
            output.pairs.push(rec.revised);
        } else {
            if coach.is_some() && (p.instruction != orig.instruction || p.response != orig.response)
            {
                post_edited += 1;
            }
            output.pairs.push(p.clone());
        }
    }

    let workload = Workload {
        filtered: 0,
        examined: staged.len(),
        revised: revised_by_class,
        post_edited,
    };
    let person_days = workload.person_days(&throughputs);
    PipelineReport {
        with_coachlm: coach.is_some(),
        raw_pairs: raw.len(),
        human_revised: revised_by_class.0 + revised_by_class.1 + revised_by_class.2,
        post_edited,
        person_days,
        pairs_per_person_day: if person_days > 0.0 {
            output.len() as f64 / person_days
        } else {
            0.0
        },
        coachlm_samples_per_sec: samples_per_sec,
        output,
    }
}

/// The §IV-A comparison: efficiency with vs without the CoachLM stage.
#[derive(Debug, Clone, Serialize)]
pub struct DeploymentComparison {
    /// Batch without CoachLM.
    pub manual: PipelineReport,
    /// Batch with CoachLM.
    pub assisted: PipelineReport,
}

impl DeploymentComparison {
    /// Relative efficiency gain (e.g. 0.2 = +20 %).
    pub fn efficiency_gain(&self) -> f64 {
        if self.manual.pairs_per_person_day <= 0.0 {
            return 0.0;
        }
        self.assisted.pairs_per_person_day / self.manual.pairs_per_person_day - 1.0
    }
}

/// Runs both batches on the same raw data.
pub fn compare_deployment(
    coach: &CoachLm,
    raw: &Dataset,
    seed: u64,
    threads: usize,
) -> DeploymentComparison {
    DeploymentComparison {
        manual: run_batch(None, raw, seed, threads),
        assisted: run_batch(Some(coach), raw, seed, threads),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coach::{CoachConfig, CoachLm};
    use coachlm_data::generator::{generate, GeneratorConfig};
    use coachlm_expert::filter::preliminary_filter;

    fn coach(seed: u64) -> CoachLm {
        let (d, _) = generate(&GeneratorConfig::small(2500, seed));
        let kept = preliminary_filter(&d, seed).kept;
        let records = ExpertReviser::new(seed).revise_dataset(&ExpertPool::paper_pool(), &d, &kept);
        CoachLm::train(CoachConfig::default(), &records)
    }

    #[test]
    fn coachlm_stage_reduces_human_revision_load() {
        let c = coach(1);
        let (raw, _) = generate(&GeneratorConfig::small(1200, 77));
        let cmp = compare_deployment(&c, &raw, 5, 4);
        assert!(
            cmp.assisted.human_revised < cmp.manual.human_revised / 2,
            "manual {} assisted {}",
            cmp.manual.human_revised,
            cmp.assisted.human_revised
        );
        assert!(cmp.assisted.post_edited > 0);
    }

    #[test]
    fn efficiency_gain_in_paper_band() {
        let c = coach(2);
        let (raw, _) = generate(&GeneratorConfig::small(2000, 42));
        let cmp = compare_deployment(&c, &raw, 3, 8);
        let gain = cmp.efficiency_gain();
        // Paper: net 15–20 % (we allow a wider band; the shape target is
        // "a meaningful but not overwhelming gain").
        assert!((0.08..0.45).contains(&gain), "gain {gain}");
    }

    #[test]
    fn manual_batch_near_80_pairs_per_person_day() {
        let (raw, _) = generate(&GeneratorConfig::small(2000, 43));
        let report = run_batch(None, &raw, 1, 4);
        assert!(
            (60.0..105.0).contains(&report.pairs_per_person_day),
            "rate {}",
            report.pairs_per_person_day
        );
        assert_eq!(report.coachlm_samples_per_sec, 0.0);
    }

    #[test]
    fn throughput_is_measured_when_coach_runs() {
        let c = coach(3);
        let (raw, _) = generate(&GeneratorConfig::small(300, 44));
        let report = run_batch(Some(&c), &raw, 1, 4);
        assert!(report.coachlm_samples_per_sec > 0.0);
        assert!(report.with_coachlm);
    }

    #[test]
    fn output_quality_meets_acceptance_in_both_modes() {
        let c = coach(4);
        let (raw, _) = generate(&GeneratorConfig::small(400, 45));
        let cmp = compare_deployment(&c, &raw, 9, 4);
        let engine = coachlm_judge::criteria::CriteriaEngine::new();
        for report in [&cmp.manual, &cmp.assisted] {
            let avg: f64 = report
                .output
                .iter()
                .map(|p| engine.score_pair(&p.instruction, &p.response).response)
                .sum::<f64>()
                / report.output.len() as f64;
            assert!(avg > 85.0, "avg {avg} (coachlm={})", report.with_coachlm);
        }
    }
}
