//! The §IV-A data management pipeline (Fig 6).
//!
//! Raw user cases flow through a declarative stage chain on the shared
//! executor — Clean → (optional) CoachRevise → ExpertAnnotate — and the
//! batch report is derived from the executor's per-stage reports. The
//! experiment compares two batches of the platform: without the CoachLM
//! stage (~80 high-quality pairs per person-day in the paper) and with it
//! (~100/person-day, a net 15–20 % gain), plus the CoachLM inference
//! throughput itself (paper: 1.19 samples/s on one A100 at batch 32; ours
//! is a CPU figure, reported for shape not magnitude).

use crate::baselines::CleanStage;
use crate::coach::{CoachConfig, CoachLm};
use crate::infer::CoachReviseStage;
use coachlm_data::category::TaskClass;
use coachlm_data::generator::{generate, GeneratorConfig};
use coachlm_data::pair::Dataset;
use coachlm_expert::cost::{Throughputs, Workload};
use coachlm_expert::filter::preliminary_filter;
use coachlm_expert::pool::ExpertPool;
use coachlm_expert::revision::ExpertReviser;
use coachlm_runtime::{
    run_sharded_process, shard, BreakerEvent, CacheStats, ChainOutput, Executor, ExecutorConfig,
    Feed, Journal, JournalError, ShardConfigError, ShardError, ShardStats, ShardSupervision, Stage,
    StageCtx, StageItem, StageOutcome, StageReport, StreamSource, SuperviseError, SuperviseOptions,
    SupervisedJob,
};
use serde::Serialize;
use std::fmt;

/// Why a pipeline batch could not produce a report.
#[derive(Debug)]
pub enum PipelineError {
    /// The chain ran but produced no report for the named stage — the chain
    /// was assembled without it, so the batch accounting would be wrong.
    MissingStageReport(&'static str),
    /// A journaled batch could not use its crash journal (incompatible
    /// with this run, or journal IO failed).
    Journal(JournalError),
    /// A sharded batch was rejected at config validation, or a shard's
    /// crash journal failed.
    Shard(ShardError),
    /// A supervised multi-process batch failed at the supervisor level
    /// (worker crashes are handled by restart/failover, not errors).
    Supervise(SuperviseError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::MissingStageReport(stage) => {
                write!(f, "pipeline chain produced no report for stage `{stage}`")
            }
            PipelineError::Journal(e) => write!(f, "pipeline crash journal: {e}"),
            PipelineError::Shard(e) => write!(f, "sharded pipeline batch: {e}"),
            PipelineError::Supervise(e) => write!(f, "supervised pipeline batch: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<JournalError> for PipelineError {
    fn from(e: JournalError) -> Self {
        PipelineError::Journal(e)
    }
}

impl From<ShardError> for PipelineError {
    fn from(e: ShardError) -> Self {
        PipelineError::Shard(e)
    }
}

impl From<ShardConfigError> for PipelineError {
    fn from(e: ShardConfigError) -> Self {
        PipelineError::Shard(e.into())
    }
}

impl From<SuperviseError> for PipelineError {
    fn from(e: SuperviseError) -> Self {
        PipelineError::Supervise(e)
    }
}

/// Production annotation throughputs (pairs/person-day), calibrated so the
/// manual batch lands near the paper's ~80 pairs/person-day.
pub fn production_throughputs() -> Throughputs {
    Throughputs {
        examine: 400.0,
        filter: 800.0,
        revise_language: 80.0,
        revise_qa: 60.0,
        revise_creative: 40.0,
        qc: 200.0,
        post_edit: 105.0,
    }
}

/// The human-annotation step as an executor stage: pairs still failing the
/// rubric get a full expert revision (counted per task class); pairs that
/// pass get at most a verification/post-edit pass.
pub struct ExpertAnnotateStage {
    reviser: ExpertReviser,
    pool: ExpertPool,
    count_post_edits: bool,
}

impl ExpertAnnotateStage {
    /// The stage's report name.
    pub const NAME: &'static str = "expert-annotate";

    /// A stage with its own reviser seed. `count_post_edits` enables the
    /// post-edit tally (only meaningful when a machine stage ran before
    /// this one, so passing pairs can differ from the originals).
    pub fn new(seed: u64, count_post_edits: bool) -> Self {
        ExpertAnnotateStage {
            reviser: ExpertReviser::new(seed),
            pool: ExpertPool::paper_pool(),
            count_post_edits,
        }
    }
}

impl Stage for ExpertAnnotateStage {
    fn name(&self) -> &str {
        Self::NAME
    }

    fn process(&self, item: &mut StageItem, ctx: &mut StageCtx<'_>) -> StageOutcome {
        if self.reviser.needs_revision(&item.pair) {
            // Compute the revision before committing anything, so a failed
            // attempt leaves the item untouched (the StageOutcome contract).
            let Some(rec) = self.reviser.revise(&self.pool, &item.pair) else {
                return StageOutcome::fatal("rubric demanded revision but reviser produced none");
            };
            let key = match item.pair.category.class() {
                TaskClass::LanguageTask => "revise:language",
                TaskClass::QA => "revise:qa",
                TaskClass::Creative => "revise:creative",
            };
            ctx.bump(key);
            item.pair = rec.revised;
        } else if self.count_post_edits && (item.instruction_changed() || item.response_changed()) {
            ctx.bump("post-edited");
        }
        StageOutcome::Ok
    }

    fn deadline(&self) -> Option<std::time::Duration> {
        // Human annotation: generous — experts are slow but don't hang,
        // so only a pathological stall should time a pair out.
        Some(std::time::Duration::from_secs(30))
    }

    fn service_time(&self) -> std::time::Duration {
        // The machine-side handling per pair (queueing to annotators,
        // QC bookkeeping) — the human person-day cost is accounted
        // separately via `Workload::person_days`. Virtual-time model only.
        std::time::Duration::from_millis(300)
    }
}

/// A serialisable slice of a [`StageReport`].
#[derive(Debug, Clone, Serialize)]
pub struct StageSummary {
    /// Stage name.
    pub stage: String,
    /// Items that entered the stage.
    pub items_in: usize,
    /// Items retained after it.
    pub items_out: usize,
    /// Items the stage sent to quarantine.
    pub quarantined: usize,
    /// Retry attempts the executor spent on the stage.
    pub retries: u64,
    /// Attempts cut short because injected latency blew the stage's
    /// deadline budget.
    pub timeouts: u64,
    /// Items the stage passed through unrevised because its circuit
    /// breaker was open.
    pub degraded: usize,
    /// Time attributed to the stage (measured + simulated), summed across
    /// workers.
    pub cpu_seconds: f64,
    /// Derived processing rate (0 when unmeasurable).
    pub samples_per_sec: f64,
}

impl From<&StageReport> for StageSummary {
    fn from(r: &StageReport) -> Self {
        StageSummary {
            stage: r.stage.clone(),
            items_in: r.items_in,
            items_out: r.items_out,
            quarantined: r.quarantined,
            retries: r.retries,
            timeouts: r.timeouts,
            degraded: r.degraded,
            cpu_seconds: r.cpu_time.as_secs_f64(),
            samples_per_sec: r.samples_per_sec(),
        }
    }
}

/// Report of one pipeline batch.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineReport {
    /// Whether the CoachLM stage ran.
    pub with_coachlm: bool,
    /// Raw pairs entering the pipeline.
    pub raw_pairs: usize,
    /// Pairs the human annotators had to revise fully.
    pub human_revised: usize,
    /// Pairs only verified/post-edited (CoachLM precursor mode).
    pub post_edited: usize,
    /// Total person-days spent on human annotation.
    pub person_days: f64,
    /// High-quality pairs produced per person-day (the §IV-A headline).
    pub pairs_per_person_day: f64,
    /// CoachLM inference throughput derived from the revise stage's
    /// executor-measured time (samples per CPU-second, summed across
    /// workers); 0 when no CoachLM stage ran.
    pub coachlm_samples_per_sec: f64,
    /// Pairs quarantined by failing stages across the whole chain (retries
    /// exhausted or permanent failures); they are excluded from the output
    /// and from the throughput numerator, which is how degraded-mode
    /// throughput shows up in [`compare_deployment`].
    pub quarantined: usize,
    /// Retry attempts the executor spent across the whole chain.
    pub retries: u64,
    /// Pairs deliberately discarded by stages (filtering, not failure).
    pub dropped: usize,
    /// Pairs that passed through at least one tripped stage unrevised
    /// (the §III-B1 leakage fallback as overload protection), summed
    /// across stages. They stay in the output but contribute nothing to
    /// revision quality — the cost of keeping the pipeline flowing.
    pub degraded: usize,
    /// Circuit-breaker transitions across the batch, in (epoch, stage)
    /// order; empty unless the executor config set a breaker policy.
    pub breaker_events: Vec<BreakerEvent>,
    /// Pairs replayed from a crash journal rather than re-executed (0 for
    /// un-journaled batches and fresh journals).
    pub replayed: usize,
    /// Pairs shed by admission control before entering the chain — always
    /// 0 under a batch feed; under a sustained feed these are arrivals
    /// that found the admission backlog full and were discarded up front
    /// rather than allowed to grow the backlog without bound.
    pub shed: usize,
    /// Revision-cache tallies (all zeros unless the executor config set a
    /// [`coachlm_runtime::CachePolicy`]). With a cache, duplicate user
    /// cases replay the memoized revision of their first occurrence
    /// instead of re-running the chain — the deployment dedup semantic for
    /// repeated traffic.
    pub revision_cache: CacheStats,
    /// Modeled end-to-end elapsed seconds of the run under the executor's
    /// virtual-time model (lane topology × declared stage service times);
    /// deterministic for a fixed config, 0 for stage-less chains.
    pub sim_elapsed_secs: f64,
    /// Per-stage execution summaries, in chain order.
    pub stage_summaries: Vec<StageSummary>,
    /// Final dataset after the batch.
    #[serde(skip)]
    pub output: Dataset,
}

impl PipelineReport {
    /// Derives the batch report from a chain run.
    fn from_chain(
        out: &ChainOutput,
        raw: &Dataset,
        with_coachlm: bool,
    ) -> Result<Self, PipelineError> {
        let annotate = out
            .report(ExpertAnnotateStage::NAME)
            .ok_or(PipelineError::MissingStageReport(ExpertAnnotateStage::NAME))?;
        let revised_by_class = (
            annotate.counter("revise:language") as usize,
            annotate.counter("revise:qa") as usize,
            annotate.counter("revise:creative") as usize,
        );
        let post_edited = annotate.counter("post-edited") as usize;
        let workload = Workload {
            filtered: 0,
            examined: annotate.items_in,
            revised: revised_by_class,
            post_edited,
        };
        let person_days = workload.person_days(&production_throughputs());
        let output = out.dataset(format!("{}-produced", raw.name));
        let coachlm_samples_per_sec = out
            .report(CoachReviseStage::NAME)
            .map_or(0.0, StageReport::samples_per_sec);
        Ok(PipelineReport {
            with_coachlm,
            raw_pairs: raw.len(),
            human_revised: revised_by_class.0 + revised_by_class.1 + revised_by_class.2,
            post_edited,
            person_days,
            pairs_per_person_day: if person_days > 0.0 {
                output.len() as f64 / person_days
            } else {
                0.0
            },
            coachlm_samples_per_sec,
            quarantined: out.total_quarantined(),
            retries: out.total_retries(),
            dropped: out.dropped().count(),
            degraded: out.total_degraded(),
            breaker_events: out.breaker_events.clone(),
            replayed: out.replayed,
            shed: out.shed,
            revision_cache: out.revision_cache,
            sim_elapsed_secs: out.sim_elapsed.as_secs_f64(),
            stage_summaries: out.reports.iter().map(StageSummary::from).collect(),
            output,
        })
    }
}

/// Builds the pipeline's stage chain: Clean → (optional) CoachRevise →
/// ExpertAnnotate.
fn batch_stages<'a>(
    coach: Option<&'a CoachLm>,
    config: &ExecutorConfig,
) -> Vec<Box<dyn Stage + 'a>> {
    let mut stages: Vec<Box<dyn Stage + '_>> = vec![Box::new(CleanStage)];
    if let Some(c) = coach {
        stages.push(Box::new(CoachReviseStage::new(c)));
    }
    stages.push(Box::new(ExpertAnnotateStage::new(
        config.seed() ^ 0xA11CE,
        coach.is_some(),
    )));
    stages
}

/// Runs one batch through the platform.
///
/// `coach` enables the CoachLM precursor stage. Human annotation is the
/// expert reviser (deterministic rubric executor); its person-day cost is
/// modelled with [`production_throughputs`]. The chain seed, worker count,
/// fault plan, and retry policy come from `config`; workers never affect
/// the result. Stage failures quarantine the affected pairs instead of
/// panicking; they are counted in [`PipelineReport::quarantined`].
pub fn run_batch(
    coach: Option<&CoachLm>,
    raw: &Dataset,
    config: &ExecutorConfig,
) -> Result<PipelineReport, PipelineError> {
    run_stream(coach, raw, config, Feed::Batch)
}

/// Runs one batch through the platform under an explicit arrival model.
///
/// [`run_batch`] is this with [`Feed::Batch`]. A [`Feed::Sustained`] feed
/// models the deployed service absorbing continuous user traffic: pairs
/// arrive at the configured rate, and arrivals that find the admission
/// backlog full are shed deterministically
/// ([`PipelineReport::shed`]) instead of growing the backlog without
/// bound — the overload story of the Fig-6 deployment.
pub fn run_stream(
    coach: Option<&CoachLm>,
    raw: &Dataset,
    config: &ExecutorConfig,
    feed: Feed,
) -> Result<PipelineReport, PipelineError> {
    let stages = batch_stages(coach, config);
    let source = StreamSource {
        pairs: raw.pairs.clone(),
        feed,
    };
    let out = Executor::new(config.clone()).run_stream(&stages, source);
    PipelineReport::from_chain(&out, raw, coach.is_some())
}

/// Runs one batch like [`run_batch`], journaling every committed pair to
/// `journal` so a crashed batch can be resumed.
///
/// Call it again with a journal recovered by [`Journal::open`] and the
/// same raw data and config: committed pairs replay instead of
/// re-executing ([`PipelineReport::replayed`] counts them) and the report
/// is identical to an uninterrupted batch in every deterministic field.
pub fn run_batch_journaled(
    coach: Option<&CoachLm>,
    raw: &Dataset,
    config: &ExecutorConfig,
    journal: &mut Journal,
) -> Result<PipelineReport, PipelineError> {
    let stages = batch_stages(coach, config);
    let out = Executor::new(config.clone()).run_journaled(&stages, raw.pairs.clone(), journal)?;
    PipelineReport::from_chain(&out, raw, coach.is_some())
}

/// Report of one sharded batch: the merged chain report plus per-shard
/// execution stats.
#[derive(Debug, Clone, Serialize)]
pub struct ShardedPipelineReport {
    /// The merged batch report. Because every pipeline stage derives its
    /// randomness from pair ids (never from slot positions), the merged
    /// output is digest-identical to the unsharded [`run_batch`] at any
    /// shard count.
    pub report: PipelineReport,
    /// Per-shard stats in shard order.
    pub shards: Vec<ShardStats>,
    /// Per-shard supervision counters (restarts, failover, poison
    /// bisection) — empty for in-process sharded runs, populated by
    /// [`run_batch_supervised`].
    #[serde(skip_serializing_if = "Vec::is_empty")]
    pub supervision: Vec<ShardSupervision>,
}

/// Runs one batch like [`run_batch`], hash-partitioned across `shards`
/// independent worker shards ([`shard::run_sharded`]).
///
/// Routing is by content fingerprint, so duplicate user cases co-locate
/// and a per-shard revision cache (configure one with
/// [`ExecutorConfig::revision_cache`]) keeps its full hit rate. With a
/// cache, duplicates replay the revision of their first occurrence —
/// sampled expert behaviour is memoized per *content* rather than
/// re-drawn per pair id, which is the intended dedup semantic for a
/// deployed service absorbing repeated traffic.
pub fn run_batch_sharded(
    coach: Option<&CoachLm>,
    raw: &Dataset,
    config: &ExecutorConfig,
    shards: usize,
) -> Result<ShardedPipelineReport, PipelineError> {
    let stages = batch_stages(coach, config);
    let out = shard::run_sharded(
        config,
        &stages,
        StreamSource::batch(raw.pairs.clone()),
        shards,
    )?;
    let report = PipelineReport::from_chain(&out.output, raw, coach.is_some())?;
    Ok(ShardedPipelineReport {
        report,
        shards: out.shards,
        supervision: Vec::new(),
    })
}

/// Runs one batch like [`run_batch_sharded`], with one crash journal per
/// shard under `dir` ([`shard::run_sharded_journaled`]).
///
/// Re-running after a crash resumes every shard from its own journal —
/// including a warm revision cache, whose replayed entries converge the
/// resumed run to the uninterrupted digest.
pub fn run_batch_sharded_journaled(
    coach: Option<&CoachLm>,
    raw: &Dataset,
    config: &ExecutorConfig,
    shards: usize,
    dir: &std::path::Path,
) -> Result<ShardedPipelineReport, PipelineError> {
    let stages = batch_stages(coach, config);
    let out = shard::run_sharded_journaled(
        config,
        &stages,
        StreamSource::batch(raw.pairs.clone()),
        shards,
        dir,
    )?;
    let report = PipelineReport::from_chain(&out.output, raw, coach.is_some())?;
    Ok(ShardedPipelineReport {
        report,
        shards: out.shards,
        supervision: Vec::new(),
    })
}

/// Chain name the supervised batch pipeline registers with the worker
/// protocol's job factory (see [`run_batch_supervised`]).
pub const BATCH_CHAIN: &str = "coachlm/batch-v1";

/// How a supervised worker trains its own CoachLM. Worker processes start
/// from nothing but the wire bytes, so the coach cannot be shipped — it is
/// re-derived in each worker from this deterministic training recipe
/// (synthetic corpus → preliminary filter → expert revision records →
/// [`CoachLm::train`]), which yields the identical model on every side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoachTrainSpec {
    /// Seed for the synthetic training corpus and the expert reviser.
    pub seed: u64,
    /// Synthetic training pairs to generate.
    pub pairs: u32,
}

/// The self-contained parameter block for the [`BATCH_CHAIN`] supervised
/// chain: everything a worker process needs to rebuild the exact executor
/// config and stage chain the parent runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchJobSpec {
    /// Executor seed (stage RNG and derived stage seeds).
    pub seed: u64,
    /// Executor worker threads inside each shard process.
    pub threads: u32,
    /// Train and run the CoachLM revise stage; `None` is the manual batch.
    pub coach: Option<CoachTrainSpec>,
}

impl BatchJobSpec {
    /// Serialises the spec into the opaque `params` bytes of the worker
    /// protocol's JOB frame (fixed-width little-endian fields).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(25);
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&self.threads.to_le_bytes());
        match self.coach {
            None => {
                out.push(0);
                out.extend_from_slice(&0u64.to_le_bytes());
                out.extend_from_slice(&0u32.to_le_bytes());
            }
            Some(c) => {
                out.push(1);
                out.extend_from_slice(&c.seed.to_le_bytes());
                out.extend_from_slice(&c.pairs.to_le_bytes());
            }
        }
        out
    }

    /// Inverse of [`BatchJobSpec::encode`]; `None` on malformed bytes.
    pub fn decode(bytes: &[u8]) -> Option<BatchJobSpec> {
        if bytes.len() != 25 {
            return None;
        }
        let seed = u64::from_le_bytes(bytes[0..8].try_into().ok()?);
        let threads = u32::from_le_bytes(bytes[8..12].try_into().ok()?);
        let coach_seed = u64::from_le_bytes(bytes[13..21].try_into().ok()?);
        let coach_pairs = u32::from_le_bytes(bytes[21..25].try_into().ok()?);
        let coach = match bytes[12] {
            0 if coach_seed == 0 && coach_pairs == 0 => None,
            1 => Some(CoachTrainSpec {
                seed: coach_seed,
                pairs: coach_pairs,
            }),
            _ => return None,
        };
        Some(BatchJobSpec {
            seed,
            threads,
            coach,
        })
    }
}

/// Trains a CoachLM from the deterministic synthetic recipe — the same
/// corpus → filter → expert-revision → train path the test suite uses,
/// parameterised so supervised workers can re-derive the parent's model.
pub fn trained_coach(seed: u64, pairs: u32) -> CoachLm {
    let (d, _) = generate(&GeneratorConfig::small(pairs as usize, seed));
    let kept = preliminary_filter(&d, seed).kept;
    let records = ExpertReviser::new(seed).revise_dataset(&ExpertPool::paper_pool(), &d, &kept);
    CoachLm::train(CoachConfig::default(), &records)
}

/// The batch pipeline as a process-shippable supervised job: owns the
/// (re-derived) coach so the borrowed stage chain has something to point
/// at on the worker side.
struct SupervisedBatchJob {
    config: ExecutorConfig,
    coach: Option<CoachLm>,
}

impl SupervisedJob for SupervisedBatchJob {
    fn config(&self) -> &ExecutorConfig {
        &self.config
    }

    fn stages<'a>(&'a self) -> Vec<Box<dyn Stage + 'a>> {
        batch_stages(self.coach.as_ref(), &self.config)
    }
}

/// The pipeline's [`coachlm_runtime::JobFactory`]: rebuilds the
/// [`BATCH_CHAIN`] job from its wire params. Pass this to
/// [`coachlm_runtime::worker_boot`] at the top of any binary that calls
/// [`run_batch_supervised`].
pub fn batch_job_factory(chain: &str, params: &[u8]) -> Option<Box<dyn SupervisedJob>> {
    if chain != BATCH_CHAIN {
        return None;
    }
    let spec = BatchJobSpec::decode(params)?;
    Some(Box::new(SupervisedBatchJob {
        config: ExecutorConfig::new(spec.seed).threads(spec.threads as usize),
        coach: spec.coach.map(|c| trained_coach(c.seed, c.pairs)),
    }))
}

/// Runs one batch like [`run_batch_sharded`], but with every shard in its
/// own crash-contained **worker process**
/// ([`coachlm_runtime::supervise::run_sharded_process`]): a shard that
/// aborts, is OOM-killed, or corrupts its stream is restarted from its
/// journal under `dir`, failed over, or poison-bisected — the merged
/// report is digest-identical to [`run_batch_sharded_journaled`] with the
/// same spec, and [`ShardedPipelineReport::supervision`] carries the
/// restart/failover/poison counters.
///
/// The calling binary must invoke
/// [`coachlm_runtime::worker_boot`]`(`[`batch_job_factory`]`)` first thing
/// in `main`, so re-invocations of itself become workers.
pub fn run_batch_supervised(
    spec: &BatchJobSpec,
    raw: &Dataset,
    shards: usize,
    dir: &std::path::Path,
    opts: &SuperviseOptions,
) -> Result<ShardedPipelineReport, PipelineError> {
    let out = run_sharded_process(
        batch_job_factory,
        BATCH_CHAIN,
        &spec.encode(),
        StreamSource::batch(raw.pairs.clone()),
        shards,
        dir,
        opts,
    )?;
    let report = PipelineReport::from_chain(&out.output, raw, spec.coach.is_some())?;
    Ok(ShardedPipelineReport {
        report,
        shards: out.shards,
        supervision: out.supervision,
    })
}

/// The §IV-A comparison: efficiency with vs without the CoachLM stage.
#[derive(Debug, Clone, Serialize)]
pub struct DeploymentComparison {
    /// Batch without CoachLM.
    pub manual: PipelineReport,
    /// Batch with CoachLM.
    pub assisted: PipelineReport,
}

impl DeploymentComparison {
    /// Relative efficiency gain (e.g. 0.2 = +20 %).
    pub fn efficiency_gain(&self) -> f64 {
        if self.manual.pairs_per_person_day <= 0.0 {
            return 0.0;
        }
        self.assisted.pairs_per_person_day / self.manual.pairs_per_person_day - 1.0
    }
}

/// Runs both batches on the same raw data. Under a faulty `config` the
/// quarantined pairs shrink each batch's output, so the comparison reports
/// degraded-mode throughput rather than failing.
pub fn compare_deployment(
    coach: &CoachLm,
    raw: &Dataset,
    config: &ExecutorConfig,
) -> Result<DeploymentComparison, PipelineError> {
    Ok(DeploymentComparison {
        manual: run_batch(None, raw, config)?,
        assisted: run_batch(Some(coach), raw, config)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coach::{CoachConfig, CoachLm};
    use coachlm_data::generator::{generate, GeneratorConfig};
    use coachlm_expert::filter::preliminary_filter;

    fn coach(seed: u64) -> CoachLm {
        let (d, _) = generate(&GeneratorConfig::small(2500, seed));
        let kept = preliminary_filter(&d, seed).kept;
        let records = ExpertReviser::new(seed).revise_dataset(&ExpertPool::paper_pool(), &d, &kept);
        CoachLm::train(CoachConfig::default(), &records)
    }

    fn config(seed: u64, threads: usize) -> ExecutorConfig {
        ExecutorConfig::new(seed).threads(threads)
    }

    #[test]
    fn coachlm_stage_reduces_human_revision_load() {
        let c = coach(1);
        let (raw, _) = generate(&GeneratorConfig::small(1200, 77));
        let cmp = compare_deployment(&c, &raw, &config(5, 4)).unwrap();
        assert!(
            cmp.assisted.human_revised < cmp.manual.human_revised / 2,
            "manual {} assisted {}",
            cmp.manual.human_revised,
            cmp.assisted.human_revised
        );
        assert!(cmp.assisted.post_edited > 0);
    }

    #[test]
    fn efficiency_gain_in_paper_band() {
        let c = coach(2);
        let (raw, _) = generate(&GeneratorConfig::small(2000, 42));
        let cmp = compare_deployment(&c, &raw, &config(3, 8)).unwrap();
        let gain = cmp.efficiency_gain();
        // Paper: net 15–20 % (we allow a wider band; the shape target is
        // "a meaningful but not overwhelming gain").
        assert!((0.08..0.45).contains(&gain), "gain {gain}");
    }

    #[test]
    fn manual_batch_near_80_pairs_per_person_day() {
        let (raw, _) = generate(&GeneratorConfig::small(2000, 43));
        let report = run_batch(None, &raw, &config(1, 4)).unwrap();
        assert!(
            (60.0..105.0).contains(&report.pairs_per_person_day),
            "rate {}",
            report.pairs_per_person_day
        );
        assert_eq!(report.coachlm_samples_per_sec, 0.0);
    }

    #[test]
    fn throughput_is_measured_when_coach_runs() {
        let c = coach(3);
        let (raw, _) = generate(&GeneratorConfig::small(300, 44));
        let report = run_batch(Some(&c), &raw, &config(1, 4)).unwrap();
        assert!(report.coachlm_samples_per_sec > 0.0);
        assert!(report.with_coachlm);
    }

    #[test]
    fn report_is_derived_from_stage_reports() {
        let c = coach(5);
        let (raw, _) = generate(&GeneratorConfig::small(300, 46));
        let report = run_batch(Some(&c), &raw, &config(2, 4)).unwrap();
        let names: Vec<&str> = report
            .stage_summaries
            .iter()
            .map(|s| s.stage.as_str())
            .collect();
        assert_eq!(
            names,
            vec![
                CleanStage::NAME,
                CoachReviseStage::NAME,
                ExpertAnnotateStage::NAME
            ]
        );
        // Nothing is dropped in this chain, so every stage sees every pair.
        assert!(report
            .stage_summaries
            .iter()
            .all(|s| s.items_in == raw.len()));
        let manual = run_batch(None, &raw, &config(2, 4)).unwrap();
        assert_eq!(manual.stage_summaries.len(), 2);
    }

    #[test]
    fn journaled_batch_resumes_to_the_same_report() {
        use coachlm_runtime::{FaultPlan, Journal};
        let c = coach(6);
        let (raw, _) = generate(&GeneratorConfig::small(200, 47));
        let cfg = config(8, 4).fault_plan(FaultPlan::new(13).transient(0.15).permanent(0.03));
        let golden = run_batch(Some(&c), &raw, &cfg).unwrap();

        let path = std::env::temp_dir().join(format!(
            "coachlm-pipeline-journal-{}.wal",
            std::process::id()
        ));
        let mut journal = Journal::create(&path).unwrap();
        run_batch_journaled(Some(&c), &raw, &cfg, &mut journal).unwrap();
        let spans = journal.record_spans().to_vec();
        drop(journal);

        // Kill the batch halfway through its committed records and resume.
        let cut = spans[spans.len() / 2].0 + 1;
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..cut as usize]).unwrap();
        let mut recovered = Journal::open(&path).unwrap();
        let resumed = run_batch_journaled(Some(&c), &raw, &cfg, &mut recovered).unwrap();
        std::fs::remove_file(&path).ok();

        assert!(resumed.replayed > 0);
        assert_eq!(resumed.output, golden.output);
        assert_eq!(resumed.quarantined, golden.quarantined);
        assert_eq!(resumed.retries, golden.retries);
        assert_eq!(resumed.human_revised, golden.human_revised);
        assert_eq!(resumed.post_edited, golden.post_edited);
        assert_eq!(resumed.person_days, golden.person_days);
    }

    #[test]
    fn sharded_batch_matches_unsharded_report() {
        let c = coach(7);
        let (raw, _) = generate(&GeneratorConfig::small(400, 48));
        let cfg = config(11, 4);
        let base = run_batch(Some(&c), &raw, &cfg).unwrap();
        for shards in [1, 3] {
            let sharded = run_batch_sharded(Some(&c), &raw, &cfg, shards).unwrap();
            assert_eq!(sharded.report.output, base.output, "shards = {shards}");
            assert_eq!(sharded.report.human_revised, base.human_revised);
            assert_eq!(sharded.report.post_edited, base.post_edited);
            assert_eq!(sharded.report.person_days, base.person_days);
            assert_eq!(sharded.shards.len(), shards);
        }
    }

    #[test]
    fn cached_batch_absorbs_duplicate_traffic() {
        use coachlm_data::generator::{zipfian_duplicates, ZipfianConfig};
        use coachlm_runtime::CachePolicy;
        let raw = zipfian_duplicates(&ZipfianConfig::stress(40, 600, 1.1, 5));
        let cfg = config(13, 4).revision_cache(CachePolicy::exact());
        let report = run_batch(None, &raw, &cfg).unwrap();
        assert_eq!(report.output.len(), 600);
        assert!(
            report.revision_cache.hit_rate() > 0.8,
            "hit rate {}",
            report.revision_cache.hit_rate()
        );
        // Sharded + cached reproduces the unsharded cached batch exactly:
        // duplicates co-locate, so each shard cache sees its whole cluster.
        let sharded = run_batch_sharded(None, &raw, &cfg, 4).unwrap();
        assert_eq!(sharded.report.output, report.output);
        assert_eq!(sharded.report.revision_cache, report.revision_cache);
        // An uncached run reports all zeros.
        let uncached = run_batch(None, &raw, &config(13, 4)).unwrap();
        assert_eq!(uncached.revision_cache, CacheStats::default());
    }

    #[test]
    fn output_quality_meets_acceptance_in_both_modes() {
        let c = coach(4);
        let (raw, _) = generate(&GeneratorConfig::small(400, 45));
        let cmp = compare_deployment(&c, &raw, &config(9, 4)).unwrap();
        let engine = coachlm_judge::criteria::CriteriaEngine::new();
        for report in [&cmp.manual, &cmp.assisted] {
            let avg: f64 = report
                .output
                .iter()
                .map(|p| engine.score_pair(&p.instruction, &p.response).response)
                .sum::<f64>()
                / report.output.len() as f64;
            assert!(avg > 85.0, "avg {avg} (coachlm={})", report.with_coachlm);
        }
    }
}
