//! The four instruction-following test sets (Table VI).
//!
//! | Name             | Size | Categories | Reference        |
//! |------------------|------|------------|------------------|
//! | CoachLM150       | 150  | 42         | Human (group B)  |
//! | PandaLM170       | 170  | 11         | ChatGPT          |
//! | Vicuna80         | 80   | 9          | Bard             |
//! | Self-Instruct252 | 252  | 15         | Human            |
//!
//! The reference *source* determines reference strength, which is what
//! makes per-test-set win rates in Table IX differ: PandaLM170's ChatGPT
//! references are beatable (7B models score 62–84 % WR1 there), Vicuna80's
//! Bard references are strong (38–54 %), with the human-referenced sets in
//! between. We encode each source as a quality band and *compose the
//! reference text accordingly* — judges then measure reference quality from
//! the text, not from the band.

use crate::category::Category;
use crate::compose::{compose_response, ComposeSpec};
use crate::generator::{instruction_text, topic_for};
use crate::topics::Topic;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which test set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TestSetKind {
    /// The paper's own 150-instruction, 42-category set (§II-G).
    CoachLm150,
    /// PandaLM's 170-instruction set; ChatGPT references.
    PandaLm170,
    /// Vicuna's 80-instruction set; Bard references.
    Vicuna80,
    /// Self-Instruct's 252-instruction user-oriented set; human references.
    SelfInstruct252,
}

impl TestSetKind {
    /// All four, in Table IX column order.
    pub const ALL: [TestSetKind; 4] = [
        TestSetKind::CoachLm150,
        TestSetKind::PandaLm170,
        TestSetKind::Vicuna80,
        TestSetKind::SelfInstruct252,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            TestSetKind::CoachLm150 => "CoachLM150",
            TestSetKind::PandaLm170 => "PandaLM170",
            TestSetKind::Vicuna80 => "Vicuna80",
            TestSetKind::SelfInstruct252 => "Self-instruct252",
        }
    }

    /// Number of instructions (Table VI).
    pub fn size(self) -> usize {
        match self {
            TestSetKind::CoachLm150 => 150,
            TestSetKind::PandaLm170 => 170,
            TestSetKind::Vicuna80 => 80,
            TestSetKind::SelfInstruct252 => 252,
        }
    }

    /// Number of categories (Table VI).
    pub fn category_count(self) -> usize {
        match self {
            TestSetKind::CoachLm150 => 42,
            TestSetKind::PandaLm170 => 11,
            TestSetKind::Vicuna80 => 9,
            TestSetKind::SelfInstruct252 => 15,
        }
    }

    /// The reference source's quality band (the target composition quality
    /// of reference responses). Ordered so Table IX's per-set difficulty
    /// emerges: PandaLM170 < Self-Instruct252 < CoachLM150 < Vicuna80.
    pub fn reference_quality(self) -> (f64, f64) {
        match self {
            TestSetKind::PandaLm170 => (0.45, 0.70),
            TestSetKind::SelfInstruct252 => (0.50, 0.72),
            TestSetKind::CoachLm150 => (0.60, 0.82),
            TestSetKind::Vicuna80 => (0.68, 0.90),
        }
    }

    /// Reference source label (Table VI).
    pub fn reference_source(self) -> &'static str {
        match self {
            TestSetKind::CoachLm150 | TestSetKind::SelfInstruct252 => "Human",
            TestSetKind::PandaLm170 => "ChatGPT",
            TestSetKind::Vicuna80 => "Bard",
        }
    }
}

/// One test item: an instruction with a reference response.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TestItem {
    /// Item id within the set.
    pub id: u64,
    /// The instruction.
    pub instruction: String,
    /// The reference response.
    pub reference: String,
    /// Task category.
    pub category: Category,
    /// The topic the item is about (kept so candidate generators can stay
    /// on-topic; real test sets ship the same information implicitly).
    pub topic: Topic,
}

/// A full test set.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TestSet {
    /// Which set this is.
    pub kind: TestSetKind,
    /// The items.
    pub items: Vec<TestItem>,
}

impl TestSet {
    /// Builds the test set deterministically from a seed.
    pub fn build(kind: TestSetKind, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ (kind as u64) << 32);
        let cats = categories_for(kind);
        let (qlo, qhi) = kind.reference_quality();
        let mut items = Vec::with_capacity(kind.size());
        for id in 0..kind.size() as u64 {
            let cat = cats[(id as usize) % cats.len()];
            let def = cat.def();
            let topic = topic_for(&mut rng, def);
            let instruction = instruction_text(&mut rng, def, topic);
            let q = rng.gen_range(qlo..qhi);
            let spec = ComposeSpec::sampled(q, &mut rng);
            let reference = compose_response(&mut rng, topic, spec);
            items.push(TestItem {
                id,
                instruction,
                reference,
                category: cat,
                topic,
            });
        }
        Self { kind, items }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Distinct categories present.
    pub fn distinct_categories(&self) -> usize {
        let set: std::collections::BTreeSet<Category> =
            self.items.iter().map(|i| i.category).collect();
        set.len()
    }
}

/// The category subset each test set draws from.
fn categories_for(kind: TestSetKind) -> Vec<Category> {
    match kind {
        // All 42 categories, evenly (§II-G).
        TestSetKind::CoachLm150 => Category::all().collect(),
        // 11 categories, Self-Instruct-flavoured (PandaLM sampled from it).
        TestSetKind::PandaLm170 => pick_named(&[
            "information extraction",
            "summarization",
            "open question answering",
            "in-domain question answering",
            "suggestion recommendation",
            "how-to guidance",
            "grammar correction",
            "brainstorming",
            "dialogue completion",
            "letter and email writing",
            "concept definition",
        ]),
        // Writing, role-play, math, knowledge, … (Vicuna's 9 groups).
        TestSetKind::Vicuna80 => pick_named(&[
            "story creation",
            "copywriting",
            "role play",
            "arithmetic calculation",
            "open question answering",
            "scientific inference",
            "comparison analysis",
            "brainstorming",
            "letter and email writing",
        ]),
        // 15 user-oriented categories (Gmail/Twitter/Github scenarios in
        // the original; here the closest matches).
        TestSetKind::SelfInstruct252 => pick_named(&[
            "letter and email writing",
            "summarization",
            "information extraction",
            "title generation",
            "text classification",
            "sentiment analysis",
            "code generation",
            "code explanation",
            "how-to guidance",
            "suggestion recommendation",
            "brainstorming",
            "dialogue completion",
            "data formatting",
            "open question answering",
            "paraphrasing",
        ]),
    }
}

fn pick_named(names: &[&str]) -> Vec<Category> {
    names
        .iter()
        // lint: allow(P1, reason = "names are compile-time constants from the tables above; a typo fails sizes_match_table6 before it can ship")
        .map(|n| Category::by_name(n).unwrap_or_else(|| panic!("unknown category {n}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_table6() {
        for kind in TestSetKind::ALL {
            let ts = TestSet::build(kind, 1);
            assert_eq!(ts.len(), kind.size(), "{}", kind.name());
        }
    }

    #[test]
    fn category_counts_match_table6() {
        for kind in TestSetKind::ALL {
            let ts = TestSet::build(kind, 1);
            assert_eq!(
                ts.distinct_categories(),
                kind.category_count(),
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn reference_strength_ordering() {
        // Measure composed reference richness via word counts: Vicuna80's
        // Bard references must be the longest/richest, PandaLM170's ChatGPT
        // references the thinnest.
        let avg_words = |kind: TestSetKind| {
            let ts = TestSet::build(kind, 3);
            ts.items
                .iter()
                .map(|i| coachlm_text::token::word_count(&i.reference) as f64)
                .sum::<f64>()
                / ts.len() as f64
        };
        let panda = avg_words(TestSetKind::PandaLm170);
        let selfi = avg_words(TestSetKind::SelfInstruct252);
        let coach = avg_words(TestSetKind::CoachLm150);
        let vicuna = avg_words(TestSetKind::Vicuna80);
        assert!(panda < coach, "panda {panda} coach {coach}");
        assert!(selfi < vicuna, "selfi {selfi} vicuna {vicuna}");
        assert!(coach < vicuna, "coach {coach} vicuna {vicuna}");
    }

    #[test]
    fn items_are_on_topic() {
        let ts = TestSet::build(TestSetKind::CoachLm150, 9);
        for item in ts.items.iter().take(30) {
            let key = item.topic.phrase.split_whitespace().last().unwrap();
            assert!(
                coachlm_text::normalize::fold_case(&item.reference).contains(key),
                "reference off-topic for {key}"
            );
        }
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_kinds() {
        let a = TestSet::build(TestSetKind::Vicuna80, 4);
        let b = TestSet::build(TestSetKind::Vicuna80, 4);
        assert_eq!(a, b);
        let c = TestSet::build(TestSetKind::Vicuna80, 5);
        assert_ne!(a, c);
    }

    #[test]
    fn names_and_sources_match_paper() {
        assert_eq!(TestSetKind::CoachLm150.name(), "CoachLM150");
        assert_eq!(TestSetKind::PandaLm170.reference_source(), "ChatGPT");
        assert_eq!(TestSetKind::Vicuna80.reference_source(), "Bard");
    }
}
