//! The `(INSTRUCTION, RESPONSE)` data model (Fig 1) and dataset container.

use crate::category::Category;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};
use std::path::Path;

/// One instruction pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstructionPair {
    /// Stable id within its dataset.
    pub id: u64,
    /// The human instruction (any Alpaca-style `input` is folded in).
    pub instruction: String,
    /// The desired response.
    pub response: String,
    /// Task category.
    pub category: Category,
}

impl InstructionPair {
    /// Creates a pair.
    pub fn new(
        id: u64,
        instruction: impl Into<String>,
        response: impl Into<String>,
        category: Category,
    ) -> Self {
        Self {
            id,
            instruction: instruction.into(),
            response: response.into(),
            category,
        }
    }

    /// Word count of the instruction (Table VII's length metric).
    pub fn instruction_words(&self) -> usize {
        coachlm_text::token::word_count(&self.instruction)
    }

    /// Word count of the response.
    pub fn response_words(&self) -> usize {
        coachlm_text::token::word_count(&self.response)
    }
}

/// The JSON row format of the original Alpaca dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct AlpacaRow {
    instruction: String,
    #[serde(default)]
    input: String,
    output: String,
}

/// A dataset of instruction pairs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Dataset name (for reports).
    pub name: String,
    /// The pairs, id-ordered.
    pub pairs: Vec<InstructionPair>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            pairs: Vec::new(),
        }
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates the pairs.
    pub fn iter(&self) -> std::slice::Iter<'_, InstructionPair> {
        self.pairs.iter()
    }

    /// Looks up a pair by id (ids are dense in generated datasets, but this
    /// does not assume so).
    pub fn get(&self, id: u64) -> Option<&InstructionPair> {
        // Fast path: dense ids.
        if let Some(p) = self.pairs.get(id as usize) {
            if p.id == id {
                return Some(p);
            }
        }
        self.pairs.iter().find(|p| p.id == id)
    }

    /// Serialises to the native JSON format.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Deserialises from the native JSON format.
    pub fn from_json(json: &str) -> serde_json::Result<Self> {
        serde_json::from_str(json)
    }

    /// Writes the dataset in the *Alpaca* JSON format
    /// (`[{"instruction","input","output"}]`), the format the paper's
    /// pipeline consumes. Category information is not representable there
    /// and is dropped.
    pub fn write_alpaca_json<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        let rows: Vec<AlpacaRow> = self
            .pairs
            .iter()
            .map(|p| AlpacaRow {
                instruction: p.instruction.clone(),
                input: String::new(),
                output: p.response.clone(),
            })
            .collect();
        let json = serde_json::to_string_pretty(&rows)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        w.write_all(json.as_bytes())
    }

    /// Reads a dataset from the Alpaca JSON format; `input` fields are
    /// folded into the instruction (separated by a newline), matching how
    /// the paper displays pairs in Fig 2. Categories default to category 0.
    pub fn read_alpaca_json<R: BufRead>(name: &str, mut r: R) -> std::io::Result<Self> {
        let mut buf = String::new();
        r.read_to_string(&mut buf)?;
        let rows: Vec<AlpacaRow> = serde_json::from_str(&buf)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        let pairs = rows
            .into_iter()
            .enumerate()
            .map(|(i, row)| {
                let instruction = if row.input.trim().is_empty() {
                    row.instruction
                } else {
                    format!("{}\n{}", row.instruction, row.input)
                };
                InstructionPair::new(i as u64, instruction, row.output, Category(0))
            })
            .collect();
        Ok(Self {
            name: name.to_string(),
            pairs,
        })
    }

    /// Saves the native format to a file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let json = self
            .to_json()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json)
    }

    /// Loads the native format from a file.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        Self::from_json(&json).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

impl<'d> IntoIterator for &'d Dataset {
    type Item = &'d InstructionPair;
    type IntoIter = std::slice::Iter<'d, InstructionPair>;

    fn into_iter(self) -> Self::IntoIter {
        self.pairs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut d = Dataset::new("sample");
        d.pairs.push(InstructionPair::new(
            0,
            "Explain tides",
            "The moon pulls water.",
            Category(3),
        ));
        d.pairs
            .push(InstructionPair::new(1, "Add 2 and 2", "4", Category(13)));
        d
    }

    #[test]
    fn word_counts() {
        let p = InstructionPair::new(
            0,
            "Explain the tides briefly",
            "The moon pulls the water.",
            Category(0),
        );
        assert_eq!(p.instruction_words(), 4);
        assert_eq!(p.response_words(), 5);
    }

    #[test]
    fn native_json_round_trip() {
        let d = sample();
        let json = d.to_json().unwrap();
        let back = Dataset::from_json(&json).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn alpaca_format_round_trip_drops_category() {
        let d = sample();
        let mut buf = Vec::new();
        d.write_alpaca_json(&mut buf).unwrap();
        let back = Dataset::read_alpaca_json("sample", &buf[..]).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.pairs[0].instruction, "Explain tides");
        assert_eq!(back.pairs[0].response, "The moon pulls water.");
        assert_eq!(back.pairs[0].category, Category(0)); // dropped
    }

    #[test]
    fn alpaca_input_field_folds_into_instruction() {
        let json = r#"[{"instruction":"Summarize this","input":"A long text.","output":"Short."}]"#;
        let d = Dataset::read_alpaca_json("x", json.as_bytes()).unwrap();
        assert_eq!(d.pairs[0].instruction, "Summarize this\nA long text.");
    }

    #[test]
    fn get_by_id_dense_and_sparse() {
        let mut d = sample();
        assert_eq!(d.get(1).unwrap().response, "4");
        d.pairs[1].id = 77;
        assert_eq!(d.get(77).unwrap().response, "4");
        assert!(d.get(1).is_none());
    }

    #[test]
    fn malformed_alpaca_json_is_an_error() {
        assert!(Dataset::read_alpaca_json("x", "not json".as_bytes()).is_err());
        assert!(Dataset::read_alpaca_json("x", r#"{"a":1}"#.as_bytes()).is_err());
    }

    #[test]
    fn save_load_round_trip() {
        let d = sample();
        let dir = std::env::temp_dir().join("coachlm_pair_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        d.save(&path).unwrap();
        assert_eq!(Dataset::load(&path).unwrap(), d);
        std::fs::remove_dir_all(&dir).ok();
    }
}
