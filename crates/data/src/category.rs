//! The task taxonomy.
//!
//! §II-E2 groups instruction pairs into three classes by revision
//! difficulty: *language tasks* (certain, objective answers), *Q&A*
//! (open-ended, subjective), and *creative composition*. §II-G identifies
//! 42 distinct instruction categories for the CoachLM150 test set. We define
//! all 42, each mapped to a class, with flags the experiments need (e.g.
//! code-related categories, which AlpaGasus under-serves per §II-A(3)).

use serde::{Deserialize, Serialize};

/// The paper's three revision-difficulty classes (§II-E2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TaskClass {
    /// Language tasks with mostly certain, objective answers (extraction,
    /// grammar correction, summarising). Revised by the 9.4-year unit.
    LanguageTask,
    /// Question answering: open dialogue, suggestions, in-domain Q&A.
    /// Revised by the 11.2-year unit.
    QA,
    /// Creative composition: stories, copywriting. Revised by the
    /// 13.1-year unit.
    Creative,
}

impl TaskClass {
    /// All classes in difficulty order.
    pub const ALL: [TaskClass; 3] = [TaskClass::LanguageTask, TaskClass::QA, TaskClass::Creative];

    /// Average years of experience of the expert unit assigned to this
    /// class (§II-E2).
    pub fn expert_years(self) -> f64 {
        match self {
            TaskClass::LanguageTask => 9.4,
            TaskClass::QA => 11.2,
            TaskClass::Creative => 13.1,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TaskClass::LanguageTask => "language task",
            TaskClass::QA => "Q&A",
            TaskClass::Creative => "creative composition",
        }
    }
}

/// A static category definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CategoryDef {
    /// Stable category id (index into [`CATEGORIES`]).
    pub id: u16,
    /// Human-readable name.
    pub name: &'static str,
    /// Revision-difficulty class.
    pub class: TaskClass,
    /// Whether this category is code-related (AlpaGasus filters these
    /// heavily, §II-A(3)).
    pub code_related: bool,
    /// Relative frequency weight in the generated ALPACA52K stand-in.
    pub weight: u32,
}

macro_rules! categories {
    ($(($name:literal, $class:ident, $code:literal, $w:literal)),+ $(,)?) => {{
        let mut id: u16 = 0;
        [$({
            let def = CategoryDef {
                id,
                name: $name,
                class: TaskClass::$class,
                code_related: $code,
                weight: $w,
            };
            #[allow(unused_assignments)]
            { id += 1; }
            def
        }),+]
    }};
}

/// The 42 instruction categories (§II-G), each with its class and weight.
pub const CATEGORIES: [CategoryDef; 42] = categories![
    // -- Language tasks (objective) --
    ("information extraction", LanguageTask, false, 30),
    ("grammar correction", LanguageTask, false, 28),
    ("summarization", LanguageTask, false, 32),
    ("paraphrasing", LanguageTask, false, 26),
    ("translation", LanguageTask, false, 20),
    ("text classification", LanguageTask, false, 22),
    ("sentiment analysis", LanguageTask, false, 18),
    ("keyword extraction", LanguageTask, false, 16),
    ("title generation", LanguageTask, false, 18),
    ("data formatting", LanguageTask, true, 14),
    ("code explanation", LanguageTask, true, 16),
    ("code generation", LanguageTask, true, 20),
    ("code debugging", LanguageTask, true, 12),
    ("arithmetic calculation", LanguageTask, false, 22),
    ("unit conversion", LanguageTask, false, 12),
    ("ordering and ranking", LanguageTask, false, 12),
    ("fact verification", LanguageTask, false, 14),
    ("table interpretation", LanguageTask, false, 10),
    // -- Q&A (subjective) --
    ("in-domain question answering", QA, false, 34),
    ("open question answering", QA, false, 30),
    ("scientific inference", QA, false, 22),
    ("dialogue completion", QA, false, 22),
    ("suggestion recommendation", QA, false, 26),
    ("how-to guidance", QA, false, 24),
    ("comparison analysis", QA, false, 18),
    ("opinion explanation", QA, false, 16),
    ("health and lifestyle advice", QA, false, 16),
    ("travel planning", QA, false, 14),
    ("career advice", QA, false, 14),
    ("study planning", QA, false, 12),
    ("product description", QA, false, 12),
    ("event planning", QA, false, 10),
    ("troubleshooting help", QA, true, 12),
    ("concept definition", QA, false, 20),
    // -- Creative composition --
    ("story creation", Creative, false, 22),
    ("copywriting", Creative, false, 18),
    ("poem composition", Creative, false, 14),
    ("brainstorming", Creative, false, 22),
    ("role play", Creative, false, 14),
    ("letter and email writing", Creative, false, 16),
    ("slogan creation", Creative, false, 10),
    ("joke and riddle writing", Creative, false, 8),
];

/// A category reference: a validated index into [`CATEGORIES`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Category(pub u16);

impl Category {
    /// The static definition.
    pub fn def(self) -> &'static CategoryDef {
        &CATEGORIES[self.0 as usize]
    }

    /// Category name.
    pub fn name(self) -> &'static str {
        self.def().name
    }

    /// Revision class.
    pub fn class(self) -> TaskClass {
        self.def().class
    }

    /// Whether code-related.
    pub fn is_code(self) -> bool {
        self.def().code_related
    }

    /// Looks a category up by name.
    pub fn by_name(name: &str) -> Option<Category> {
        CATEGORIES
            .iter()
            .find(|c| c.name == name)
            .map(|c| Category(c.id))
    }

    /// All categories.
    pub fn all() -> impl Iterator<Item = Category> {
        (0..CATEGORIES.len() as u16).map(Category)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_42_categories() {
        assert_eq!(CATEGORIES.len(), 42);
    }

    #[test]
    fn ids_are_dense_and_consistent() {
        for (i, c) in CATEGORIES.iter().enumerate() {
            assert_eq!(c.id as usize, i);
            assert_eq!(Category(c.id).name(), c.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in &CATEGORIES {
            assert!(seen.insert(c.name), "duplicate category {}", c.name);
        }
    }

    #[test]
    fn all_classes_represented() {
        for class in TaskClass::ALL {
            assert!(CATEGORIES.iter().any(|c| c.class == class));
        }
    }

    #[test]
    fn code_categories_exist() {
        let n = CATEGORIES.iter().filter(|c| c.code_related).count();
        assert!(
            n >= 3,
            "need several code categories for the AlpaGasus effect"
        );
    }

    #[test]
    fn by_name_round_trips() {
        assert_eq!(
            Category::by_name("summarization").unwrap().name(),
            "summarization"
        );
        assert!(Category::by_name("nonexistent").is_none());
    }

    #[test]
    fn expert_years_match_paper() {
        assert_eq!(TaskClass::LanguageTask.expert_years(), 9.4);
        assert_eq!(TaskClass::QA.expert_years(), 11.2);
        assert_eq!(TaskClass::Creative.expert_years(), 13.1);
    }

    #[test]
    fn weights_positive() {
        for c in &CATEGORIES {
            assert!(c.weight > 0);
        }
    }
}
