//! The topic bank.
//!
//! Every generated instruction pair is *about* something, so that relevance
//! (lexical overlap), factuality (the shared fact table), and richness are
//! detectable properties of the text rather than hidden labels. A topic is
//! a noun phrase plus a domain; response bodies are composed from
//! domain-appropriate sentence templates instantiated with the topic.

use rand::Rng;
use serde::Serialize;

/// The knowledge domain of a topic (selects sentence templates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Domain {
    /// Natural science and technology.
    Science,
    /// History, society, geography.
    Society,
    /// Daily life, health, lifestyle.
    Daily,
    /// Programming and software.
    Code,
    /// Mathematics and quantitative reasoning.
    Math,
    /// Arts and creative writing.
    Creative,
}

/// A topic: a noun phrase and its domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Topic {
    /// The noun phrase, lowercase, article-free (e.g. "the water cycle").
    pub phrase: &'static str,
    /// Domain for template selection.
    pub domain: Domain,
}

/// The topic bank.
pub const TOPICS: &[Topic] = &[
    Topic {
        phrase: "the water cycle",
        domain: Domain::Science,
    },
    Topic {
        phrase: "photosynthesis",
        domain: Domain::Science,
    },
    Topic {
        phrase: "gravity",
        domain: Domain::Science,
    },
    Topic {
        phrase: "renewable energy",
        domain: Domain::Science,
    },
    Topic {
        phrase: "the solar system",
        domain: Domain::Science,
    },
    Topic {
        phrase: "volcanoes",
        domain: Domain::Science,
    },
    Topic {
        phrase: "ocean currents",
        domain: Domain::Science,
    },
    Topic {
        phrase: "vaccines",
        domain: Domain::Science,
    },
    Topic {
        phrase: "magnetism",
        domain: Domain::Science,
    },
    Topic {
        phrase: "ecosystems",
        domain: Domain::Science,
    },
    Topic {
        phrase: "the human heart",
        domain: Domain::Science,
    },
    Topic {
        phrase: "climate patterns",
        domain: Domain::Science,
    },
    Topic {
        phrase: "the printing press",
        domain: Domain::Society,
    },
    Topic {
        phrase: "the silk road",
        domain: Domain::Society,
    },
    Topic {
        phrase: "ancient rome",
        domain: Domain::Society,
    },
    Topic {
        phrase: "the industrial revolution",
        domain: Domain::Society,
    },
    Topic {
        phrase: "democracy",
        domain: Domain::Society,
    },
    Topic {
        phrase: "urban planning",
        domain: Domain::Society,
    },
    Topic {
        phrase: "the great wall of china",
        domain: Domain::Society,
    },
    Topic {
        phrase: "supply and demand",
        domain: Domain::Society,
    },
    Topic {
        phrase: "public libraries",
        domain: Domain::Society,
    },
    Topic {
        phrase: "world trade",
        domain: Domain::Society,
    },
    Topic {
        phrase: "healthy breakfast habits",
        domain: Domain::Daily,
    },
    Topic {
        phrase: "indoor plants",
        domain: Domain::Daily,
    },
    Topic {
        phrase: "time management",
        domain: Domain::Daily,
    },
    Topic {
        phrase: "bicycle maintenance",
        domain: Domain::Daily,
    },
    Topic {
        phrase: "meal planning",
        domain: Domain::Daily,
    },
    Topic {
        phrase: "home recycling",
        domain: Domain::Daily,
    },
    Topic {
        phrase: "morning exercise",
        domain: Domain::Daily,
    },
    Topic {
        phrase: "budget travel",
        domain: Domain::Daily,
    },
    Topic {
        phrase: "job interviews",
        domain: Domain::Daily,
    },
    Topic {
        phrase: "studying for exams",
        domain: Domain::Daily,
    },
    Topic {
        phrase: "houseplant watering",
        domain: Domain::Daily,
    },
    Topic {
        phrase: "neighborhood gardens",
        domain: Domain::Daily,
    },
    Topic {
        phrase: "sorting algorithms",
        domain: Domain::Code,
    },
    Topic {
        phrase: "hash tables",
        domain: Domain::Code,
    },
    Topic {
        phrase: "recursion",
        domain: Domain::Code,
    },
    Topic {
        phrase: "unit testing",
        domain: Domain::Code,
    },
    Topic {
        phrase: "version control",
        domain: Domain::Code,
    },
    Topic {
        phrase: "binary search",
        domain: Domain::Code,
    },
    Topic {
        phrase: "loops and iteration",
        domain: Domain::Code,
    },
    Topic {
        phrase: "error handling",
        domain: Domain::Code,
    },
    Topic {
        phrase: "fractions",
        domain: Domain::Math,
    },
    Topic {
        phrase: "percentages",
        domain: Domain::Math,
    },
    Topic {
        phrase: "compound interest",
        domain: Domain::Math,
    },
    Topic {
        phrase: "prime numbers",
        domain: Domain::Math,
    },
    Topic {
        phrase: "basic geometry",
        domain: Domain::Math,
    },
    Topic {
        phrase: "probability",
        domain: Domain::Math,
    },
    Topic {
        phrase: "a lighthouse keeper",
        domain: Domain::Creative,
    },
    Topic {
        phrase: "a friendly dragon",
        domain: Domain::Creative,
    },
    Topic {
        phrase: "a rainy market day",
        domain: Domain::Creative,
    },
    Topic {
        phrase: "an old sailing ship",
        domain: Domain::Creative,
    },
    Topic {
        phrase: "a mountain village",
        domain: Domain::Creative,
    },
    Topic {
        phrase: "a midnight library",
        domain: Domain::Creative,
    },
    Topic {
        phrase: "a robot learning to paint",
        domain: Domain::Creative,
    },
    Topic {
        phrase: "a garden in autumn",
        domain: Domain::Creative,
    },
];

/// Body-sentence templates per domain; `{}` is the topic slot. Each
/// template mentions the topic so generated responses are lexically
/// on-topic.
pub fn body_templates(domain: Domain) -> &'static [&'static str] {
    match domain {
        Domain::Science => &[
            "{} is a natural process studied across many scientific fields.",
            "Researchers describe {} in terms of energy, matter, and change over time.",
            "Understanding {} helps explain patterns we observe in nature.",
            "Experiments on {} rely on careful measurement and repeatable methods.",
            "{} interacts with many other systems in the environment.",
        ],
        Domain::Society => &[
            "{} shaped how communities organized themselves over time.",
            "Historians trace the influence of {} through documents and artifacts.",
            "{} affected trade, culture, and everyday life in lasting ways.",
            "Scholars still debate the most important consequences of {}.",
            "The story of {} connects local events to global change.",
        ],
        Domain::Daily => &[
            "{} becomes much easier with a simple routine.",
            "Small consistent steps make {} sustainable over the long run.",
            "Most people improve at {} by starting with one manageable change.",
            "Practical tools and reminders support {} in a busy schedule.",
            "{} saves time and reduces stress when planned ahead.",
        ],
        Domain::Code => &[
            "{} is a fundamental technique in software development.",
            "Programmers use {} to keep code correct and maintainable.",
            "A small worked example makes {} much easier to understand.",
            "{} trades simplicity for performance in predictable ways.",
            "Common pitfalls around {} are easy to avoid once named.",
        ],
        Domain::Math => &[
            "{} follows clear rules that apply in every case.",
            "Working with {} starts by writing down what is known.",
            "A quick example shows how {} behaves with small numbers.",
            "{} appears in everyday situations like shopping and cooking.",
            "Checking the result is an important habit when using {}.",
        ],
        Domain::Creative => &[
            "{} invites the reader into a vivid scene.",
            "Details of sound and light bring {} to life on the page.",
            "The mood around {} shifts as the story unfolds.",
            "A small surprise involving {} keeps the reader curious.",
            "{} carries the theme of the piece from start to finish.",
        ],
    }
}

/// Reasoning add-on templates (give responses detectable depth).
pub const REASONING_TEMPLATES: &[&str] = &[
    "This matters because {} influences the final outcome step by step.",
    "First consider the basics, then build up: {} rewards a gradual approach.",
    "For example, a beginner can explore {} with a five-minute exercise.",
    "In summary, the key ideas above cover {} from several angles.",
    "As a result, paying attention to {} leads to better decisions.",
];

/// Warm closer templates.
pub const WARM_TEMPLATES: &[&str] = &[
    "I hope this overview of {} helps; feel free to ask for more detail.",
    "Great question about {} - happy to expand on any part.",
    "Thank you for asking about {}; let me know if an example would help.",
];

/// Picks a seeded random topic.
pub fn pick_topic<R: Rng>(rng: &mut R) -> Topic {
    TOPICS[rng.gen_range(0..TOPICS.len())]
}

/// Picks a seeded random topic from a domain.
pub fn pick_topic_in<R: Rng>(rng: &mut R, domain: Domain) -> Topic {
    let pool: Vec<&Topic> = TOPICS.iter().filter(|t| t.domain == domain).collect();
    *pool[rng.gen_range(0..pool.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bank_is_reasonably_sized() {
        assert!(TOPICS.len() >= 50);
    }

    #[test]
    fn phrases_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for t in TOPICS {
            assert!(seen.insert(t.phrase), "duplicate topic {}", t.phrase);
        }
    }

    #[test]
    fn every_domain_has_topics_and_templates() {
        for d in [
            Domain::Science,
            Domain::Society,
            Domain::Daily,
            Domain::Code,
            Domain::Math,
            Domain::Creative,
        ] {
            assert!(TOPICS.iter().any(|t| t.domain == d), "{d:?} has no topics");
            assert!(!body_templates(d).is_empty());
        }
    }

    #[test]
    fn templates_mention_topic_slot() {
        for d in [Domain::Science, Domain::Code, Domain::Creative] {
            for t in body_templates(d) {
                assert!(t.contains("{}"), "template missing slot: {t}");
            }
        }
    }

    #[test]
    fn pick_topic_is_seed_deterministic() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        assert_eq!(pick_topic(&mut a).phrase, pick_topic(&mut b).phrase);
    }

    #[test]
    fn pick_topic_in_respects_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            assert_eq!(pick_topic_in(&mut rng, Domain::Code).domain, Domain::Code);
        }
    }
}
