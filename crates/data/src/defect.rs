//! The defect taxonomy and textual injectors.
//!
//! Every deficiency the paper's experts found (Tables II–IV) is modelled as
//! a *textual* transformation: injection plants real surface forms that the
//! criteria engine can later detect and the revision models can repair. No
//! component downstream of the generator reads defect labels — the labels
//! exist only as provenance for calibration tests.

use coachlm_text::lexicon;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Where a defect manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DefectSide {
    /// Revisable, on the instruction text.
    Instruction,
    /// Revisable, on the response text.
    Response,
    /// Grounds for preliminary filtering (Table III), on the pair.
    Filter,
}

/// A quality defect that can be planted in an instruction pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Defect {
    /// Misspellings/grammar errors in the instruction (Readability).
    InstructionTypos,
    /// Sloppy layout in the instruction: casing, spacing (Readability).
    InstructionLayout,
    /// Vague, ambiguous instruction (Feasibility).
    VagueInstruction,
    /// Logically infeasible requirement (Feasibility).
    InfeasibleInstruction,
    /// Misspellings/grammar errors in the response (Readability).
    ResponseTypos,
    /// Sloppy layout in the response (Readability).
    ResponseLayout,
    /// Response cut off mid-thought (Comprehensiveness).
    TruncatedResponse,
    /// Response about a different topic (Relevance).
    IrrelevantResponse,
    /// Bare, unexplained response (Comprehensiveness/Richness).
    BareResponse,
    /// Factual corruption in the response (Correctness).
    FactError,
    /// Unsafe advice in the response (Safety — revisable, Table IV "1.9%").
    UnsafeResponse,
    /// Robotic boilerplate tone (Humanization).
    MachineTone,
    /// Invalid characters / template leakage (the Alpaca-cleaned class).
    FormatJunk,
    /// Key input content missing or placeholder (Table III, 41.7%).
    InvalidInput,
    /// Overly professional scene (Table III, 27.7%).
    BeyondExpertise,
    /// Massive creative rewriting workload (Table III, 8.2%).
    MassiveWorkload,
    /// Unsupported multimodal content (Table III, 6.5%).
    MultiModal,
    /// Overly toxic/sensitive request (Table III "Safety", 15.9%).
    ToxicRequest,
}

impl Defect {
    /// Which side the defect lives on.
    pub fn side(self) -> DefectSide {
        use Defect::*;
        match self {
            InstructionTypos | InstructionLayout | VagueInstruction | InfeasibleInstruction => {
                DefectSide::Instruction
            }
            ResponseTypos | ResponseLayout | TruncatedResponse | IrrelevantResponse
            | BareResponse | FactError | UnsafeResponse | MachineTone | FormatJunk => {
                DefectSide::Response
            }
            InvalidInput | BeyondExpertise | MassiveWorkload | MultiModal | ToxicRequest => {
                DefectSide::Filter
            }
        }
    }

    /// All revisable defects.
    pub fn revisable() -> impl Iterator<Item = Defect> {
        use Defect::*;
        [
            InstructionTypos,
            InstructionLayout,
            VagueInstruction,
            InfeasibleInstruction,
            ResponseTypos,
            ResponseLayout,
            TruncatedResponse,
            IrrelevantResponse,
            BareResponse,
            FactError,
            UnsafeResponse,
            MachineTone,
            FormatJunk,
        ]
        .into_iter()
    }

    /// Applies this defect to `(instruction, response)` in place.
    pub fn inject<R: Rng>(self, rng: &mut R, instruction: &mut String, response: &mut String) {
        match self {
            Defect::InstructionTypos => inject_typos(rng, instruction),
            Defect::InstructionLayout => inject_layout_noise(rng, instruction),
            Defect::VagueInstruction => {
                let vague = lexicon::VAGUE_PHRASES[rng.gen_range(0..lexicon::VAGUE_PHRASES.len())];
                // Keep the topic words so a clarifying rewrite is possible.
                *instruction = format!("{} - {vague}", instruction.trim_end_matches('.'));
            }
            Defect::InfeasibleInstruction => {
                let inf = lexicon::INFEASIBLE_PHRASES
                    [rng.gen_range(0..lexicon::INFEASIBLE_PHRASES.len())];
                *instruction = format!("{} {inf}", instruction.trim_end_matches('.'));
            }
            Defect::ResponseTypos => inject_typos(rng, response),
            Defect::ResponseLayout => inject_layout_noise(rng, response),
            Defect::TruncatedResponse => {
                let words: Vec<&str> = response.split_whitespace().collect();
                if words.len() > 6 {
                    let keep = words.len() * 55 / 100;
                    let mut cut = words[..keep.max(4)].join(" ");
                    if rng.gen_bool(0.5) {
                        cut.push_str("...");
                    }
                    *response = cut;
                }
            }
            Defect::IrrelevantResponse => {
                // Replace with prose about a different topic.
                let topic = crate::topics::pick_topic(rng);
                let templates = crate::topics::body_templates(topic.domain);
                let t = templates[rng.gen_range(0..templates.len())];
                *response = capitalize(&t.replace("{}", topic.phrase));
            }
            Defect::BareResponse => {
                // Keep only the first sentence: a correct but thin answer.
                let sents = coachlm_text::token::sentences(response);
                if let Some(first) = sents.first() {
                    *response = (*first).to_string();
                }
            }
            Defect::FactError => {
                let (subject, _, wrong) =
                    lexicon::FACT_TABLE[rng.gen_range(0..lexicon::FACT_TABLE.len())];
                response.push_str(&format!(" Remember that {subject} {wrong}."));
            }
            Defect::UnsafeResponse => {
                let m = lexicon::UNSAFE_MARKERS[rng.gen_range(0..lexicon::UNSAFE_MARKERS.len())];
                response.push_str(&format!(" Also, {m}."));
            }
            Defect::MachineTone => {
                *response = format!("As an AI language model, {}", lowercase_first(response));
            }
            Defect::FormatJunk => match rng.gen_range(0..3) {
                0 => *response = format!("### Response: {response}"),
                1 => {
                    let pos = response.len() / 2;
                    let pos = (0..=pos)
                        .rev()
                        .find(|&i| response.is_char_boundary(i))
                        .unwrap_or(0);
                    response.insert(pos, '\u{0}');
                }
                _ => {
                    let tail: String = response
                        .split_whitespace()
                        .take(3)
                        .collect::<Vec<_>>()
                        .join(" ");
                    response.push_str(&format!(" {}", format!("{tail} ").repeat(5).trim_end()));
                }
            },
            Defect::InvalidInput => {
                let m = lexicon::INVALID_INPUT_MARKERS
                    [rng.gen_range(0..lexicon::INVALID_INPUT_MARKERS.len())];
                instruction.push_str(&format!(" Input: {m}"));
            }
            Defect::BeyondExpertise => {
                let m =
                    lexicon::EXPERTISE_MARKERS[rng.gen_range(0..lexicon::EXPERTISE_MARKERS.len())];
                *instruction = format!("Provide the {m} the following piece requires.");
            }
            Defect::MassiveWorkload => {
                let m =
                    lexicon::WORKLOAD_MARKERS[rng.gen_range(0..lexicon::WORKLOAD_MARKERS.len())];
                *instruction = format!("Please {m} keeping every rhyme intact.");
            }
            Defect::MultiModal => {
                let m = lexicon::MULTIMODAL_MARKERS
                    [rng.gen_range(0..lexicon::MULTIMODAL_MARKERS.len())];
                instruction.push_str(&format!(" Input: {m} a grocery store)."));
            }
            Defect::ToxicRequest => {
                let m = lexicon::UNSAFE_MARKERS[rng.gen_range(0..lexicon::UNSAFE_MARKERS.len())];
                *instruction = format!("Explain {m} in detail.");
            }
        }
    }
}

/// Corrupts 1–3 correct word forms into their misspelled variants; falls
/// back to appending a misspelled tail when no corruptible word is present.
fn inject_typos<R: Rng>(rng: &mut R, text: &mut String) {
    let mut corrupted = 0usize;
    let budget = rng.gen_range(1..=3);
    for (wrong, right) in lexicon::TYPO_PAIRS {
        if corrupted >= budget {
            break;
        }
        // Word-boundary-ish replacement of the first occurrence.
        if let Some(pos) = find_word(text, right) {
            text.replace_range(pos..pos + right.len(), wrong);
            corrupted += 1;
        }
    }
    if corrupted == 0 {
        text.push_str(" This is teh case becuase of the details above.");
    }
}

/// Finds `word` in `text` at word boundaries (case-sensitive, lowercase
/// occurrences only — sentence-initial capitals stay intact so the layout
/// detector has its own signal).
fn find_word(text: &str, word: &str) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut start = 0usize;
    while let Some(rel) = text[start..].find(word) {
        let pos = start + rel;
        let before_ok = pos == 0 || !bytes[pos - 1].is_ascii_alphanumeric();
        let end = pos + word.len();
        let after_ok = end >= text.len() || !bytes[end].is_ascii_alphanumeric();
        if before_ok && after_ok {
            return Some(pos);
        }
        start = pos + word.len();
    }
    None
}

/// Sloppy layout: doubled spaces, space before punctuation, lowercased
/// sentence start, dropped terminal period.
fn inject_layout_noise<R: Rng>(rng: &mut R, text: &mut String) {
    let mut t = text.clone();
    if rng.gen_bool(0.7) {
        if let Some(pos) = t.find(' ') {
            t.replace_range(pos..pos + 1, "   ");
        }
    }
    if rng.gen_bool(0.6) {
        if let Some(pos) = t.find(['.', ',']) {
            t.insert(pos, ' ');
        }
    }
    if rng.gen_bool(0.6) {
        t = lowercase_first(&t);
    }
    if rng.gen_bool(0.5) && t.ends_with('.') {
        t.pop();
    }
    *text = t;
}

fn lowercase_first(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_lowercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn base() -> (String, String) {
        (
            "Explain the water cycle because students ask about it.".to_string(),
            "The water cycle moves water through evaporation, clouds, and rain. \
             This happens because the sun heats the oceans."
                .to_string(),
        )
    }

    #[test]
    fn sides_partition_the_taxonomy() {
        let mut counts = std::collections::HashMap::new();
        for d in [
            Defect::InstructionTypos,
            Defect::ResponseTypos,
            Defect::InvalidInput,
            Defect::UnsafeResponse,
            Defect::ToxicRequest,
        ] {
            *counts.entry(d.side()).or_insert(0) += 1;
        }
        assert_eq!(counts[&DefectSide::Instruction], 1);
        assert_eq!(counts[&DefectSide::Response], 2);
        assert_eq!(counts[&DefectSide::Filter], 2);
    }

    #[test]
    fn typo_injection_plants_detectable_forms() {
        let mut rng = StdRng::seed_from_u64(1);
        let (mut i, mut r) = base();
        Defect::InstructionTypos.inject(&mut rng, &mut i, &mut r);
        let has_typo = lexicon::TYPO_PAIRS
            .iter()
            .any(|(wrong, _)| i.contains(wrong));
        assert!(has_typo, "no typo planted in: {i}");
    }

    #[test]
    fn typo_injection_falls_back_when_nothing_corruptible() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut i = "Add 2 and 3".to_string();
        let mut r = String::new();
        Defect::InstructionTypos.inject(&mut rng, &mut i, &mut r);
        assert!(i.contains("teh") || i.contains("becuase"), "{i}");
    }

    #[test]
    fn vague_injection_keeps_topic_words() {
        let mut rng = StdRng::seed_from_u64(3);
        let (mut i, mut r) = base();
        Defect::VagueInstruction.inject(&mut rng, &mut i, &mut r);
        assert!(lexicon::contains_marker(&i, lexicon::VAGUE_PHRASES));
        assert!(i.to_lowercase().contains("water cycle"));
    }

    #[test]
    fn truncation_shortens_and_marks() {
        let mut rng = StdRng::seed_from_u64(4);
        let (mut i, mut r) = base();
        let before = r.split_whitespace().count();
        Defect::TruncatedResponse.inject(&mut rng, &mut i, &mut r);
        assert!(r.split_whitespace().count() < before);
    }

    #[test]
    fn irrelevant_replacement_changes_topic() {
        let mut rng = StdRng::seed_from_u64(5);
        let (mut i, mut r) = base();
        Defect::IrrelevantResponse.inject(&mut rng, &mut i, &mut r);
        let overlap = lexicon::content_overlap(&i, &r);
        assert!(overlap < 0.35, "overlap {overlap}: {r}");
    }

    #[test]
    fn bare_keeps_only_first_sentence() {
        let mut rng = StdRng::seed_from_u64(6);
        let (mut i, mut r) = base();
        Defect::BareResponse.inject(&mut rng, &mut i, &mut r);
        assert_eq!(coachlm_text::token::sentences(&r).len(), 1);
    }

    #[test]
    fn fact_error_plants_contradiction() {
        let mut rng = StdRng::seed_from_u64(7);
        let (mut i, mut r) = base();
        Defect::FactError.inject(&mut rng, &mut i, &mut r);
        let planted = lexicon::FACT_TABLE
            .iter()
            .any(|(s, _, w)| r.contains(s) && r.contains(w));
        assert!(planted, "{r}");
    }

    #[test]
    fn unsafe_and_toxic_plant_markers() {
        let mut rng = StdRng::seed_from_u64(8);
        let (mut i, mut r) = base();
        Defect::UnsafeResponse.inject(&mut rng, &mut i, &mut r);
        assert!(lexicon::contains_marker(&r, lexicon::UNSAFE_MARKERS));
        let (mut i2, mut r2) = base();
        Defect::ToxicRequest.inject(&mut rng, &mut i2, &mut r2);
        assert!(lexicon::contains_marker(&i2, lexicon::UNSAFE_MARKERS));
    }

    #[test]
    fn machine_tone_prepends_boilerplate() {
        let mut rng = StdRng::seed_from_u64(9);
        let (mut i, mut r) = base();
        Defect::MachineTone.inject(&mut rng, &mut i, &mut r);
        assert!(lexicon::contains_marker(&r, lexicon::MACHINE_TONE_MARKERS));
    }

    #[test]
    fn format_junk_variants_are_detectable() {
        for seed in 0..12u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (mut i, mut r) = base();
            Defect::FormatJunk.inject(&mut rng, &mut i, &mut r);
            let cleaned = coachlm_text::clean::clean_output(&r);
            let leak = matches!(
                coachlm_text::clean::validate_pair(&i, &r),
                coachlm_text::clean::Validity::TemplateLeak
            );
            assert!(leak || cleaned != r, "undetectable junk: {r:?}");
        }
    }

    #[test]
    fn filter_defects_plant_table3_markers() {
        let mut rng = StdRng::seed_from_u64(10);
        let cases = [
            (Defect::InvalidInput, lexicon::INVALID_INPUT_MARKERS),
            (Defect::BeyondExpertise, lexicon::EXPERTISE_MARKERS),
            (Defect::MassiveWorkload, lexicon::WORKLOAD_MARKERS),
            (Defect::MultiModal, lexicon::MULTIMODAL_MARKERS),
        ];
        for (d, markers) in cases {
            let (mut i, mut r) = base();
            d.inject(&mut rng, &mut i, &mut r);
            assert!(lexicon::contains_marker(&i, markers), "{d:?}: {i}");
        }
    }

    #[test]
    fn layout_noise_is_normalisable() {
        let mut any_changed = false;
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (mut i, mut r) = base();
            let orig = i.clone();
            Defect::InstructionLayout.inject(&mut rng, &mut i, &mut r);
            if i != orig {
                any_changed = true;
                let normalized = coachlm_text::normalize::normalize_layout(&i);
                assert_ne!(normalized, i, "layout noise survived normalisation");
            }
        }
        assert!(any_changed);
    }
}
