//! The seeded ALPACA52K-like dataset generator.
//!
//! The real ALPACA52K (52 002 pairs distilled from GPT-3.5) is not available
//! offline; this generator synthesises a stand-in whose *quality structure*
//! matches what the paper measured:
//!
//! * ~18.1 % of pairs have a Table III filtering-grade problem (1088/6000),
//!   mixed 41.7/27.7/8.2/6.5/15.9 across the five reasons;
//! * of the rest, 46.8 % carry at least one revisable deficiency
//!   (2301/4912, §II-E2), with the response-defect mix of Table IV and an
//!   instruction-side defect on 46.9 % of deficient pairs (1079/2301);
//! * ~17.7 % of all pairs are genuinely high quality (the share ChatGPT
//!   rates above 4.5 in Fig 4);
//! * average lengths land near Table VII's 17.7 (instruction) and 43.9
//!   (response) words.
//!
//! Defects are *textual* (see [`crate::defect`]); the provenance labels
//! returned alongside the dataset exist only for calibration tests and are
//! never consulted by judges or revision models.

use crate::category::{Category, CategoryDef, TaskClass, CATEGORIES};
use crate::compose::{compose_response, ComposeSpec};
use crate::defect::Defect;
use crate::pair::{Dataset, InstructionPair};
use crate::topics::{pick_topic_in, Domain, Topic};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Quality tier assigned at generation time (provenance only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Tier {
    /// Carries a Table III filtering-grade problem.
    Filterable,
    /// High quality: rich, reasoned, warm (the Fig 4 ">4.5" share).
    Rich,
    /// Serviceable but unremarkable.
    Adequate,
    /// Carries one or more revisable defects.
    Deficient,
}

/// Per-pair generation provenance (for calibration tests only).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Provenance {
    /// Pair id.
    pub id: u64,
    /// Assigned tier.
    pub tier: Tier,
    /// Defects injected (empty for Rich/Adequate).
    pub defects: Vec<Defect>,
}

/// Generator configuration; defaults reproduce the paper's measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Dataset name.
    pub name: String,
    /// Number of pairs (paper: 52 002; the "52k" dataset).
    pub size: usize,
    /// RNG seed.
    pub seed: u64,
    /// Fraction with Table III problems (1088/6000).
    pub filter_fraction: f64,
    /// Fraction of *all* pairs that are rich (Fig 4: 17.7 %).
    pub rich_fraction: f64,
    /// Fraction of non-filterable pairs with revisable deficiencies
    /// (2301/4912 = 46.8 %).
    pub deficient_fraction: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            name: "ALPACA52K-synth".to_string(),
            size: 52_002,
            seed: 0x5EED_C0AC,
            filter_fraction: 1088.0 / 6000.0,
            rich_fraction: 0.177,
            deficient_fraction: 2301.0 / 4912.0,
        }
    }
}

impl GeneratorConfig {
    /// A small config for tests: `n` pairs, same distributions.
    pub fn small(n: usize, seed: u64) -> Self {
        Self {
            size: n,
            seed,
            name: format!("synth-{n}"),
            ..Self::default()
        }
    }
}

/// Table III reason mix among filterable pairs.
const FILTER_MIX: [(Defect, f64); 5] = [
    (Defect::InvalidInput, 0.417),
    (Defect::BeyondExpertise, 0.277),
    (Defect::MassiveWorkload, 0.082),
    (Defect::MultiModal, 0.065),
    (Defect::ToxicRequest, 0.159),
];

/// Response-defect mix among *non-polished* deficient pairs. Calibrated so
/// that, combined with the polished subtier's minor defects, the expert
/// revision engine's Table IV categories land on the paper's ratios
/// (43.7 / 24.5 / 23.3 / 6.7 / 1.9).
const RESPONSE_DEFECT_MIX: [(Defect, f64); 8] = [
    (Defect::BareResponse, 0.650),
    (Defect::IrrelevantResponse, 0.090),
    (Defect::ResponseTypos, 0.063),
    (Defect::ResponseLayout, 0.050),
    (Defect::MachineTone, 0.047),
    (Defect::FactError, 0.074),
    (Defect::UnsafeResponse, 0.018),
    (Defect::FormatJunk, 0.009),
];

/// Instruction-defect mix among non-polished deficient pairs, calibrated
/// (jointly with the polished subtier's typo/layout-only instruction
/// defects and the expert engine's occasional context enrichment) so the
/// Table IV instruction categories land near 68.1 / 24.9 / 7.0.
const INSTRUCTION_DEFECT_MIX: [(Defect, f64); 4] = [
    (Defect::InstructionTypos, 0.38),
    (Defect::InstructionLayout, 0.27),
    (Defect::VagueInstruction, 0.21),
    (Defect::InfeasibleInstruction, 0.14),
];

/// Probability a deficient pair also has an instruction-side defect
/// (1079/2301).
const INSTRUCTION_DEFECT_P: f64 = 1079.0 / 2301.0;

/// Additional truncation share: truncated responses belong to the
/// comprehensiveness class of Table IV; a third of "bare" deficiencies are
/// realised as truncations rather than single-sentence answers.
const TRUNCATION_SHARE_OF_BARE: f64 = 0.33;

/// Share of deficient pairs that are *polished but minorly flawed*: rich
/// content with one surface defect. Their expert revisions are tiny, which
/// is what populates the low-edit-distance tail of `R`.
const POLISHED_DEFICIENT_SHARE: f64 = 0.30;

/// The minor defects a polished pair may carry (weighted).
const MINOR_RESPONSE_DEFECTS: [(Defect, f64); 4] = [
    (Defect::ResponseTypos, 0.40),
    (Defect::ResponseLayout, 0.30),
    (Defect::MachineTone, 0.25),
    (Defect::FactError, 0.05),
];

/// Generates the dataset and its provenance.
pub fn generate(config: &GeneratorConfig) -> (Dataset, Vec<Provenance>) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut dataset = Dataset::new(config.name.clone());
    dataset.pairs.reserve(config.size);
    let mut provenance = Vec::with_capacity(config.size);
    let weights: Vec<u32> = CATEGORIES.iter().map(|c| c.weight).collect();
    let total_weight: u32 = weights.iter().sum();

    for id in 0..config.size as u64 {
        let cat = pick_category(&mut rng, &weights, total_weight);
        let topic = topic_for(&mut rng, cat.def());
        let tier = pick_tier(&mut rng, config);
        let (instruction, response, defects, tier) = build_pair(&mut rng, cat, topic, tier);
        dataset
            .pairs
            .push(InstructionPair::new(id, instruction, response, cat));
        provenance.push(Provenance { id, tier, defects });
    }
    (dataset, provenance)
}

/// Generates the default 52k dataset with the given seed.
pub fn alpaca52k(seed: u64) -> (Dataset, Vec<Provenance>) {
    generate(&GeneratorConfig {
        seed,
        ..GeneratorConfig::default()
    })
}

/// Configuration for [`zipfian_duplicates`]: a duplicate-heavy workload
/// generator for stressing the runtime's revision cache and sharding
/// (PR 7). `total` pairs are drawn over `distinct` base contents with
/// Zipfian popularity — content rank `k` is drawn with weight
/// `1 / (k+1)^exponent` — so a handful of head contents dominate the
/// traffic, as in deduplicated internet-scale instruction dumps.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ZipfianConfig {
    /// Dataset name.
    pub name: String,
    /// Number of distinct base contents.
    pub distinct: usize,
    /// Total pairs emitted (ids `0..total`).
    pub total: usize,
    /// Zipf exponent `s`; `0.0` is uniform, `~1.1` is web-like skew.
    pub exponent: f64,
    /// Fraction of draws perturbed into *near*-duplicates (a couple of
    /// appended words) instead of exact copies — exercises the cache's
    /// bounded-edit-distance tier.
    pub near_fraction: f64,
    /// Compact mode uses cheap templated text (suitable for 10M+ pair
    /// stress runs); otherwise base contents come from the full
    /// ALPACA52K-like generator.
    pub compact: bool,
    /// RNG seed.
    pub seed: u64,
}

impl ZipfianConfig {
    /// A compact config sized for cache/shard stress runs.
    pub fn stress(distinct: usize, total: usize, exponent: f64, seed: u64) -> Self {
        Self {
            name: format!("zipf-{distinct}x{total}-s{exponent}"),
            distinct,
            total,
            exponent,
            near_fraction: 0.0,
            compact: true,
            seed,
        }
    }
}

/// Word suffixes appended to realise near-duplicates. Two words each, so
/// a near-duplicate sits at word edit distance 2 from its base content.
const NEAR_SUFFIXES: [&str; 4] = [
    " please elaborate",
    " with examples",
    " briefly though",
    " for beginners",
];

/// Generates a duplicate-heavy dataset: `total` pairs Zipf-drawn from
/// `distinct` base contents. Duplicates share instruction, response, and
/// category exactly (so content fingerprints collide as a cache expects);
/// ids are fresh and dense (`0..total`).
pub fn zipfian_duplicates(config: &ZipfianConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let distinct = config.distinct.max(1);
    let base: Vec<(String, String, Category)> = if config.compact {
        (0..distinct)
            .map(|k| {
                (
                    format!("Explain concept {k} in plain language."),
                    format!(
                        "Concept {k} combines idea {} with practice {}; start small and iterate.",
                        k % 13,
                        k % 7
                    ),
                    Category((k % CATEGORIES.len()) as u16),
                )
            })
            .collect()
    } else {
        let (d, _) = generate(&GeneratorConfig {
            size: distinct,
            seed: config.seed,
            name: config.name.clone(),
            ..GeneratorConfig::default()
        });
        d.pairs
            .into_iter()
            .map(|p| (p.instruction, p.response, p.category))
            .collect()
    };

    // Cumulative harmonic weights once, then binary-search per draw.
    let mut cumulative = Vec::with_capacity(distinct);
    let mut acc = 0.0f64;
    for k in 0..distinct {
        acc += 1.0 / ((k + 1) as f64).powf(config.exponent);
        cumulative.push(acc);
    }
    let total_weight = acc;

    let mut dataset = Dataset::new(config.name.clone());
    dataset.pairs.reserve(config.total);
    for id in 0..config.total as u64 {
        let u: f64 = rng.gen_range(0.0..total_weight);
        let k = cumulative.partition_point(|&c| c <= u).min(distinct - 1);
        let (instruction, response, cat) = &base[k];
        let mut instruction = instruction.clone();
        if config.near_fraction > 0.0 && rng.gen_bool(config.near_fraction.min(1.0)) {
            instruction.push_str(NEAR_SUFFIXES[rng.gen_range(0..NEAR_SUFFIXES.len())]);
        }
        dataset.pairs.push(InstructionPair::new(
            id,
            instruction,
            response.clone(),
            *cat,
        ));
    }
    dataset
}

fn pick_category<R: Rng>(rng: &mut R, weights: &[u32], total: u32) -> Category {
    let mut pick = rng.gen_range(0..total);
    for (i, w) in weights.iter().enumerate() {
        if pick < *w {
            return Category(i as u16);
        }
        pick -= w;
    }
    Category((weights.len() - 1) as u16)
}

/// Picks a topic whose domain suits the category.
pub fn topic_for<R: Rng>(rng: &mut R, def: &CategoryDef) -> Topic {
    let domain = if def.code_related {
        Domain::Code
    } else if def.name.contains("arithmetic") || def.name.contains("unit conversion") {
        Domain::Math
    } else if def.class == TaskClass::Creative {
        Domain::Creative
    } else if def.name.contains("scientific") || def.name.contains("science") {
        Domain::Science
    } else {
        // General mix for everything else.
        match rng.gen_range(0..3) {
            0 => Domain::Science,
            1 => Domain::Society,
            _ => Domain::Daily,
        }
    };
    pick_topic_in(rng, domain)
}

fn pick_tier<R: Rng>(rng: &mut R, config: &GeneratorConfig) -> Tier {
    let roll: f64 = rng.gen();
    if roll < config.filter_fraction {
        return Tier::Filterable;
    }
    let rich_given_kept = (config.rich_fraction / (1.0 - config.filter_fraction)).min(1.0);
    let roll2: f64 = rng.gen();
    if roll2 < rich_given_kept {
        Tier::Rich
    } else if roll2 < rich_given_kept + config.deficient_fraction {
        Tier::Deficient
    } else {
        Tier::Adequate
    }
}

fn build_pair<R: Rng>(
    rng: &mut R,
    cat: Category,
    topic: Topic,
    mut tier: Tier,
) -> (String, String, Vec<Defect>, Tier) {
    // AlpaGasus's authors observed that code-related pairs in ALPACA52K
    // were disproportionately low-rated and hence heavily filtered
    // (§II-A(3)); we reproduce that skew at the source: code categories
    // yield rich pairs at roughly half the base rate.
    if cat.is_code() && tier == Tier::Rich && rng.gen_bool(0.55) {
        tier = Tier::Adequate;
    }
    let mut instruction = instruction_text(rng, cat.def(), topic);
    let quality = match tier {
        Tier::Rich => rng.gen_range(0.86..1.0),
        Tier::Adequate => rng.gen_range(0.45..0.69),
        Tier::Deficient | Tier::Filterable => rng.gen_range(0.35..0.6),
    };
    let mut response = compose_response(rng, topic, ComposeSpec::for_quality(quality));
    if tier == Tier::Rich {
        // Rich instructions carry explicit context/requirements.
        instruction = format!(
            "{} For example, include at least one concrete case and reason step by step.",
            instruction
        );
    }

    let mut defects = Vec::new();
    match tier {
        Tier::Filterable => {
            if let Some(d) = weighted(rng, &FILTER_MIX) {
                d.inject(rng, &mut instruction, &mut response);
                defects.push(d);
            }
        }
        Tier::Deficient => {
            if rng.gen_bool(POLISHED_DEFICIENT_SHARE) {
                // Polished-but-flawed: an otherwise rich pair with a minor
                // surface defect. Expert revisions of these are
                // near-identity — the low-edit-distance tail of `R` whose
                // inclusion at high α the paper identifies as noise
                // (§II-F2, Fig 5a).
                let polished_q = rng.gen_range(0.72..0.84);
                response = compose_response(rng, topic, ComposeSpec::for_quality(polished_q));
                if let Some(d) = weighted(rng, &MINOR_RESPONSE_DEFECTS) {
                    d.inject(rng, &mut instruction, &mut response);
                    defects.push(d);
                }
                if rng.gen_bool(INSTRUCTION_DEFECT_P) {
                    let di = if rng.gen_bool(0.6) {
                        Defect::InstructionTypos
                    } else {
                        Defect::InstructionLayout
                    };
                    di.inject(rng, &mut instruction, &mut response);
                    defects.push(di);
                }
            } else {
                if let Some(mut d) = weighted(rng, &RESPONSE_DEFECT_MIX) {
                    if d == Defect::BareResponse && rng.gen_bool(TRUNCATION_SHARE_OF_BARE) {
                        d = Defect::TruncatedResponse;
                    }
                    d.inject(rng, &mut instruction, &mut response);
                    defects.push(d);
                }
                if rng.gen_bool(INSTRUCTION_DEFECT_P) {
                    if let Some(di) = weighted(rng, &INSTRUCTION_DEFECT_MIX) {
                        di.inject(rng, &mut instruction, &mut response);
                        defects.push(di);
                    }
                }
            }
        }
        Tier::Rich | Tier::Adequate => {}
    }
    (instruction, response, defects, tier)
}

fn weighted<R: Rng>(rng: &mut R, mix: &[(Defect, f64)]) -> Option<Defect> {
    // Splitting off the last entry makes the float-rounding fallback (when
    // `pick` walks past every weight) panic-free. Exactly one RNG draw per
    // call on a non-empty mix — the golden snapshots depend on that.
    let (last, rest) = mix.split_last()?;
    let total: f64 = mix.iter().map(|(_, w)| w).sum();
    let mut pick = rng.gen_range(0.0..total);
    for (d, w) in rest {
        if pick < *w {
            return Some(*d);
        }
        pick -= w;
    }
    Some(last.0)
}

/// Builds an instruction for the category about the topic. Passage-bearing
/// categories embed a short passage (raising average instruction length
/// toward Table VII's 17.7 words).
pub fn instruction_text<R: Rng>(rng: &mut R, def: &CategoryDef, topic: Topic) -> String {
    let t = topic.phrase;
    let passage = || {
        let bodies = crate::topics::body_templates(topic.domain);
        coachlm_text::normalize::capitalize_sentences(&bodies[0].replace("{}", t))
    };
    match def.name {
        "information extraction" => format!(
            "Extract the key facts about {t} from the passage below.\nPassage: {}",
            passage()
        ),
        "grammar correction" => format!(
            "Correct any grammar problems in this sentence about {t}: {}",
            passage()
        ),
        "summarization" => format!(
            "Summarize the following passage about {t} in one sentence.\nPassage: {} {}",
            passage(),
            coachlm_text::normalize::capitalize_sentences(
                &crate::topics::body_templates(topic.domain)[1].replace("{}", t)
            )
        ),
        "paraphrasing" => format!("Paraphrase this sentence about {t}: {}", passage()),
        "translation" => format!(
            "Translate this sentence about {t} into French: {}",
            passage()
        ),
        "text classification" => format!(
            "Classify the tone of this passage about {t} as formal or informal: {}",
            passage()
        ),
        "sentiment analysis" => format!(
            "Decide whether this statement about {t} is positive or negative: {}",
            passage()
        ),
        "keyword extraction" => {
            format!(
                "List the three most important keywords in this passage: {}",
                passage()
            )
        }
        "title generation" => {
            format!("Suggest a short title for an article about {t}.")
        }
        "data formatting" => {
            format!("Reformat the main facts about {t} as a bulleted list.")
        }
        "code explanation" => format!("Explain how {t} works to a junior developer."),
        "code generation" => {
            format!("Write a short function demonstrating {t}, with comments.")
        }
        "code debugging" => {
            format!("Find the likely bug in a program that misuses {t} and explain the fix.")
        }
        "arithmetic calculation" => {
            let a = rng.gen_range(12..95);
            let b = rng.gen_range(7..80);
            format!("Using {t}, calculate {a} plus {b} and show the steps.")
        }
        "unit conversion" => {
            let km = rng.gen_range(3..40);
            format!("Convert {km} kilometers to meters and explain the rule for {t}.")
        }
        "ordering and ranking" => {
            format!("Rank three everyday examples of {t} from simplest to most complex.")
        }
        "fact verification" => {
            format!(
                "Is the following claim about {t} accurate? Explain briefly: {}",
                passage()
            )
        }
        "table interpretation" => {
            format!("Given a small table of numbers about {t}, describe the main trend.")
        }
        "scientific inference" => {
            format!("What can be inferred about {t} from basic observations? Explain.")
        }
        "dialogue completion" => {
            format!("Complete this dialogue: 'Can you tell me about {t}?' - '...'")
        }
        "suggestion recommendation" => {
            format!("Recommend three practical ways to get started with {t}.")
        }
        "how-to guidance" => format!("Explain how to approach {t} for a complete beginner."),
        "comparison analysis" => {
            format!("Compare two common approaches to {t} and state which suits beginners.")
        }
        "opinion explanation" => {
            format!("Give a balanced opinion on the importance of {t} today.")
        }
        "brainstorming" => format!("Brainstorm five creative ideas involving {t}."),
        "story creation" => format!("Write a short story about {t}."),
        "copywriting" => format!("Write a catchy promotional paragraph about {t}."),
        "poem composition" => format!("Compose a short poem about {t}."),
        "role play" => format!("Pretend you are a tour guide introducing {t} to visitors."),
        "letter and email writing" => {
            format!("Draft a friendly email inviting a colleague to a talk about {t}.")
        }
        "slogan creation" => format!("Create a memorable slogan about {t}."),
        "joke and riddle writing" => format!("Write a light-hearted riddle about {t}."),
        "in-domain question answering" => {
            format!("What are the key principles behind {t}? Answer for a general reader.")
        }
        "open question answering" => format!("Why does {t} matter in everyday life?"),
        "concept definition" => format!("Define {t} in plain language."),
        _ => {
            // Generic per-class fallback.
            match def.class {
                TaskClass::LanguageTask => {
                    format!("Process the following request about {t}: {}", passage())
                }
                TaskClass::QA => format!("Answer this question about {t} clearly and helpfully."),
                TaskClass::Creative => format!("Write something imaginative about {t}."),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defect::DefectSide;

    fn small() -> (Dataset, Vec<Provenance>) {
        generate(&GeneratorConfig::small(4000, 7))
    }

    #[test]
    fn generates_requested_size_with_dense_ids() {
        let (d, p) = small();
        assert_eq!(d.len(), 4000);
        assert_eq!(p.len(), 4000);
        for (i, pair) in d.iter().enumerate() {
            assert_eq!(pair.id, i as u64);
        }
    }

    #[test]
    fn tier_fractions_match_config() {
        let (_, p) = small();
        let n = p.len() as f64;
        let frac = |t: Tier| p.iter().filter(|x| x.tier == t).count() as f64 / n;
        assert!(
            (frac(Tier::Filterable) - 0.181).abs() < 0.02,
            "{}",
            frac(Tier::Filterable)
        );
        assert!(
            (frac(Tier::Rich) - 0.177).abs() < 0.02,
            "{}",
            frac(Tier::Rich)
        );
        // Deficient is 46.8% of the kept share.
        let kept = 1.0 - frac(Tier::Filterable);
        assert!((frac(Tier::Deficient) / kept - 0.468).abs() < 0.03);
    }

    #[test]
    fn deficient_pairs_have_response_defects() {
        let (_, p) = small();
        for prov in p.iter().filter(|x| x.tier == Tier::Deficient) {
            assert!(!prov.defects.is_empty());
            assert!(prov
                .defects
                .iter()
                .any(|d| d.side() == DefectSide::Response));
        }
    }

    #[test]
    fn instruction_defect_share_matches_paper() {
        let (_, p) = small();
        let deficient: Vec<_> = p.iter().filter(|x| x.tier == Tier::Deficient).collect();
        let with_instr = deficient
            .iter()
            .filter(|x| {
                x.defects
                    .iter()
                    .any(|d| d.side() == DefectSide::Instruction)
            })
            .count() as f64;
        let share = with_instr / deficient.len() as f64;
        assert!((share - 0.469).abs() < 0.04, "share {share}");
    }

    #[test]
    fn filterable_mix_tracks_table3() {
        let (_, p) = small();
        let filt: Vec<_> = p.iter().filter(|x| x.tier == Tier::Filterable).collect();
        let share = |d: Defect| {
            filt.iter().filter(|x| x.defects.contains(&d)).count() as f64 / filt.len() as f64
        };
        assert!((share(Defect::InvalidInput) - 0.417).abs() < 0.05);
        assert!((share(Defect::BeyondExpertise) - 0.277).abs() < 0.05);
    }

    #[test]
    fn average_lengths_near_table7() {
        let (d, _) = generate(&GeneratorConfig::small(6000, 42));
        let instr: f64 =
            d.iter().map(|p| p.instruction_words() as f64).sum::<f64>() / d.len() as f64;
        let resp: f64 = d.iter().map(|p| p.response_words() as f64).sum::<f64>() / d.len() as f64;
        // Paper: 17.7 and 43.9 words. The shape target is "short instructions,
        // responses a few times longer"; allow generous bands.
        assert!((10.0..30.0).contains(&instr), "instruction avg {instr}");
        assert!((30.0..70.0).contains(&resp), "response avg {resp}");
    }

    #[test]
    fn deterministic_for_seed() {
        let (d1, _) = generate(&GeneratorConfig::small(200, 5));
        let (d2, _) = generate(&GeneratorConfig::small(200, 5));
        assert_eq!(d1, d2);
        let (d3, _) = generate(&GeneratorConfig::small(200, 6));
        assert_ne!(d1, d3);
    }

    #[test]
    fn rich_pairs_carry_context_markers() {
        let (d, p) = small();
        for prov in p.iter().filter(|x| x.tier == Tier::Rich).take(50) {
            let pair = d.get(prov.id).unwrap();
            assert!(coachlm_text::lexicon::contains_marker(
                &pair.instruction,
                coachlm_text::lexicon::CONTEXT_MARKERS
            ));
        }
    }

    #[test]
    fn zipfian_duplicates_skew_and_determinism() {
        let config = ZipfianConfig::stress(50, 5000, 1.1, 21);
        let d1 = zipfian_duplicates(&config);
        let d2 = zipfian_duplicates(&config);
        assert_eq!(d1, d2, "same config, same dataset");
        assert_eq!(d1.len(), 5000);
        for (i, pair) in d1.iter().enumerate() {
            assert_eq!(pair.id, i as u64, "ids are fresh and dense");
        }
        // Zipf skew: the single most popular content should dominate far
        // beyond the uniform share (5000/50 = 100).
        let mut counts: std::collections::HashMap<&str, usize> = Default::default();
        for p in d1.iter() {
            *counts.entry(p.instruction.as_str()).or_default() += 1;
        }
        assert!(counts.len() <= 50);
        let top = counts.values().copied().max().unwrap();
        assert!(top > 400, "head content drew {top} of 5000");
        // A flat exponent spreads draws out instead.
        let flat = zipfian_duplicates(&ZipfianConfig::stress(50, 5000, 0.0, 21));
        let mut flat_counts: std::collections::HashMap<&str, usize> = Default::default();
        for p in flat.iter() {
            *flat_counts.entry(p.instruction.as_str()).or_default() += 1;
        }
        let flat_top = flat_counts.values().copied().max().unwrap();
        assert!(flat_top < 200, "uniform head drew {flat_top} of 5000");
    }

    #[test]
    fn zipfian_near_fraction_perturbs_instructions_only_slightly() {
        let config = ZipfianConfig {
            near_fraction: 0.5,
            ..ZipfianConfig::stress(10, 2000, 0.9, 3)
        };
        let d = zipfian_duplicates(&config);
        let near = d
            .iter()
            .filter(|p| NEAR_SUFFIXES.iter().any(|s| p.instruction.ends_with(s)))
            .count();
        let share = near as f64 / d.len() as f64;
        assert!((share - 0.5).abs() < 0.05, "near share {share}");
        // Every near-duplicate is exactly two appended words.
        for p in d.iter().take(200) {
            if let Some(suffix) = NEAR_SUFFIXES.iter().find(|s| p.instruction.ends_with(*s)) {
                let base = &p.instruction[..p.instruction.len() - suffix.len()];
                assert!(base.ends_with('.'), "suffix appended to a full base");
            }
        }
    }

    #[test]
    fn zipfian_full_mode_reuses_generator_contents() {
        let config = ZipfianConfig {
            compact: false,
            ..ZipfianConfig::stress(30, 300, 1.0, 12)
        };
        let d = zipfian_duplicates(&config);
        assert_eq!(d.len(), 300);
        let (base, _) = generate(&GeneratorConfig {
            size: 30,
            seed: 12,
            name: config.name.clone(),
            ..GeneratorConfig::default()
        });
        let originals: std::collections::HashSet<&str> =
            base.iter().map(|p| p.instruction.as_str()).collect();
        assert!(d.iter().all(|p| originals.contains(p.instruction.as_str())));
    }

    #[test]
    fn every_category_appears_in_52k_scale_sample() {
        let (d, _) = generate(&GeneratorConfig::small(8000, 11));
        for cat in Category::all() {
            assert!(
                d.iter().any(|p| p.category == cat),
                "category {} missing",
                cat.name()
            );
        }
    }
}
