//! Dataset statistics (the Table VII columns).

use crate::pair::Dataset;
use coachlm_text::editdist::WordDistance;
use serde::Serialize;

/// Length/edit-distance statistics of a dataset, optionally relative to an
/// original dataset (Table VII reports both).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DatasetStats {
    /// Number of pairs.
    pub pairs: usize,
    /// Average instruction word count.
    pub avg_instruction_words: f64,
    /// Average response word count.
    pub avg_response_words: f64,
    /// Average word-level edit distance of instructions vs the original
    /// dataset (None when not compared).
    pub avg_instruction_edit: Option<f64>,
    /// Average word-level edit distance of responses vs the original.
    pub avg_response_edit: Option<f64>,
    /// Number of pairs whose instruction changed vs the original.
    pub instructions_changed: Option<usize>,
    /// Number of pairs whose response changed vs the original.
    pub responses_changed: Option<usize>,
}

/// Computes length statistics of a single dataset.
pub fn basic_stats(d: &Dataset) -> DatasetStats {
    let n = d.len().max(1) as f64;
    DatasetStats {
        pairs: d.len(),
        avg_instruction_words: d.iter().map(|p| p.instruction_words() as f64).sum::<f64>() / n,
        avg_response_words: d.iter().map(|p| p.response_words() as f64).sum::<f64>() / n,
        avg_instruction_edit: None,
        avg_response_edit: None,
        instructions_changed: None,
        responses_changed: None,
    }
}

/// Computes Table VII-style statistics of `revised` against `original`.
///
/// # Panics
/// Panics if the datasets have different lengths (they must be the same
/// pairs before/after revision).
pub fn compare_stats(original: &Dataset, revised: &Dataset) -> DatasetStats {
    assert_eq!(
        original.len(),
        revised.len(),
        "compare_stats requires aligned datasets"
    );
    let mut wd = WordDistance::new();
    let mut instr_edit = 0.0f64;
    let mut resp_edit = 0.0f64;
    let mut instr_changed = 0usize;
    let mut resp_changed = 0usize;
    for (o, r) in original.iter().zip(revised.iter()) {
        let di = wd.distance(&o.instruction, &r.instruction);
        let dr = wd.distance(&o.response, &r.response);
        instr_edit += di as f64;
        resp_edit += dr as f64;
        if di > 0 {
            instr_changed += 1;
        }
        if dr > 0 {
            resp_changed += 1;
        }
        // Dataset-scale comparisons would otherwise grow the memo cache
        // unboundedly; texts rarely repeat across pairs.
        wd.clear_cache();
    }
    let n = original.len().max(1) as f64;
    let base = basic_stats(revised);
    DatasetStats {
        avg_instruction_edit: Some(instr_edit / n),
        avg_response_edit: Some(resp_edit / n),
        instructions_changed: Some(instr_changed),
        responses_changed: Some(resp_changed),
        ..base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category::Category;
    use crate::pair::InstructionPair;

    fn ds(rows: &[(&str, &str)]) -> Dataset {
        let mut d = Dataset::new("t");
        for (i, (instr, resp)) in rows.iter().enumerate() {
            d.pairs
                .push(InstructionPair::new(i as u64, *instr, *resp, Category(0)));
        }
        d
    }

    #[test]
    fn basic_stats_average_words() {
        let d = ds(&[("one two three", "a b"), ("one", "a b c d")]);
        let s = basic_stats(&d);
        assert_eq!(s.pairs, 2);
        assert!((s.avg_instruction_words - 2.0).abs() < 1e-9);
        assert!((s.avg_response_words - 3.0).abs() < 1e-9);
    }

    #[test]
    fn compare_stats_counts_changes_and_distance() {
        let orig = ds(&[("do x", "answer one"), ("do y", "answer two")]);
        let revised = ds(&[
            ("do x", "answer one plus detail"),
            ("do y now", "answer two"),
        ]);
        let s = compare_stats(&orig, &revised);
        assert_eq!(s.instructions_changed, Some(1));
        assert_eq!(s.responses_changed, Some(1));
        assert!(s.avg_response_edit.unwrap() > 0.0);
        assert!(s.avg_instruction_edit.unwrap() > 0.0);
    }

    #[test]
    fn identical_datasets_zero_edits() {
        let d = ds(&[("a", "b")]);
        let s = compare_stats(&d, &d.clone());
        assert_eq!(s.avg_instruction_edit, Some(0.0));
        assert_eq!(s.avg_response_edit, Some(0.0));
        assert_eq!(s.instructions_changed, Some(0));
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn mismatched_lengths_panic() {
        let a = ds(&[("a", "b")]);
        let b = ds(&[("a", "b"), ("c", "d")]);
        let _ = compare_stats(&a, &b);
    }

    #[test]
    fn empty_dataset_stats() {
        let d = Dataset::new("empty");
        let s = basic_stats(&d);
        assert_eq!(s.pairs, 0);
        assert_eq!(s.avg_instruction_words, 0.0);
    }
}
