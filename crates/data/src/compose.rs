//! Response composition.
//!
//! One shared notion of "how good a response reads" is used everywhere text
//! is *produced*: the dataset generator (original pairs of varying quality),
//! the test-set builders (reference responses of set-specific strength), and
//! the student-model simulator in `coachlm-core` (candidate responses whose
//! quality tracks the model's skill). The criteria engine then *measures*
//! quality from the text alone, closing the loop.

use crate::topics::{body_templates, Topic, REASONING_TEMPLATES, WARM_TEMPLATES};
use rand::Rng;

/// Compositional levers for a response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComposeSpec {
    /// Number of on-topic body sentences (≥ 1).
    pub body_sentences: usize,
    /// Include reasoning/explanation sentences.
    pub reasoning: bool,
    /// Include a concrete example sentence.
    pub example: bool,
    /// Include a warm, humanised closer.
    pub warm: bool,
}

impl ComposeSpec {
    /// Maps a target quality level in [0, 1] to composition levers.
    ///
    /// * `q < 0.3` — one bare sentence (thin, unexplained);
    /// * `q < 0.55` — two body sentences;
    /// * `q < 0.7` — adds reasoning;
    /// * `q < 0.85` — adds an example;
    /// * else — adds warmth on top (the full advanced-experience package).
    pub fn for_quality(q: f64) -> Self {
        let q = q.clamp(0.0, 1.0);
        Self {
            body_sentences: 1 + (q * 3.2) as usize,
            reasoning: q >= 0.55,
            example: q >= 0.7,
            warm: q >= 0.85,
        }
    }

    /// Like [`Self::for_quality`], but each feature turns on
    /// *probabilistically* along a quality ramp instead of at a hard
    /// threshold. Generated-response quality then responds smoothly to
    /// small skill differences — a model trained on a marginally better
    /// dataset produces marginally better text, rather than identical text
    /// until a threshold is crossed.
    pub fn sampled<R: Rng>(q: f64, rng: &mut R) -> Self {
        let q = q.clamp(0.0, 1.0);
        let mut ramp = |lo: f64, hi: f64| {
            let t = ((q - lo) / (hi - lo)).clamp(0.0, 1.0);
            rng.gen_bool(t)
        };
        Self {
            body_sentences: 1 + (q * 3.2) as usize,
            reasoning: ramp(0.38, 0.70),
            example: ramp(0.52, 0.88),
            warm: ramp(0.74, 0.97),
        }
    }
}

/// Composes a response about `topic` per `spec`. Deterministic for a given
/// RNG state; sentences are drawn without replacement where possible.
pub fn compose_response<R: Rng>(rng: &mut R, topic: Topic, spec: ComposeSpec) -> String {
    let bodies = body_templates(topic.domain);
    let mut order: Vec<usize> = (0..bodies.len()).collect();
    shuffle(rng, &mut order);
    let mut sentences: Vec<String> = Vec::new();
    for &idx in order.iter().take(spec.body_sentences.max(1)) {
        sentences.push(fill(bodies[idx], topic.phrase));
    }
    if spec.reasoning {
        let t = REASONING_TEMPLATES[rng.gen_range(0..REASONING_TEMPLATES.len())];
        sentences.push(fill(t, topic.phrase));
    }
    if spec.example {
        sentences.push(fill(
            "For example, {} can be seen clearly in a simple everyday situation.",
            topic.phrase,
        ));
    }
    if spec.warm {
        let t = WARM_TEMPLATES[rng.gen_range(0..WARM_TEMPLATES.len())];
        sentences.push(fill(t, topic.phrase));
    }
    capitalize_sentences(&sentences.join(" "))
}

/// Fisher–Yates with the caller's RNG (keeps everything seeded).
fn shuffle<R: Rng, T>(rng: &mut R, v: &mut [T]) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
}

fn fill(template: &str, topic: &str) -> String {
    template.replace("{}", topic)
}

fn capitalize_sentences(s: &str) -> String {
    coachlm_text::normalize::capitalize_sentences(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topics::TOPICS;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn quality_maps_to_monotone_specs() {
        let lo = ComposeSpec::for_quality(0.1);
        let mid = ComposeSpec::for_quality(0.6);
        let hi = ComposeSpec::for_quality(0.95);
        assert!(lo.body_sentences <= mid.body_sentences);
        assert!(mid.body_sentences <= hi.body_sentences);
        assert!(!lo.reasoning && mid.reasoning && hi.reasoning);
        assert!(!lo.warm && !mid.warm && hi.warm);
    }

    #[test]
    fn composed_text_is_on_topic() {
        let mut rng = StdRng::seed_from_u64(1);
        for topic in TOPICS.iter().take(10) {
            let r = compose_response(&mut rng, *topic, ComposeSpec::for_quality(0.5));
            let key = topic.phrase.split_whitespace().last().unwrap();
            assert!(
                coachlm_text::normalize::fold_case(&r).contains(key),
                "missing {key}: {r}"
            );
        }
    }

    #[test]
    fn richer_specs_produce_longer_text() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = TOPICS[0];
        let thin = compose_response(&mut rng, t, ComposeSpec::for_quality(0.1));
        let rich = compose_response(&mut rng, t, ComposeSpec::for_quality(0.95));
        assert!(
            coachlm_text::token::word_count(&rich) > 2 * coachlm_text::token::word_count(&thin)
        );
    }

    #[test]
    fn rich_text_carries_detectable_markers() {
        let mut rng = StdRng::seed_from_u64(3);
        let r = compose_response(&mut rng, TOPICS[4], ComposeSpec::for_quality(0.95));
        use coachlm_text::lexicon;
        assert!(
            lexicon::contains_marker(&r, lexicon::REASONING_MARKERS),
            "{r}"
        );
        assert!(lexicon::contains_marker(&r, lexicon::WARM_MARKERS), "{r}");
    }

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let spec = ComposeSpec::for_quality(0.7);
        assert_eq!(
            compose_response(&mut a, TOPICS[7], spec),
            compose_response(&mut b, TOPICS[7], spec)
        );
    }
}
