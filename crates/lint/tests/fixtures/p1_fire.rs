// P1 must fire on panic paths in production code.

pub struct Pair {
    pub instruction: String,
    pub response: String,
}

pub fn panicky(p: &Pair, maybe: Option<u32>) -> u32 {
    let first = &p.instruction[0..1]; // line 9: fires (user-data indexing)
    let tail = &p.response[1..]; // line 10: fires (user-data indexing)
    if first.is_empty() && tail.is_empty() {
        panic!("empty"); // line 12: fires
    }
    let a = maybe.unwrap(); // line 14: fires
    let b = maybe.expect("present"); // line 15: fires
    a + b
}
