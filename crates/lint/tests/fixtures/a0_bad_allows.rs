// Directive hygiene: each of these allows is itself a violation.

pub fn noop(maybe: Option<u32>) -> u32 {
    let a = maybe.unwrap_or(0); // lint: allow(P1, reason = "nothing fires here, so this allow is unused")
    // lint: allow(P1)
    let b = maybe.unwrap_or(0);
    let c = maybe.unwrap_or(0); // lint: allow(Z9, reason = "no such rule")
    a + b + c
}
