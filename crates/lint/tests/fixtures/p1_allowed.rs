// A structural-invariant expect survives with a documented reason.

pub fn first_stage(names: &[&str]) -> String {
    names
        .first()
        // lint: allow(P1, reason = "callers construct the chain with at least one stage; an empty list is a construction bug, not a data condition")
        .expect("non-empty chain")
        .to_string()
}
