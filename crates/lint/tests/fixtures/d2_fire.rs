// D2 must fire on ambient randomness — even inside test code, because
// test outcomes must replicate too.

pub fn ambient() -> u64 {
    let mut rng = rand::thread_rng(); // line 5: fires
    rng.gen()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_are_not_exempt() {
        let _rng = StdRng::from_entropy(); // line 13: fires
    }
}
