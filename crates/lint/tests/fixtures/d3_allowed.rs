// Collect-and-sort is the sanctioned pattern; the allow documents it.
use std::collections::HashMap;

pub fn sorted_entries(m: &HashMap<String, u32>) -> Vec<(String, u32)> {
    // lint: allow(D3, reason = "entries are collected and sorted by key on the next line")
    let mut entries: Vec<_> = m.iter().map(|(k, v)| (k.clone(), *v)).collect();
    entries.sort();
    entries
}
