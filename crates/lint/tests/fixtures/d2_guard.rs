// D2 must NOT fire on mentions in strings and comments.

// thread_rng and from_entropy in a comment are fine.

pub fn describe() -> &'static str {
    "never call thread_rng or from_entropy or OsRng in this workspace"
}

pub fn raw() -> &'static str {
    r"getrandom is also banned, but this is a raw string"
}
