// C1 must NOT fire here when this file is classified as part of
// crates/runtime (the executor owns concurrency), nor on mentions in text.
use std::sync::atomic::{AtomicUsize, Ordering};

pub fn executor_internals() -> usize {
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        scope.spawn(|| next.fetch_add(1, Ordering::Relaxed));
    });
    next.load(Ordering::Relaxed)
}

pub fn doc() -> &'static str {
    "outside the runtime, thread::spawn and AtomicUsize are banned"
}
