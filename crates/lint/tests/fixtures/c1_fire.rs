// C1 must fire on raw concurrency primitives outside crates/runtime.
use std::sync::atomic::AtomicUsize; // line 2: fires

pub fn roll_your_own() {
    let handle = std::thread::spawn(|| 1 + 1); // line 5: fires
    let _counter = AtomicUsize::new(0); // line 6: fires
    let _ = handle.join();
}
