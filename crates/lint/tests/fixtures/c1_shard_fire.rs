// C1 must fire on shard-driver coordination primitives outside
// crates/runtime: fan-out goes through the sharded driver.
use std::sync::Barrier; // line 3: fires
use std::sync::RwLock; // line 4: fires

pub fn roll_your_own_shards(handles: Vec<std::thread::JoinHandle<u32>>) {
    // line 6 above: fires (JoinHandle)
    let merged = RwLock::new(Vec::new()); // line 8: fires
    let rendezvous = Barrier::new(4); // line 9: fires
    for h in handles {
        merged.write().ok().map(|mut m| m.push(h.join().ok()));
    }
    rendezvous.wait();
    std::thread::park_timeout(std::time::Duration::from_millis(1)); // line 14: fires
}
