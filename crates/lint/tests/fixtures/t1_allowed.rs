//! T1 fixture: an allowed (order-insensitive) map iteration must not
//! seed taint — the sink stays clean because the justification at the
//! source covers both the local rule and the interprocedural view.
use std::collections::HashMap;

pub struct Tally;

impl Stage for Tally {
    fn process(&self, item: &mut StageItem, _ctx: &mut StageCtx<'_>) -> StageOutcome {
        StageOutcome::count(total(&item.buckets))
    }
}

fn total(buckets: &HashMap<String, u32>) -> u64 {
    let mut sum = 0u64;
    // lint: allow(D3, reason = "sum over values is commutative; visit order cannot change the result")
    for (_, v) in buckets.iter() {
        sum += u64::from(*v);
    }
    sum
}
