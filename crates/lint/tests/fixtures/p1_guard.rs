// P1 must NOT fire: mentions in strings/comments/raw strings, and real
// panics in #[cfg(test)] code, are all fine.

// A comment may say .unwrap() or panic!("...") freely.

pub fn advice() -> (&'static str, &'static str) {
    let plain = "never call .unwrap() or .expect(...) in a stage body";
    let raw = r#"panic!("not a real panic, just a raw string")"#;
    (plain, raw)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_unwrap_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let w: Option<u32> = Some(2);
        assert_eq!(w.expect("set above"), 2);
    }

    #[test]
    #[should_panic]
    fn test_panic_is_fine() {
        panic!("expected");
    }
}
