// C1 must fire on process control outside crates/runtime: worker
// processes are spawned, fed, killed, and reaped only by the
// supervised driver, so its crash-containment contract holds.
use std::process::Command; // line 4: fires (process::Command)

pub fn roll_your_own_worker(peer: &mut std::process::Child) {
    // line 6 above: fires (process::Child)
    let child = Command::new("sh").spawn(); // line 8: fires (Command::new)
    peer.kill().ok(); // line 9: fires (.kill())
    if child.is_err() {
        std::process::abort(); // line 11: fires (process::abort)
    }
    std::process::exit(3); // line 13: fires (process::exit)
}
