// C1 must fire on channel/queue primitives outside crates/runtime: the
// streaming core's bounded queues are the only sanctioned item transport.
use std::sync::mpsc::Sender; // line 3: fires (mpsc path)
use std::sync::Condvar; // line 4: fires

pub fn roll_your_own_queue(tx: Sender<u32>) {
    let (btx, brx) = std::sync::mpsc::sync_channel(4); // line 7: fires twice
    tx.send(1).ok();
    btx.send(2).ok();
    let _parked = Condvar::new(); // line 10: fires
    let _ = brx.recv();
}
