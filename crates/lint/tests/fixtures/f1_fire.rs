//! F1 fixture: a fingerprinted policy struct with a field that never
//! reaches the hash — the journal-v2-budget-field failure mode.
pub struct ShardPolicy {
    shard_count: usize,
    rehash_limit: usize,
    burst_budget: u32,
}

impl ShardPolicy {
    pub(crate) fn fingerprint_into(&self, h: &mut impl std::hash::Hasher) {
        h.write_u64(self.shard_count as u64);
        h.write_u64(self.rehash_limit as u64);
    }
}
