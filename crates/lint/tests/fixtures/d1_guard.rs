// D1 must NOT fire: the pattern only appears in strings, comments, raw
// strings, #[cfg(test)] code, or as plain identifiers that are not the
// banned calls.

// A comment mentioning Instant::now() is not a violation.
// Neither is meta.modified() or SystemTime::UNIX_EPOCH in a comment.

pub fn doc_strings() -> (&'static str, &'static str) {
    let plain = "call Instant::now() to read the clock";
    let raw = r#"SystemTime::now() and .accessed() inside a raw string"#;
    (plain, raw)
}

/* block comment: Instant::now() here is fine too */

// `modified`/`created`/`accessed` as ordinary names are not timestamp
// reads — only the method-call form fires.
pub fn named_fields(modified: bool, created: bool) -> bool {
    let accessed = "the string .modified() never fires";
    modified && created && !accessed.is_empty()
}

#[cfg(test)]
mod tests {
    use std::time::{Instant, SystemTime, UNIX_EPOCH};

    #[test]
    fn timing_in_tests_is_fine() {
        let _t = Instant::now();
        let _since = SystemTime::now().duration_since(UNIX_EPOCH);
    }
}
