// D1 must NOT fire: the pattern only appears in strings, comments, raw
// strings, and #[cfg(test)] code.

// A comment mentioning Instant::now() is not a violation.

pub fn doc_strings() -> (&'static str, &'static str) {
    let plain = "call Instant::now() to read the clock";
    let raw = r#"SystemTime::now() and thread::sleep inside a raw string"#;
    (plain, raw)
}

/* block comment: Instant::now() here is fine too */

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn timing_in_tests_is_fine() {
        let _t = Instant::now();
    }
}
