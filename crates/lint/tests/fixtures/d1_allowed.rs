// A well-formed allow with a reason suppresses D1 on its line.
use std::time::Instant;

pub fn banner() {
    let t0 = Instant::now(); // lint: allow(D1, reason = "stderr progress banner only; no output depends on it")
    eprintln!("{:?}", t0.elapsed());
}
