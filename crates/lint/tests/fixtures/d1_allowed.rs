// A well-formed allow with a reason suppresses D1 on its line.
use std::time::Instant;

pub fn banner() {
    let t0 = Instant::now(); // lint: allow(D1, reason = "stderr progress banner only; no output depends on it")
    eprintln!("{:?}", t0.elapsed());
}

pub fn cache_staleness(meta: &std::fs::Metadata) -> bool {
    meta.modified().is_ok() // lint: allow(D1, reason = "staleness probe for an operator log line; never journaled")
}
