//! Negative fixture: a production stage with deterministic helpers and a
//! fully covered fingerprint struct — the whole analyzer must stay quiet.
use std::collections::BTreeMap;

pub struct Normalize;

impl Stage for Normalize {
    fn process(&self, item: &mut StageItem, _ctx: &mut StageCtx<'_>) -> StageOutcome {
        let n = count_words(&item.pair.instruction);
        StageOutcome::count(rank(n))
    }
}

fn count_words(text: &str) -> usize {
    text.split_whitespace().count()
}

fn rank(n: usize) -> u64 {
    let mut table: BTreeMap<usize, u64> = BTreeMap::new();
    table.insert(n, 1);
    table.values().sum()
}

pub struct Budget {
    max_passes: u32,
    base_wait_ns: u64,
}

impl Budget {
    pub(crate) fn fingerprint_into(&self, h: &mut impl std::hash::Hasher) {
        h.write_u32(self.max_passes);
        h.write_u64(self.base_wait_ns);
    }
}
