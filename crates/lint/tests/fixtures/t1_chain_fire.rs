//! T1 fixture: a production `Stage::process` reaches a HashMap iteration
//! three calls deep. The token rule (D3) flags the site; the taint
//! analysis must additionally flag the sink with the full call chain.
use std::collections::HashMap;

pub struct Reorder;

impl Stage for Reorder {
    fn process(&self, item: &mut StageItem, _ctx: &mut StageCtx<'_>) -> StageOutcome {
        let tags = collect_tags(item);
        StageOutcome::done(tags)
    }
}

fn collect_tags(item: &StageItem) -> Vec<String> {
    bucket_names(&item.buckets)
}

fn bucket_names(buckets: &HashMap<String, u32>) -> Vec<String> {
    let mut out = Vec::new();
    for (name, _) in buckets.iter() {
        out.push(name.clone());
    }
    out
}
