//! F1 fixture: a deliberately excluded field carries a justified allow on
//! its declaration line; an enum struct-variant's bindings count as
//! hashed when the match arm mentions them.
pub struct ShardPolicy {
    shard_count: usize,
    // lint: allow(F1, reason = "worker count is a wall-clock knob; results are thread-count invariant by the executor contract")
    workers: usize,
}

pub enum Arrival {
    Batch,
    Sustained { rate: f64, backlog: usize },
}

impl ShardPolicy {
    pub(crate) fn fingerprint_into(&self, h: &mut impl std::hash::Hasher) {
        h.write_u64(self.shard_count as u64);
    }
}

impl Arrival {
    pub(crate) fn fingerprint_into(&self, h: &mut impl std::hash::Hasher) {
        match self {
            Arrival::Batch => h.write_u8(0),
            Arrival::Sustained { rate, backlog } => {
                h.write_u8(1);
                h.write_u64(rate.to_bits());
                h.write_u64(*backlog as u64);
            }
        }
    }
}
