// D3 must NOT fire on ordered containers, on map mentions in text, or in
// #[cfg(test)] code.
use std::collections::{BTreeMap, HashMap};

pub fn btree_is_ordered(m: &BTreeMap<String, u32>) -> u32 {
    m.values().sum()
}

pub fn just_words() -> &'static str {
    "a HashMap iter() mention inside a string is not iteration"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_iteration_is_exempt() {
        let m: HashMap<u32, u32> = HashMap::new();
        for (k, v) in &m {
            let _ = (k, v);
        }
    }
}
