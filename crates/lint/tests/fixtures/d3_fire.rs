// D3 must fire on iteration over hash maps/sets in production code.
use std::collections::{HashMap, HashSet};

type Index = HashMap<String, u32>;

pub fn leak_order(m: &HashMap<String, u32>, s: HashSet<u32>) -> Vec<String> {
    let mut out: Vec<String> = m.keys().cloned().collect(); // line 7: fires
    for v in &s {
        // line 8: fires (for-loop over a tracked set)
        out.push(v.to_string());
    }
    let idx = Index::new();
    let _ = idx.iter(); // line 13: fires (through the type alias)
    out
}
