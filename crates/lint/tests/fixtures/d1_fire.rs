// D1 must fire on wall-clock reads and real sleeps in production code.
use std::time::{Duration, Instant, SystemTime};

pub fn measure() -> Duration {
    let start = Instant::now(); // line 5: fires
    let _wall = SystemTime::now(); // line 6: fires
    std::thread::sleep(Duration::from_millis(1)); // line 7: fires
    start.elapsed()
}
