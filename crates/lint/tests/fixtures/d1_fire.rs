// D1 must fire on wall-clock reads, timestamps, and real sleeps.
use std::time::{Duration, Instant, SystemTime}; // line 2: fires (SystemTime)

pub fn measure() -> Duration {
    let start = Instant::now(); // line 5: fires
    let _wall = SystemTime::now(); // line 6: fires (once — not twice)
    std::thread::sleep(Duration::from_millis(1)); // line 7: fires
    start.elapsed()
}

pub fn stamps(meta: &std::fs::Metadata) -> bool {
    let m = meta.modified(); // line 12: fires
    let c = meta.created(); // line 13: fires
    let a = meta.accessed(); // line 14: fires
    let _epoch = std::time::UNIX_EPOCH; // line 15: fires
    m.is_ok() && c.is_ok() && a.is_ok()
}
