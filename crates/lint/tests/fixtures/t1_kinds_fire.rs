//! T1 fixture: the new source kinds — thread identity, pointer-to-int
//! cast, atomic read-modify-write — reached from a digest computation.
//! None of these overlap a token-level rule inside crates/runtime, so
//! only T1 fires (classified as a runtime file: C1 does not apply).
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

pub fn output_digest(items: &[u64]) -> u64 {
    let salt = seed_salt(items);
    items.len() as u64 ^ salt
}

fn seed_salt(items: &[u64]) -> u64 {
    let _who = std::thread::current();
    let addr = items.as_ptr() as usize;
    let n = COUNTER.fetch_add(1, Ordering::SeqCst);
    (addr as u64).wrapping_add(n)
}
