//! Self-check: the pass must run clean over the whole workspace. This is
//! the test-suite mirror of the CI gate — if a determinism or panic-safety
//! violation lands anywhere in the tree, this test fails with the exact
//! file:line:col findings in the panic message.

#[test]
fn workspace_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let run = coachlm_lint::run_lint(&root);
    assert!(run.files_checked > 50, "walk found the workspace sources");
    assert!(
        run.io_errors.is_empty(),
        "walk had IO errors: {:?}",
        run.io_errors
    );
    assert!(
        run.findings.is_empty(),
        "lint violations in the workspace:\n{}",
        coachlm_lint::diag::render_human(&run.findings, run.files_checked)
    );
}
