//! Self-check: the pass must run clean over the whole workspace. This is
//! the test-suite mirror of the CI gate — if a determinism or panic-safety
//! violation lands anywhere in the tree, this test fails with the exact
//! file:line:col findings in the panic message.

/// The strategy zoo is production code in `crates/core`: every rule —
/// including P1 (panic-safety) and D3 (no hash-map iteration) — applies
/// to it with no exemption flag set, and the walk actually reaches it.
#[test]
fn strategies_module_is_fully_covered() {
    let class = coachlm_lint::walk::FileClass::classify("crates/core/src/strategies.rs");
    assert!(!class.test_file, "strategies.rs is not a test file");
    assert!(!class.example_file);
    assert!(!class.bench_crate, "P1 applies in full");
    assert!(!class.runtime_crate, "C1 applies in full");
    assert!(!class.simtime_module, "D1 applies in full");

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let mut errors = Vec::new();
    let files = coachlm_lint::walk::source_files(&root, &mut errors);
    assert!(
        files.iter().any(|f| f == "crates/core/src/strategies.rs"),
        "the walk must reach the strategies module"
    );
    assert!(
        files.iter().any(|f| f == "crates/judge/src/tournament.rs"),
        "the walk must reach the tournament module"
    );
}

#[test]
fn workspace_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let run = coachlm_lint::run_lint(&root);
    assert!(run.files_checked > 50, "walk found the workspace sources");
    assert!(
        run.io_errors.is_empty(),
        "walk had IO errors: {:?}",
        run.io_errors
    );
    assert!(
        run.findings.is_empty(),
        "lint violations in the workspace:\n{}",
        coachlm_lint::diag::render_human(&run.findings, run.files_checked)
    );
}
