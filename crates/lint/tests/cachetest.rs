//! The per-file-hash analysis cache: warm runs must serve unchanged files
//! from the cache with identical findings, edits must invalidate exactly
//! the touched file, and a corrupt cache must degrade to a cold run, never
//! to wrong results.

use std::fs;
use std::path::PathBuf;

struct TempRoot(PathBuf);

impl TempRoot {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "coachlm-lint-cachetest-{}-{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("crates/core/src")).expect("temp root creatable");
        TempRoot(dir)
    }

    fn write(&self, rel: &str, src: &str) {
        fs::write(self.0.join(rel), src).expect("temp file writable");
    }
}

impl Drop for TempRoot {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

const DIRTY: &str =
    "pub fn elapsed_tag() -> String {\n    format!(\"{:?}\", std::time::Instant::now())\n}\n";
const CLEAN: &str = "pub fn double(x: u64) -> u64 {\n    x * 2\n}\n";

#[test]
fn warm_run_serves_cached_files_with_identical_findings() {
    let root = TempRoot::new("warm");
    root.write("crates/core/src/dirty.rs", DIRTY);
    root.write("crates/core/src/lib.rs", CLEAN);
    let cache = root.0.join("lint.cache");

    let cold = coachlm_lint::run_lint_with(&root.0, Some(&cache));
    assert_eq!((cold.cache_hits, cold.cache_misses), (0, 2));
    assert_eq!(cold.findings.len(), 1, "{:?}", cold.findings);
    assert_eq!(cold.findings[0].rule, "D1");
    assert!(cache.is_file(), "cache written");

    let warm = coachlm_lint::run_lint_with(&root.0, Some(&cache));
    assert_eq!((warm.cache_hits, warm.cache_misses), (2, 0));
    assert_eq!(warm.findings, cold.findings, "cache round-trips findings");
    assert!(warm.io_errors.is_empty() && warm.parse_errors.is_empty());
}

#[test]
fn edit_invalidates_only_the_touched_file() {
    let root = TempRoot::new("edit");
    root.write("crates/core/src/dirty.rs", DIRTY);
    root.write("crates/core/src/lib.rs", CLEAN);
    let cache = root.0.join("lint.cache");

    let _cold = coachlm_lint::run_lint_with(&root.0, Some(&cache));
    // Fixing the violation changes the file hash: one miss, one hit, and
    // the stale finding must not be served from the cache.
    root.write("crates/core/src/dirty.rs", CLEAN);
    let run = coachlm_lint::run_lint_with(&root.0, Some(&cache));
    assert_eq!((run.cache_hits, run.cache_misses), (1, 1));
    assert!(run.findings.is_empty(), "{:?}", run.findings);
}

#[test]
fn corrupt_cache_degrades_to_a_cold_run() {
    let root = TempRoot::new("corrupt");
    root.write("crates/core/src/dirty.rs", DIRTY);
    let cache = root.0.join("lint.cache");

    let _cold = coachlm_lint::run_lint_with(&root.0, Some(&cache));
    fs::write(&cache, "not a cache file\nF garbage\n").expect("cache overwritable");
    let run = coachlm_lint::run_lint_with(&root.0, Some(&cache));
    assert_eq!((run.cache_hits, run.cache_misses), (0, 1));
    assert_eq!(run.findings.len(), 1);
    // ... and the rewritten cache is immediately warm again.
    let warm = coachlm_lint::run_lint_with(&root.0, Some(&cache));
    assert_eq!((warm.cache_hits, warm.cache_misses), (1, 0));
}

#[test]
fn cached_warm_run_preserves_interprocedural_findings() {
    // T1 depends on the workspace call graph, which is recomputed from
    // cached summaries — a warm run must re-report the chain.
    let root = TempRoot::new("taint");
    root.write(
        "crates/core/src/stage.rs",
        "pub struct S;\nimpl Stage for S {\n    fn process(&self, item: &mut StageItem, _ctx: &mut StageCtx<'_>) -> StageOutcome {\n        StageOutcome::count(helper())\n    }\n}\n",
    );
    root.write(
        "crates/core/src/helper.rs",
        "pub fn helper() -> u64 {\n    let mut rng = thread_rng();\n    rng.next_u64()\n}\n",
    );
    let cache = root.0.join("lint.cache");

    let cold = coachlm_lint::run_lint_with(&root.0, Some(&cache));
    let warm = coachlm_lint::run_lint_with(&root.0, Some(&cache));
    assert_eq!((warm.cache_hits, warm.cache_misses), (2, 0));
    assert_eq!(warm.findings, cold.findings);
    assert!(
        warm.findings
            .iter()
            .any(|f| f.rule == "T1" && f.message.contains("[call chain: S::process -> helper]")),
        "{:?}",
        warm.findings
    );
}

#[test]
fn disabled_cache_never_touches_disk() {
    let root = TempRoot::new("nocache");
    root.write("crates/core/src/lib.rs", CLEAN);
    let run = coachlm_lint::run_lint_with(&root.0, None);
    assert_eq!((run.cache_hits, run.cache_misses), (0, 1));
    assert!(!root.0.join("lint.cache").exists());
    assert!(!root.0.join("target").exists());
}
