//! Golden-diagnostic tests for the `coachlm-analyze` passes: the
//! interprocedural taint analysis (T1) and the fingerprint-coverage
//! check (F1), driven through fixture files with known violations, plus
//! parser-binding guards over real workspace sources (if the parser ever
//! stops seeing `Stage::run` impls or `fingerprint_into` bodies, the
//! analyses would go quiet without these).

use coachlm_lint::parse::FileSummary;
use coachlm_lint::rules::Finding;
use coachlm_lint::walk::FileClass;
use coachlm_lint::{analyze_source, analyze_sources};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).expect("fixture file readable")
}

fn analyze_fixture(name: &str, as_path: &str) -> Vec<Finding> {
    analyze_sources(&[(FileClass::classify(as_path), fixture(name))])
}

fn rule_lines(findings: &[Finding]) -> Vec<(&'static str, u32)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

const PROD: &str = "crates/core/src/fixture.rs";

// --- T1: cross-function taint ---------------------------------------------

#[test]
fn t1_reports_map_iteration_chain_with_full_call_chain() {
    let f = analyze_fixture("t1_chain_fire.rs", PROD);
    // T1 flags the sink (line 9); the local rule flags the site (line 21).
    assert_eq!(rule_lines(&f), vec![("T1", 9), ("D3", 21)]);
    let t1 = &f[0];
    assert_eq!(
        t1.message,
        "`Reorder::process` is a production `Stage::process` path but reaches a hash-map \
         iteration order source: `.iter()` over hash map/set `buckets` at \
         crates/core/src/fixture.rs:21 \
         [call chain: Reorder::process -> collect_tags -> bucket_names]"
    );
}

#[test]
fn t1_reports_each_new_source_kind_once() {
    let f = analyze_fixture("t1_kinds_fire.rs", "crates/runtime/src/fixture.rs");
    assert!(f.iter().all(|f| f.rule == "T1"), "only T1 fires: {f:?}");
    // One finding per source kind reached from the sink, all anchored at
    // the sink — multiple walk paths to the same span dedup to one.
    let mut kinds: Vec<&str> = f
        .iter()
        .map(|f| {
            if f.message.contains("thread-identity") {
                "thread-id"
            } else if f.message.contains("pointer-address") {
                "ptr-int"
            } else if f.message.contains("atomic read-modify-write") {
                "atomic-rmw"
            } else {
                "other"
            }
        })
        .collect();
    kinds.sort_unstable();
    assert_eq!(kinds, vec!["atomic-rmw", "ptr-int", "thread-id"]);
    assert!(f.iter().all(|f| f.line == 9), "anchored at the sink: {f:?}");
    assert!(f.iter().all(|f| f
        .message
        .contains("[call chain: output_digest -> seed_salt]")));
}

#[test]
fn t1_cross_file_chain_is_reported() {
    let caller = r#"
pub struct Shuffle;
impl Stage for Shuffle {
    fn process(&self, item: &mut StageItem, _ctx: &mut StageCtx<'_>) -> StageOutcome {
        StageOutcome::count(shared_entropy_helper())
    }
}
"#;
    let callee = r#"
pub fn shared_entropy_helper() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}
"#;
    let f = analyze_sources(&[
        (
            FileClass::classify("crates/core/src/caller.rs"),
            caller.to_string(),
        ),
        (
            FileClass::classify("crates/expert/src/callee.rs"),
            callee.to_string(),
        ),
    ]);
    // D2 fires at the source line; T1 at the sink, naming both files.
    assert_eq!(rule_lines(&f), vec![("T1", 4), ("D2", 3)]);
    assert!(f[0].message.contains("OS-entropy source"));
    assert!(f[0].message.contains(
        "at crates/expert/src/callee.rs:3 [call chain: Shuffle::process -> shared_entropy_helper]"
    ));
}

#[test]
fn t1_allowed_source_does_not_seed_taint() {
    let f = analyze_fixture("t1_allowed.rs", PROD);
    assert!(f.is_empty(), "allowed source must not taint: {f:?}");
}

// --- F1: fingerprint coverage ---------------------------------------------

#[test]
fn f1_reports_unhashed_field_of_fingerprinted_struct() {
    let f = analyze_fixture("f1_fire.rs", "crates/runtime/src/fixture.rs");
    assert_eq!(rule_lines(&f), vec![("F1", 6)]);
    assert_eq!(
        f[0].message,
        "field `burst_budget` of fingerprinted type `ShardPolicy` is not folded into \
         `ShardPolicy::fingerprint_into` — hash it, or justify the exclusion with \
         `// lint: allow(F1, reason = \"…\")` on the field"
    );
}

#[test]
fn f1_allowed_exclusion_and_enum_bindings_are_clean() {
    let f = analyze_fixture("f1_allowed.rs", "crates/runtime/src/fixture.rs");
    assert!(f.is_empty(), "justified exclusions are clean: {f:?}");
}

#[test]
fn f1_unfingerprinted_struct_is_ignored() {
    let src = "pub struct Plain { a: u32, b: u32 }\n";
    let f = analyze_sources(&[(FileClass::classify(PROD), src.to_string())]);
    assert!(f.is_empty());
}

// --- negative -------------------------------------------------------------

#[test]
fn clean_fixture_stays_clean_through_all_analyses() {
    let f = analyze_fixture("analyze_clean.rs", PROD);
    assert!(f.is_empty(), "clean fixture must stay clean: {f:?}");
}

#[test]
fn test_scoped_code_never_feeds_the_graph() {
    // The same tainted chain under #[cfg(test)] must not produce T1.
    let src = r#"
#[cfg(test)]
mod tests {
    pub fn output_digest(xs: &[u64]) -> u64 {
        let addr = xs.as_ptr() as usize;
        addr as u64
    }
}
"#;
    let f = analyze_sources(&[(FileClass::classify(PROD), src.to_string())]);
    assert!(f.is_empty(), "test scopes are exempt: {f:?}");
}

// --- parser binding guards over real workspace sources --------------------

fn workspace_summary(rel: &str) -> FileSummary {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let src = std::fs::read_to_string(root.join(rel)).expect("workspace file readable");
    analyze_source(&FileClass::classify(rel), &src).summary
}

#[test]
fn parser_sees_cache_policy_fields_and_fingerprint_body() {
    let s = workspace_summary("crates/runtime/src/cache.rs");
    let ty = s
        .types
        .iter()
        .find(|t| t.name == "CachePolicy")
        .expect("CachePolicy parsed");
    let names: Vec<&str> = ty.fields.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(names, vec!["near_distance", "near_probes", "capacity"]);
    let fp = s
        .fns
        .iter()
        .find(|f| f.name == "fingerprint_into" && f.self_ty.as_deref() == Some("CachePolicy"))
        .expect("CachePolicy::fingerprint_into parsed");
    for field in &names {
        assert!(
            fp.mentions.iter().any(|m| m == field),
            "`{field}` mentioned in the hash body"
        );
    }
    assert!(s.parse_errors.is_empty(), "{:?}", s.parse_errors);
}

#[test]
fn parser_sees_stage_process_sinks_in_strategies() {
    let s = workspace_summary("crates/core/src/strategies.rs");
    let sinks: Vec<_> = s
        .fns
        .iter()
        .filter(|f| f.name == "process" && f.trait_name.as_deref() == Some("Stage") && !f.is_test)
        .collect();
    assert!(
        sinks.len() >= 4,
        "strategies.rs has several Stage::process impls, found {}",
        sinks.len()
    );
    assert!(
        sinks.iter().any(|r| !r.calls.is_empty()),
        "process bodies record call sites"
    );
}

#[test]
fn parser_sees_executor_fingerprint_and_feed_enum() {
    let s = workspace_summary("crates/runtime/src/stream.rs");
    let feed = s
        .types
        .iter()
        .find(|t| t.name == "Feed")
        .expect("Feed enum parsed");
    let names: Vec<&str> = feed.fields.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(
        names,
        vec!["rate_per_sec", "drain_per_sec", "backlog_capacity"]
    );
}
