//! Fixture tests: every rule in the catalogue has a firing fixture, an
//! allowed-with-reason fixture, and false-positive guards (rule tokens in
//! strings, comments, raw strings, and `#[cfg(test)]` code must not fire).

use coachlm_lint::lint_source;
use coachlm_lint::rules::Finding;
use coachlm_lint::walk::FileClass;

/// Lints a fixture file as if it lived at `as_path` in the workspace.
fn lint_fixture(name: &str, as_path: &str) -> Vec<Finding> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).expect("fixture file readable");
    lint_source(&FileClass::classify(as_path), &src)
}

fn rule_lines(findings: &[Finding]) -> Vec<(&'static str, u32)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

const PROD: &str = "crates/core/src/fixture.rs";

// --- D1 -------------------------------------------------------------------

#[test]
fn d1_fires_on_wall_clock_and_sleep() {
    let f = lint_fixture("d1_fire.rs", PROD);
    assert_eq!(
        rule_lines(&f),
        vec![
            ("D1", 2),  // SystemTime import
            ("D1", 5),  // Instant::now()
            ("D1", 6),  // SystemTime::now() — one finding, not two
            ("D1", 7),  // thread::sleep
            ("D1", 12), // .modified()
            ("D1", 13), // .created()
            ("D1", 14), // .accessed()
            ("D1", 15), // UNIX_EPOCH
        ]
    );
}

#[test]
fn d1_allowed_with_reason_is_clean() {
    assert!(lint_fixture("d1_allowed.rs", PROD).is_empty());
}

#[test]
fn d1_guard_strings_comments_and_cfg_test() {
    assert!(lint_fixture("d1_guard.rs", PROD).is_empty());
}

#[test]
fn d1_exempt_in_simtime_module() {
    let f = lint_fixture("d1_fire.rs", "crates/runtime/src/simtime.rs");
    assert!(f.is_empty());
}

#[test]
fn d1_exempt_in_test_files() {
    assert!(lint_fixture("d1_fire.rs", "crates/core/tests/fixture.rs").is_empty());
}

// --- D2 -------------------------------------------------------------------

#[test]
fn d2_fires_everywhere_even_in_cfg_test() {
    let f = lint_fixture("d2_fire.rs", PROD);
    assert_eq!(rule_lines(&f), vec![("D2", 5), ("D2", 13)]);
}

#[test]
fn d2_fires_in_test_files_too() {
    let f = lint_fixture("d2_fire.rs", "crates/core/tests/fixture.rs");
    assert_eq!(rule_lines(&f), vec![("D2", 5), ("D2", 13)]);
}

#[test]
fn d2_guard_strings_and_comments() {
    assert!(lint_fixture("d2_guard.rs", PROD).is_empty());
}

// --- D3 -------------------------------------------------------------------

#[test]
fn d3_fires_on_map_iteration_including_aliases() {
    let f = lint_fixture("d3_fire.rs", PROD);
    assert_eq!(rule_lines(&f), vec![("D3", 7), ("D3", 8), ("D3", 13)]);
}

#[test]
fn d3_allowed_collect_and_sort_is_clean() {
    assert!(lint_fixture("d3_allowed.rs", PROD).is_empty());
}

#[test]
fn d3_guard_btreemap_strings_and_cfg_test() {
    assert!(lint_fixture("d3_guard.rs", PROD).is_empty());
}

// --- P1 -------------------------------------------------------------------

#[test]
fn p1_fires_on_panic_paths_and_user_data_indexing() {
    let f = lint_fixture("p1_fire.rs", PROD);
    assert_eq!(
        rule_lines(&f),
        vec![("P1", 9), ("P1", 10), ("P1", 12), ("P1", 14), ("P1", 15)]
    );
}

#[test]
fn p1_allowed_structural_invariant_is_clean() {
    assert!(lint_fixture("p1_allowed.rs", PROD).is_empty());
}

#[test]
fn p1_guard_strings_comments_and_cfg_test() {
    assert!(lint_fixture("p1_guard.rs", PROD).is_empty());
}

#[test]
fn p1_exempt_in_bench_crate_and_test_files() {
    assert!(lint_fixture("p1_fire.rs", "crates/bench/src/bin/fixture.rs").is_empty());
    assert!(lint_fixture("p1_fire.rs", "crates/core/tests/fixture.rs").is_empty());
}

// --- C1 -------------------------------------------------------------------

#[test]
fn c1_fires_on_raw_concurrency_outside_runtime() {
    let f = lint_fixture("c1_fire.rs", PROD);
    assert_eq!(rule_lines(&f), vec![("C1", 2), ("C1", 5), ("C1", 6)]);
}

#[test]
fn c1_fires_on_channel_primitives_outside_runtime() {
    let f = lint_fixture("c1_channel_fire.rs", PROD);
    assert_eq!(
        rule_lines(&f),
        vec![("C1", 3), ("C1", 4), ("C1", 7), ("C1", 7), ("C1", 10)]
    );
}

#[test]
fn c1_fires_on_shard_coordination_outside_runtime() {
    let f = lint_fixture("c1_shard_fire.rs", PROD);
    assert_eq!(
        rule_lines(&f),
        vec![
            ("C1", 3),  // Barrier import
            ("C1", 4),  // RwLock import
            ("C1", 6),  // JoinHandle in the signature
            ("C1", 8),  // RwLock::new
            ("C1", 9),  // Barrier::new
            ("C1", 14), // thread::park_timeout
        ]
    );
}

#[test]
fn c1_fires_on_process_control_outside_runtime() {
    let f = lint_fixture("c1_process_fire.rs", PROD);
    assert_eq!(
        rule_lines(&f),
        vec![
            ("C1", 4),  // process::Command import
            ("C1", 6),  // process::Child in the signature
            ("C1", 8),  // Command::new
            ("C1", 9),  // .kill()
            ("C1", 11), // process::abort
            ("C1", 13), // process::exit
        ]
    );
}

#[test]
fn c1_exempt_inside_runtime_crate() {
    assert!(lint_fixture("c1_guard.rs", "crates/runtime/src/fixture.rs").is_empty());
    assert!(lint_fixture("c1_channel_fire.rs", "crates/runtime/src/fixture.rs").is_empty());
    assert!(lint_fixture("c1_shard_fire.rs", "crates/runtime/src/fixture.rs").is_empty());
    assert!(lint_fixture("c1_process_fire.rs", "crates/runtime/src/fixture.rs").is_empty());
    // Chaos harnesses under tests/ kill and abort on purpose.
    assert!(lint_fixture("c1_process_fire.rs", "tests/fixture.rs").is_empty());
}

#[test]
fn c1_guard_fires_when_reclassified_as_production() {
    // The same source IS a violation outside the runtime — the exemption is
    // the path, not the pattern.
    let f = lint_fixture("c1_guard.rs", PROD);
    assert!(f.iter().all(|f| f.rule == "C1"));
    assert!(!f.is_empty());
}

// --- A0 (directive hygiene) ----------------------------------------------

#[test]
fn a0_fires_on_unused_reasonless_and_unknown_allows() {
    let f = lint_fixture("a0_bad_allows.rs", PROD);
    assert_eq!(rule_lines(&f), vec![("A0", 4), ("A0", 5), ("A0", 7)]);
}

// --- diagnostics ----------------------------------------------------------

#[test]
fn json_output_escapes_and_lists_findings() {
    let f = lint_fixture("d1_fire.rs", PROD);
    let json = coachlm_lint::diag::render_json(&f, 1);
    assert!(json.contains("\"violations\": 8"));
    assert!(json.contains("\"rule\": \"D1\""));
    assert!(json.contains("crates/core/src/fixture.rs"));
}

#[test]
fn human_output_has_file_line_col_spans() {
    let f = lint_fixture("d1_fire.rs", PROD);
    let text = coachlm_lint::diag::render_human(&f, 1);
    assert!(text.contains("crates/core/src/fixture.rs:5:"));
    assert!(text.contains("[D1]"));
}
