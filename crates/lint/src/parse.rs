//! A lightweight recursive-descent parser over the significant-token
//! stream, producing the per-file item summary the workspace analyses run
//! on.
//!
//! This is *not* a Rust parser — no expressions, no types, no name
//! resolution. It recovers exactly the structure the interprocedural
//! analyses need and nothing more:
//!
//! * **functions** (free, impl methods, trait default methods) with their
//!   body token ranges, the impl'd type and trait when inside an `impl`
//!   block, the **call sites** inside each body (free calls, `Type::assoc`
//!   calls, `.method(` calls), and the **taint sources** the body contains;
//! * **struct/enum field lists** (named fields only, including struct
//!   variants), which the fingerprint-coverage check compares against the
//!   identifiers mentioned in the type's `fingerprint_into` body;
//! * for `fingerprint_into` bodies, every identifier mentioned.
//!
//! The parser is error-tolerant: malformed input degrades to skipped
//! items, and gross structural damage (unbalanced braces) is reported as a
//! parse error rather than a finding, so the CLI can distinguish "the tree
//! is dirty" from "the analyzer could not see the tree".

use crate::allow::Allows;
use crate::lexer::{Lexed, Tok, TokKind};
use crate::rules::map_iteration_sites;
use crate::scope::test_scopes;
use crate::walk::FileClass;

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name (`helper`, `fingerprint_into`, …).
    pub name: String,
    /// Qualifier for `Qual::name(..)` calls (`Self` already resolved to
    /// the surrounding impl type). `None` for free and method calls.
    pub qual: Option<String>,
    /// `true` for `.name(..)` method calls.
    pub method: bool,
    /// 1-based line of the callee token.
    pub line: u32,
}

/// The kinds of nondeterminism the taint analysis seeds at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// Wall clocks, filesystem timestamps, real sleeps.
    Clock,
    /// Ambient/OS randomness.
    Entropy,
    /// `HashMap`/`HashSet` iteration order.
    MapIter,
    /// Thread identity (`thread::current`, `ThreadId`) and host
    /// parallelism probes.
    ThreadId,
    /// Pointer-to-integer casts (addresses vary run to run under ASLR).
    PtrInt,
    /// Atomic read-modify-write: the returned value depends on the
    /// interleaving no matter the memory ordering.
    AtomicRmw,
}

impl SourceKind {
    /// Stable id used in diagnostics and the on-disk cache.
    pub fn id(self) -> &'static str {
        match self {
            SourceKind::Clock => "clock",
            SourceKind::Entropy => "entropy",
            SourceKind::MapIter => "map-iter",
            SourceKind::ThreadId => "thread-id",
            SourceKind::PtrInt => "ptr-int",
            SourceKind::AtomicRmw => "atomic-rmw",
        }
    }

    /// Parses a stable id back (cache deserialization).
    pub fn from_id(s: &str) -> Option<SourceKind> {
        Some(match s {
            "clock" => SourceKind::Clock,
            "entropy" => SourceKind::Entropy,
            "map-iter" => SourceKind::MapIter,
            "thread-id" => SourceKind::ThreadId,
            "ptr-int" => SourceKind::PtrInt,
            "atomic-rmw" => SourceKind::AtomicRmw,
            _ => return None,
        })
    }

    /// Human noun for diagnostics.
    pub fn describe(self) -> &'static str {
        match self {
            SourceKind::Clock => "wall-clock",
            SourceKind::Entropy => "OS-entropy",
            SourceKind::MapIter => "hash-map iteration order",
            SourceKind::ThreadId => "thread-identity",
            SourceKind::PtrInt => "pointer-address",
            SourceKind::AtomicRmw => "atomic read-modify-write",
        }
    }

    /// The token-level rule that overlaps this source kind, if any. An
    /// allow of that rule on the source line also suppresses taint
    /// seeding — the justification ("collected and sorted", "stderr
    /// progress only") applies to both views of the same site.
    fn base_rule(self) -> Option<&'static str> {
        match self {
            SourceKind::Clock => Some("D1"),
            SourceKind::Entropy => Some("D2"),
            SourceKind::MapIter => Some("D3"),
            _ => None,
        }
    }
}

/// One taint source detected inside a function body.
#[derive(Debug, Clone)]
pub struct TaintSource {
    /// What class of nondeterminism this is.
    pub kind: SourceKind,
    /// The construct, for diagnostics (`HashMap iteration over \`m\``).
    pub what: String,
    /// 1-based line of the source token.
    pub line: u32,
}

/// One parsed function.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Surrounding impl type (`impl Foo { … }` / `impl Tr for Foo`) or
    /// trait name for trait default methods.
    pub self_ty: Option<String>,
    /// Trait name for `impl Tr for Foo` methods.
    pub trait_name: Option<String>,
    /// 1-based line/col of the `fn` name token.
    pub line: u32,
    /// 1-based column of the `fn` name token.
    pub col: u32,
    /// `true` when the body sits in a test-only scope or test file.
    pub is_test: bool,
    /// Call sites inside the body, in source order.
    pub calls: Vec<Call>,
    /// Taint sources inside the body (allow-suppressed ones excluded).
    pub sources: Vec<TaintSource>,
    /// Identifiers mentioned in the body — populated only for
    /// fingerprint-hash functions (`fingerprint_into`), where the coverage
    /// check consumes them.
    pub mentions: Vec<String>,
}

/// One named field of a struct (or struct enum variant).
#[derive(Debug, Clone)]
pub struct FieldItem {
    /// Field name.
    pub name: String,
    /// 1-based line of the field-name token.
    pub line: u32,
    /// 1-based column of the field-name token.
    pub col: u32,
    /// `true` when the declaration line carries `lint: allow(F1, …)` —
    /// the field is deliberately excluded from the fingerprint.
    pub allowed: bool,
}

/// One struct/enum with named fields.
#[derive(Debug, Clone)]
pub struct TypeItem {
    /// Type name.
    pub name: String,
    /// 1-based line of the type-name token.
    pub line: u32,
    /// Named fields (tuple/unit types contribute none).
    pub fields: Vec<FieldItem>,
}

/// Everything the workspace analyses need from one file.
#[derive(Debug, Clone, Default)]
pub struct FileSummary {
    /// Workspace-relative path.
    pub rel: String,
    /// Every parsed function.
    pub fns: Vec<FnItem>,
    /// Every parsed struct/enum with named fields.
    pub types: Vec<TypeItem>,
    /// Structural damage the parser could not see through.
    pub parse_errors: Vec<String>,
}

/// Parses one lexed file into its summary, consuming `allows` for
/// source-level (`T1` + base rule) and field-level (`F1`) suppressions.
pub fn summarize(class: &FileClass, lexed: &Lexed, allows: &mut Allows) -> FileSummary {
    let toks = &lexed.toks;
    let in_test = test_scopes(toks);
    let mut sum = FileSummary {
        rel: class.rel.clone(),
        ..FileSummary::default()
    };
    // File-wide map-iteration sites, attributed to bodies by token index.
    // Test and example files never feed production chains, so their
    // sources are irrelevant (and their fns are all `is_test`).
    let map_sites = if class.test_file || class.example_file {
        Vec::new()
    } else {
        map_iteration_sites(toks, &in_test)
    };
    let mut p = Parser {
        class,
        toks,
        in_test: &in_test,
        map_sites: &map_sites,
        allows,
        sum: &mut sum,
    };
    p.items(0, toks.len(), None, None);
    check_balance(toks, &mut sum);
    sum
}

/// Flags files whose brace structure does not balance — item boundaries
/// (and therefore every body attribution) are unreliable there.
fn check_balance(toks: &[Tok], sum: &mut FileSummary) {
    let mut depth = 0i64;
    for t in toks {
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "{") => depth += 1,
            (TokKind::Punct, "}") => depth -= 1,
            _ => {}
        }
        if depth < 0 {
            sum.parse_errors
                .push(format!("{}:{}: unbalanced `}}`", sum.rel, t.line));
            return;
        }
    }
    if depth != 0 {
        sum.parse_errors
            .push(format!("{}: {depth} unclosed `{{` at end of file", sum.rel));
    }
}

struct Parser<'a> {
    class: &'a FileClass,
    toks: &'a [Tok],
    in_test: &'a [bool],
    map_sites: &'a [crate::rules::MapIterSite],
    allows: &'a mut Allows,
    sum: &'a mut FileSummary,
}

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "match", "return", "loop", "in", "as", "move", "ref", "let",
    "mut", "fn", "pub", "use", "mod", "impl", "struct", "enum", "trait", "where", "const",
    "static", "type", "unsafe", "dyn", "break", "continue", "crate", "super", "self", "Self",
    "true", "false", "async", "await", "box",
];

impl<'a> Parser<'a> {
    fn ident(&self, i: usize) -> Option<&'a str> {
        self.toks
            .get(i)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
    }

    fn punct(&self, i: usize, text: &str) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
    }

    /// Finds the index of the matching `}` for the `{` at `open`.
    fn close_brace(&self, open: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < self.toks.len() {
            match self.toks[i].text.as_str() {
                "{" if self.toks[i].kind == TokKind::Punct => depth += 1,
                "}" if self.toks[i].kind == TokKind::Punct => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        self.toks.len().saturating_sub(1)
    }

    /// From `i`, scans forward for the item's `{` (returning its index) or
    /// a terminating `;` at grouping depth 0 (returning `None`).
    fn body_open(&self, mut i: usize) -> Option<usize> {
        let mut paren = 0i32;
        let mut bracket = 0i32;
        while i < self.toks.len() {
            let t = &self.toks[i];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    ";" if paren == 0 && bracket == 0 => return None,
                    "{" if paren == 0 && bracket == 0 => return Some(i),
                    _ => {}
                }
            }
            i += 1;
        }
        None
    }

    /// Walks items in `range`, recursing into `mod`/`impl`/`trait` bodies.
    fn items(&mut self, start: usize, end: usize, self_ty: Option<&str>, trait_name: Option<&str>) {
        let mut i = start;
        while i < end {
            match self.ident(i) {
                Some("fn") => {
                    i = self.item_fn(i, end, self_ty, trait_name);
                }
                Some("impl") => {
                    i = self.item_impl(i, end);
                }
                Some("trait") => {
                    let name = self.ident(i + 1).map(str::to_string);
                    match self.body_open(i + 1) {
                        Some(open) => {
                            let close = self.close_brace(open);
                            self.items(open + 1, close, name.as_deref(), None);
                            i = close + 1;
                        }
                        None => i += 1,
                    }
                }
                Some("mod") => match self.body_open(i + 1) {
                    Some(open) => {
                        let close = self.close_brace(open);
                        self.items(open + 1, close, self_ty, trait_name);
                        i = close + 1;
                    }
                    None => i += 2, // `mod name;`
                },
                Some("struct") => {
                    i = self.item_struct(i);
                }
                Some("enum") => {
                    i = self.item_enum(i);
                }
                _ => i += 1,
            }
        }
    }

    /// Parses `fn name … { body }` starting at the `fn` token; returns the
    /// index to continue scanning from.
    fn item_fn(
        &mut self,
        at: usize,
        end: usize,
        self_ty: Option<&str>,
        trait_name: Option<&str>,
    ) -> usize {
        let Some(name) = self.ident(at + 1) else {
            return at + 1; // `fn` in a type position (`fn()` pointer)
        };
        let name = name.to_string();
        let Some(open) = self.body_open(at + 2) else {
            return at + 2; // required trait method — no body
        };
        let close = self.close_brace(open).min(end);
        let name_tok = &self.toks[at + 1];
        let is_test = self.class.test_file
            || self.class.example_file
            || self.in_test.get(at).copied().unwrap_or(false);
        let want_mentions = name == "fingerprint_into";
        let mut item = FnItem {
            name,
            self_ty: self_ty.map(str::to_string),
            trait_name: trait_name.map(str::to_string),
            line: name_tok.line,
            col: name_tok.col,
            is_test,
            calls: Vec::new(),
            sources: Vec::new(),
            mentions: Vec::new(),
        };
        self.scan_body(open + 1, close, self_ty, want_mentions, &mut item);
        if !is_test {
            self.collect_sources(open + 1, close, &mut item);
        }
        self.sum.fns.push(item);
        // Recurse for nested fn items (their calls double-attributed to the
        // enclosing fn — a harmless over-approximation).
        self.items(open + 1, close, self_ty, None);
        close + 1
    }

    /// Parses an `impl [<…>] [Trait for] Type { … }` header and body.
    fn item_impl(&mut self, at: usize, _end: usize) -> usize {
        let Some(open) = self.body_open(at + 1) else {
            return at + 1;
        };
        // Header idents between `impl` and `{`, minus generics.
        let mut angle = 0i32;
        let mut path_idents: Vec<&str> = Vec::new();
        let mut for_at: Option<usize> = None;
        for j in at + 1..open {
            let t = &self.toks[j];
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "<") => angle += 1,
                (TokKind::Punct, ">") => angle = (angle - 1).max(0),
                (TokKind::Ident, "for") if angle == 0 => for_at = Some(path_idents.len()),
                (TokKind::Ident, "where") if angle == 0 => break,
                (TokKind::Ident, name) if angle == 0 => path_idents.push(name),
                _ => {}
            }
        }
        let (trait_name, self_ty) = match for_at {
            Some(split) => (
                path_idents.get(..split).and_then(|p| p.last()).copied(),
                path_idents.last().copied(),
            ),
            None => (None, path_idents.last().copied()),
        };
        let close = self.close_brace(open);
        self.items(open + 1, close, self_ty, trait_name);
        close + 1
    }

    /// Parses `struct Name { fields }` (tuple/unit structs contribute an
    /// empty field list and are skipped for coverage purposes).
    fn item_struct(&mut self, at: usize) -> usize {
        let Some(name) = self.ident(at + 1) else {
            return at + 1;
        };
        let name = name.to_string();
        let name_tok = &self.toks[at + 1];
        let Some(open) = self.body_open(at + 2) else {
            return at + 2; // `struct Name;` or `struct Name(..);`
        };
        // `struct Name(T, U);` has no `{`; body_open would skip past the
        // parens and find some later `{` — guard: a `(` before the `{`
        // at depth 0 means tuple struct.
        for j in at + 2..open {
            if self.punct(j, "(") {
                return j; // let the scanner resume inside/after the parens
            }
        }
        let close = self.close_brace(open);
        let fields = self.fields(open + 1, close);
        let line = name_tok.line;
        self.sum.types.push(TypeItem { name, line, fields });
        close + 1
    }

    /// Parses `enum Name { A, B { f: T }, C(T) }`, collecting named fields
    /// of struct variants into one type record.
    fn item_enum(&mut self, at: usize) -> usize {
        let Some(name) = self.ident(at + 1) else {
            return at + 1;
        };
        let name = name.to_string();
        let name_tok = &self.toks[at + 1];
        let Some(open) = self.body_open(at + 2) else {
            return at + 2;
        };
        let close = self.close_brace(open);
        let mut fields = Vec::new();
        // Variants sit at depth 0 inside the braces; a `{` after a variant
        // name opens named fields.
        let mut j = open + 1;
        while j < close {
            let t = &self.toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" => {
                        // tuple variant: skip the parens
                        let mut depth = 0i32;
                        while j < close {
                            match self.toks[j].text.as_str() {
                                "(" => depth += 1,
                                ")" => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            j += 1;
                        }
                    }
                    "{" => {
                        let vclose = self.close_brace(j);
                        fields.extend(self.fields(j + 1, vclose));
                        j = vclose;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        let line = name_tok.line;
        self.sum.types.push(TypeItem { name, line, fields });
        close + 1
    }

    /// Parses a named-field list in `range`: declarations separated by `,`
    /// at grouping depth 0, each `[attrs] [pub[(..)]] name : Type`.
    fn fields(&mut self, start: usize, end: usize) -> Vec<FieldItem> {
        let mut out = Vec::new();
        let mut j = start;
        let mut at_decl_start = true;
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut brace = 0i32;
        let mut angle = 0i32;
        while j < end {
            let t = &self.toks[j];
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "(") => paren += 1,
                (TokKind::Punct, ")") => paren -= 1,
                (TokKind::Punct, "[") => bracket += 1,
                (TokKind::Punct, "]") => bracket -= 1,
                (TokKind::Punct, "{") => brace += 1,
                (TokKind::Punct, "}") => brace -= 1,
                // Angle heuristic: `<` in a field's type position opens a
                // generic list; `>` closes one (never a comparison here).
                (TokKind::Punct, "<") => angle += 1,
                (TokKind::Punct, ">") => angle = (angle - 1).max(0),
                (TokKind::Punct, ",") if paren == 0 && bracket == 0 && brace == 0 && angle == 0 => {
                    at_decl_start = true;
                    j += 1;
                    continue;
                }
                (TokKind::Ident, name)
                    if at_decl_start && paren == 0 && bracket == 0 && brace == 0 =>
                {
                    if name != "pub" && self.punct(j + 1, ":") {
                        let allowed = self.allows.permits("F1", t.line);
                        out.push(FieldItem {
                            name: name.to_string(),
                            line: t.line,
                            col: t.col,
                            allowed,
                        });
                        at_decl_start = false;
                    } else if name != "pub" {
                        // Something other than a field decl (e.g. macro
                        // output) — stop guessing for this decl.
                        at_decl_start = false;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        out
    }

    /// Scans a fn body for call sites (and mentions when requested).
    fn scan_body(
        &mut self,
        start: usize,
        end: usize,
        self_ty: Option<&str>,
        want_mentions: bool,
        item: &mut FnItem,
    ) {
        for i in start..end.min(self.toks.len()) {
            let t = &self.toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            if want_mentions && !item.mentions.iter().any(|m| m == &t.text) {
                item.mentions.push(t.text.clone());
            }
            if item.is_test || self.in_test.get(i).copied().unwrap_or(false) {
                continue;
            }
            if !self.punct(i + 1, "(") || KEYWORDS.contains(&t.text.as_str()) {
                continue;
            }
            let prev = i.checked_sub(1).map(|p| &self.toks[p]);
            let (qual, method) = match prev {
                Some(p) if p.kind == TokKind::Punct && p.text == "." => (None, true),
                Some(p) if p.kind == TokKind::Punct && p.text == "::" => {
                    let Some(q) = i
                        .checked_sub(2)
                        .and_then(|q| self.toks.get(q).filter(|t| t.kind == TokKind::Ident))
                    else {
                        continue; // `::func(` absolute path fragment
                    };
                    let qual = if q.text == "Self" {
                        match self_ty {
                            Some(ty) => ty.to_string(),
                            None => continue,
                        }
                    } else {
                        q.text.clone()
                    };
                    // Lowercase qualifiers are modules (`thread::spawn`):
                    // treat as a free call under the bare name.
                    if qual.chars().next().is_some_and(char::is_lowercase) {
                        (None, false)
                    } else {
                        (Some(qual), false)
                    }
                }
                Some(p) if p.kind == TokKind::Ident && p.text == "fn" => continue,
                _ => (None, false),
            };
            item.calls.push(Call {
                name: t.text.clone(),
                qual,
                method,
                line: t.line,
            });
        }
    }

    /// Detects taint sources in a production fn body. Sources suppressed
    /// by `lint: allow(T1, …)` — or by an allow of the overlapping
    /// token-level rule — are dropped at the seed.
    fn collect_sources(&mut self, start: usize, end: usize, item: &mut FnItem) {
        let end = end.min(self.toks.len());
        let mut found: Vec<TaintSource> = Vec::new();
        for i in start..end {
            if self.in_test.get(i).copied().unwrap_or(false) {
                continue;
            }
            let t = &self.toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            let name = t.text.as_str();
            // Clock sources — the simulated-time module is the one place
            // allowed to touch the real clock (mirrors rule D1's scope).
            if !self.class.simtime_module {
                if (name == "Instant" || name == "SystemTime")
                    && self.punct(i + 1, "::")
                    && self.ident(i + 2) == Some("now")
                {
                    found.push(src(SourceKind::Clock, format!("`{name}::now()`"), t.line));
                } else if name == "SystemTime" || name == "UNIX_EPOCH" {
                    found.push(src(SourceKind::Clock, format!("`{name}`"), t.line));
                } else if name == "thread"
                    && self.punct(i + 1, "::")
                    && self.ident(i + 2) == Some("sleep")
                {
                    found.push(src(SourceKind::Clock, "`thread::sleep`".into(), t.line));
                }
                if i > 0
                    && self.punct(i - 1, ".")
                    && matches!(name, "modified" | "created" | "accessed")
                    && self.punct(i + 1, "(")
                {
                    found.push(src(
                        SourceKind::Clock,
                        format!("filesystem timestamp `.{name}()`"),
                        t.line,
                    ));
                }
            }
            // Entropy sources (the D2 set).
            if matches!(
                name,
                "thread_rng" | "from_entropy" | "OsRng" | "getrandom" | "random_seed"
            ) {
                found.push(src(SourceKind::Entropy, format!("`{name}`"), t.line));
            }
            // Thread identity / host-environment probes.
            if name == "thread" && self.punct(i + 1, "::") && self.ident(i + 2) == Some("current") {
                found.push(src(
                    SourceKind::ThreadId,
                    "`thread::current()` (thread identity)".into(),
                    t.line,
                ));
            }
            if name == "ThreadId" {
                found.push(src(SourceKind::ThreadId, "`ThreadId`".into(), t.line));
            }
            if name == "available_parallelism" {
                found.push(src(
                    SourceKind::ThreadId,
                    "`available_parallelism()` (host CPU count)".into(),
                    t.line,
                ));
            }
            // Pointer-to-int casts: `x.as_ptr() as usize` — addresses are
            // ASLR-randomized, so they must never feed hashed state.
            if matches!(name, "as_ptr" | "as_mut_ptr")
                && self.punct(i + 1, "(")
                && self.punct(i + 2, ")")
                && self.ident(i + 3) == Some("as")
                && matches!(
                    self.ident(i + 4),
                    Some("usize" | "u64" | "u32" | "isize" | "i64" | "i32")
                )
            {
                found.push(src(
                    SourceKind::PtrInt,
                    format!(
                        "`.{name}() as {}` (pointer-to-int cast)",
                        self.toks[i + 4].text
                    ),
                    t.line,
                ));
            }
            // Atomic RMW: the returned value depends on interleaving.
            if i > 0
                && self.punct(i - 1, ".")
                && self.punct(i + 1, "(")
                && matches!(
                    name,
                    "fetch_add"
                        | "fetch_sub"
                        | "fetch_or"
                        | "fetch_and"
                        | "fetch_xor"
                        | "fetch_update"
                        | "compare_exchange"
                        | "compare_exchange_weak"
                )
            {
                found.push(src(
                    SourceKind::AtomicRmw,
                    format!("atomic `.{name}(..)`"),
                    t.line,
                ));
            }
        }
        // Map-iteration sites inside this body.
        for site in self.map_sites {
            if site.tok >= start && site.tok < end {
                let how = if site.how == "for" {
                    format!("for-loop over hash map/set `{}`", site.name)
                } else {
                    format!("`.{}()` over hash map/set `{}`", site.how, site.name)
                };
                found.push(src(SourceKind::MapIter, how, self.toks[site.tok].line));
            }
        }
        // Apply allows at the seed: allow(T1) or the overlapping
        // token-level rule's allow on the source line.
        for s in found {
            let base_allowed = s
                .kind
                .base_rule()
                .is_some_and(|r| self.allows.permits(r, s.line));
            if !base_allowed && !self.allows.permits("T1", s.line) {
                item.sources.push(s);
            }
        }
    }
}

fn src(kind: SourceKind, what: String, line: u32) -> TaintSource {
    TaintSource { kind, what, line }
}
